//! A concurrent specialization service over the two4one engine.
//!
//! The paper's economics — run-time code generation cheap enough to pay
//! for itself after a handful of runs — only materialize in a serving
//! system if identical requests share one specialization. [`SpecService`]
//! provides exactly that: a sharded, capacity-bounded cache of residual
//! [`Image`]s keyed by *(program, entry, static arguments)*, with
//! single-flight deduplication of concurrent misses and a bounded pool of
//! large-stack workers for batch traffic.
//!
//! # Quick start
//!
//! ```
//! use two4one::{Division, Pgg, reader, BT};
//! use two4one_server::{SpecRequest, SpecService};
//!
//! let pgg = Pgg::new();
//! let program = pgg.parse("(define (power n x) (if (= n 0) 1 (* x (power (- n 1) x))))")?;
//! let ext = pgg.cogen(&program, "power", &Division::new([BT::Static, BT::Dynamic]))?;
//!
//! let service = SpecService::new();
//! let five = reader::read_one("5")?;
//! let cold = service.specialize(&ext, std::slice::from_ref(&five))?;
//! let warm = service.specialize(&ext, std::slice::from_ref(&five))?;
//! // Same residual object code, shared — not re-specialized, not copied.
//! assert!(std::sync::Arc::ptr_eq(&cold.image, &warm.image));
//! assert_eq!(service.stats().spec_runs, 1);
//!
//! // Batch API: four workers drain the request list in parallel.
//! let reqs: Vec<SpecRequest> = (1..=8)
//!     .map(|n| SpecRequest::new(ext.clone(), vec![two4one::Datum::Int(n)]))
//!     .collect();
//! for r in service.specialize_many(&reqs, 4) {
//!     r?;
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! # What is shared, what is per-request
//!
//! The service owns only the cache and its counters. Each specialization
//! runs on its own large-stack thread with a private specializer state
//! (memo tables, gensym, fuel), so requests never contend except on the
//! shard mutex for the few microseconds of a lookup or fill. Results are
//! handed out as `Arc<SpecOutcome>`: a warm hit is one shard-mutex
//! acquisition and one atomic refcount increment.

#![warn(missing_docs)]

mod admission;
mod breaker;
mod cache;
mod persist;
mod registry;
mod stats;

pub use breaker::BreakerPolicy;
pub use registry::RedefineOutcome;
pub use stats::{serve_stats_line, ServeSnapshot};

use std::collections::VecDeque;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use admission::{Admission, Gate};
use breaker::{Breaker, BreakerScope, Verdict};
use cache::{lock, Entry, Flight, FlightWait, Key, Shard, Slot, Tier};
use persist::{GenextSnapRecord, SnapRecord};
use registry::{Backedge, Registry};
use stats::ServeStats;
use two4one::obs;
use two4one::{
    CancelToken, CompiledGenExt, Datum, Epoch, Error, ExecProfile, GenExt, Image, LimitKind,
    Limits, PeError, SpecOptions, SpecStats,
};
use two4one_syntax::stack::DEFAULT_STACK_BYTES;
use two4one_syntax::symbol::intern_contention;

/// What every serving entry point returns for one request.
pub type ServeResult = Result<Arc<SpecOutcome>, ServeError>;

/// Errors returned by the service.
///
/// Non-exhaustive: fault-tolerance work keeps adding operational states
/// (overload, deadlines, circuit breaking), so downstream matches must
/// carry a wildcard arm.
#[derive(Debug)]
#[non_exhaustive]
pub enum ServeError {
    /// The specialization pipeline failed; this requester led the flight
    /// and holds the original error.
    Spec(Error),
    /// Another requester led the flight for the same key and failed; the
    /// leader's error is shared as a rendered message (engine errors are
    /// not cloneable).
    Shared(String),
    /// A worker thread could not be spawned.
    Spawn(String),
    /// A worker thread died without reporting a result. The engine
    /// catches panics at its facade, so this indicates a bug.
    Worker(String),
    /// The service shed the request at admission: the maximum number of
    /// fills is in flight and the wait queue is full.
    Overloaded {
        /// Requests queued for admission when this one was shed.
        queue_depth: usize,
        /// A coarse hint for when capacity may free up, scaled by the
        /// observed queue depth.
        retry_after_ms: u64,
    },
    /// The request's deadline passed — while queued for admission, while
    /// waiting on another requester's flight, or mid-specialization (the
    /// specializer is cancelled cooperatively at its memo/unfold checks).
    DeadlineExceeded,
    /// The request's [`CancelToken`] was fired explicitly.
    Cancelled,
    /// The circuit breaker for this program is open and no fallback
    /// image could be produced.
    BreakerOpen(String),
    /// A named request for a program no registration exists for (never
    /// registered, or the name was mistyped).
    UnknownProgram(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Spec(e) => write!(f, "{e}"),
            ServeError::Shared(msg) => write!(f, "shared specialization failed: {msg}"),
            ServeError::Spawn(msg) => write!(f, "cannot spawn worker: {msg}"),
            ServeError::Worker(msg) => write!(f, "worker died: {msg}"),
            ServeError::Overloaded {
                queue_depth,
                retry_after_ms,
            } => write!(
                f,
                "service overloaded (queue depth {queue_depth}); retry in ~{retry_after_ms} ms"
            ),
            ServeError::DeadlineExceeded => f.write_str("request deadline exceeded"),
            ServeError::Cancelled => f.write_str("request cancelled"),
            ServeError::BreakerOpen(msg) => {
                write!(f, "circuit breaker open and no fallback available: {msg}")
            }
            ServeError::UnknownProgram(name) => {
                write!(f, "no program registered under `{name}`")
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Spec(e) => Some(e),
            _ => None,
        }
    }
}

/// A finished specialization: the residual object code and the
/// specializer's own statistics from the run that produced it.
///
/// Outcomes are shared (`Arc`) between the cache and all requesters, and
/// the [`Image`] itself holds its templates behind `Arc`, so a cache hit
/// costs no deep copy anywhere.
#[derive(Debug)]
pub struct SpecOutcome {
    /// The residual program as loadable object code.
    pub image: Arc<Image>,
    /// Statistics from the specializer run that built `image`.
    pub stats: SpecStats,
    /// Shared execution counters for this image. An embedder that runs
    /// the image through [`two4one::run_image_profiled`] with this
    /// profile feeds the tiered-serving promotion heuristic: a
    /// generically-compiled (Tier-0) entry whose profile shows real
    /// traffic is specialized in the background and hot-swapped in.
    pub profile: Arc<ExecProfile>,
}

impl SpecOutcome {
    /// Code size of the residual image, in instructions.
    pub fn code_size(&self) -> usize {
        self.image.code_size()
    }
}

/// What a [`SpecRequest`] asks to specialize.
#[derive(Debug, Clone)]
pub enum SpecTarget {
    /// A generating extension supplied directly by the caller (an
    /// *anonymous* request — no registry involvement).
    Ext(GenExt),
    /// A program registered with [`SpecService::register`], resolved to
    /// its live epoch when the request is served — so a request created
    /// before a redefinition transparently targets the new generation.
    Named(Arc<str>),
}

/// One unit of batch work for [`SpecService::specialize_many`].
#[derive(Debug, Clone)]
pub struct SpecRequest {
    /// What to specialize.
    pub target: SpecTarget,
    /// Static arguments, one per `BT::S` slot of the division.
    pub statics: Vec<Datum>,
    /// Per-request deadline; overrides [`ServeConfig::default_deadline`].
    pub deadline: Option<Duration>,
    /// Caller-side cancellation token; firing it stops the request (and,
    /// when this request leads a fill, the specializer mid-run).
    pub cancel: Option<CancelToken>,
}

impl SpecRequest {
    /// Creates a request for an anonymous extension.
    pub fn new(ext: GenExt, statics: Vec<Datum>) -> Self {
        SpecRequest {
            target: SpecTarget::Ext(ext),
            statics,
            deadline: None,
            cancel: None,
        }
    }

    /// Creates a request for a registered program, resolved to its live
    /// epoch at serve time.
    pub fn named(name: &str, statics: Vec<Datum>) -> Self {
        SpecRequest {
            target: SpecTarget::Named(Arc::from(name)),
            statics,
            deadline: None,
            cancel: None,
        }
    }

    /// Sets a per-request deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Attaches a cancellation token the caller can fire.
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }
}

/// Retry tuning for transient limit hits (see [`ServeConfig::retry`]).
///
/// A fill whose first attempt *degraded* because of unfold fuel or the
/// memo cap (`SpecStats::fallback_kind`) may be retried once with those
/// budgets multiplied by `escalation`, after a jittered `backoff`. The
/// better of the two results is cached. Hard failures are never retried
/// here — they feed the circuit breaker instead.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Maximum escalated re-attempts per fill. `0` disables retry.
    pub max_retries: u32,
    /// Budget multiplier applied to `unfold_fuel` and `memo_cap` on
    /// retry.
    pub escalation: u64,
    /// Base backoff before the retry; the actual sleep is jittered to
    /// 50–150 % of this, deterministically per request key.
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 1,
            escalation: 4,
            backoff: Duration::from_millis(2),
        }
    }
}

/// A test/diagnostics hook the service calls at the start of every cache
/// fill, on the worker thread, inside the panic boundary. Lets fault
/// tests inject delays or panics exactly where a real specializer run
/// would fail.
#[derive(Clone)]
pub struct FillHook(Arc<dyn Fn() + Send + Sync>);

impl FillHook {
    /// Wraps a hook function.
    pub fn new(f: impl Fn() + Send + Sync + 'static) -> Self {
        FillHook(Arc::new(f))
    }
}

impl fmt::Debug for FillHook {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("FillHook(..)")
    }
}

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Number of independent cache shards (lock granularity). Clamped to
    /// at least 1.
    pub shards: usize,
    /// Maximum cached entries across all shards.
    pub max_entries: usize,
    /// Limit record; its `code_cap` bounds the *total* residual code the
    /// cache may hold (LRU-ish eviction keeps the cache under it).
    pub limits: Limits,
    /// Stack size for specialization workers.
    pub stack_bytes: usize,
    /// Maximum concurrent specializer fills (admission gate). Clamped to
    /// at least 1. Cache hits and coalesced waiters bypass the gate.
    pub max_inflight: usize,
    /// Requests allowed to queue for admission when `max_inflight` fills
    /// are running; anything beyond is shed with
    /// [`ServeError::Overloaded`].
    pub queue_bound: usize,
    /// Deadline applied to requests that do not carry their own.
    pub default_deadline: Option<Duration>,
    /// Escalated-budget retry for transiently degraded fills.
    pub retry: RetryPolicy,
    /// Per-program circuit breaking for consecutive hard failures.
    pub breaker: BreakerPolicy,
    /// Called at the start of every fill (fault-injection tests).
    pub fill_hook: Option<FillHook>,
    /// Tiered execution: answer a cold miss with the generically-compiled
    /// image immediately (tens of microseconds) instead of blocking the
    /// requester on the full specializer (milliseconds), and promote hot
    /// entries to specialized code in the background — see the
    /// `promote_*` knobs. Off by default: every miss then runs the full
    /// specializer synchronously, exactly as before.
    pub tier0: bool,
    /// Hits (serve-path lookups plus profiled image executions) a Tier-0
    /// entry must accumulate before a background promotion is enqueued.
    /// `0` enqueues immediately at publication; clamped to at least 1
    /// when read from the hit path.
    pub promote_after: u64,
    /// Background promotion workers (large-stack threads running the
    /// specializer off the request path). Clamped to at least 1 when
    /// `tier0` is on; ignored otherwise.
    pub promote_workers: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            shards: 8,
            max_entries: 1024,
            limits: Limits::default(),
            stack_bytes: DEFAULT_STACK_BYTES,
            max_inflight: 32,
            queue_bound: 256,
            default_deadline: None,
            retry: RetryPolicy::default(),
            breaker: BreakerPolicy::default(),
            fill_hook: None,
            tier0: false,
            promote_after: 2,
            promote_workers: 1,
        }
    }
}

/// What a [`SpecService::restore`] pass recovered from a snapshot file.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RestoreReport {
    /// Entries restored into the cache.
    pub restored: u64,
    /// Records rejected: bad checksum, torn tail, stale version, or an
    /// undecodable payload. (A record whose key is already live in the
    /// cache is skipped silently — it is valid, just outdated.)
    pub quarantined: u64,
    /// Structurally intact records dropped because their program's
    /// registration no longer matches the live registry: the name is
    /// unregistered, or the registered source/entry/options differ from
    /// what the record was specialized against. Judged by content
    /// identity, not raw epoch number, so a snapshot restores cleanly
    /// into a fresh process that re-registered the same programs.
    pub stale_dropped: u64,
}

/// What a [`SpecService::restore_genexts`] pass recovered from a
/// gen-ext snapshot file.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GenextRestoreReport {
    /// Compiled gen-exts restored into the registry's artifact cache.
    pub restored: u64,
    /// Records rejected: bad checksum, torn tail, bad header, or an
    /// undecodable staged program.
    pub quarantined: u64,
    /// Structurally intact records dropped because their program's
    /// registration no longer matches the live registry (unregistered
    /// name, or different source identity/entry).
    pub stale_dropped: u64,
}

/// Promotion queue bound: a hot-set larger than this simply waits for a
/// later hit to re-arm — the generic image keeps serving meanwhile, so
/// dropping a candidate costs latency, never correctness.
const PROMOTE_QUEUE_CAP: usize = 256;

/// How many escalated re-specialization rounds a degraded entry gets
/// before promotion gives up on it for good.
const MAX_ESCALATIONS: u32 = 3;

/// One queued background promotion: everything `promote_one` needs to
/// re-run the specializer for a cache entry off the request path.
#[derive(Debug)]
struct Candidate {
    key: Key,
    ext: GenExt,
    statics: Vec<Datum>,
    backedge: Option<Backedge>,
    /// Budget-escalation round (0 = plain options; N multiplies the
    /// transient budgets by `retry.escalation^N`, for hot-but-degraded
    /// entries).
    escalation: u32,
}

#[derive(Debug, Default)]
struct PromoteQueue {
    q: VecDeque<Candidate>,
    /// Set by [`SpecService`]'s `Drop`: workers exit and enqueues bounce.
    closed: bool,
}

/// Shared state of the background promotion pipeline (present only when
/// [`ServeConfig::tier0`] is on).
#[derive(Debug)]
struct TierState {
    promote_after: u64,
    queue: Mutex<PromoteQueue>,
    cv: Condvar,
}

/// Handles on the `t4o_tier_*` metric families. Registered
/// unconditionally — a service with tiering off exposes them at zero, so
/// the metrics page shape does not depend on configuration.
#[derive(Debug)]
struct TierStats {
    tier0_served: obs::Counter,
    promotions: obs::Counter,
    demotions: obs::Counter,
    swap_epoch_conflicts: obs::Counter,
    promotion_nanos: obs::Histogram,
    queue_depth: obs::Gauge,
}

impl TierStats {
    fn register(registry: &obs::MetricsRegistry) -> Self {
        TierStats {
            tier0_served: registry.counter("t4o_tier_tier0_served_total"),
            promotions: registry.counter("t4o_tier_promotions_total"),
            demotions: registry.counter("t4o_tier_demotions_total"),
            swap_epoch_conflicts: registry.counter("t4o_tier_swap_epoch_conflicts_total"),
            promotion_nanos: registry.histogram("t4o_tier_promotion_nanos"),
            queue_depth: registry.gauge("t4o_tier_queue_depth"),
        }
    }
}

/// A snapshot of the tiered-execution counters (see
/// [`SpecService::tier_stats`]). All zero when [`ServeConfig::tier0`] is
/// off.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TierSnapshot {
    /// Cold misses answered with the generically-compiled (Tier-0) image.
    pub tier0_served: u64,
    /// Background specializations hot-swapped into the cache.
    pub promotions: u64,
    /// Promotion attempts abandoned because the specializer failed or
    /// panicked; the generic image keeps serving.
    pub demotions: u64,
    /// Finished background builds discarded because a redefinition bumped
    /// the program's epoch mid-build (the stale image is never swapped
    /// in).
    pub swap_epoch_conflicts: u64,
    /// Promotion candidates currently queued.
    pub queued: i64,
}

/// The cache-and-specialize half of the service, shared (`Arc`) between
/// the serving front and the detached background promotion workers —
/// which is the whole reason for the split: a worker must keep swapping
/// results into the shards while the front is blocked in an unrelated
/// request. [`SpecService`] derefs to this, so serve-path code reads
/// fields and calls fill helpers without naming the split.
///
/// Public only because it is [`SpecService`]'s `Deref` target; every
/// member is private, so nothing is callable from outside the crate.
#[doc(hidden)]
#[derive(Debug)]
pub struct Core {
    shards: Vec<Mutex<Shard>>,
    per_shard_entries: usize,
    per_shard_code: Option<usize>,
    stack_bytes: usize,
    ticket: AtomicU64,
    stats: ServeStats,
    /// The versioned program registry: logical names → live epoch +
    /// source, plus the invalidation backedges of everything cached on
    /// their behalf. (Not to be confused with the *metrics* registry on
    /// [`SpecService`].)
    programs: Registry,
    retry: RetryPolicy,
    fill_hook: Option<FillHook>,
    /// Present when tiered execution is on.
    tier: Option<TierState>,
    tier_stats: TierStats,
}

/// A concurrent, caching specialization service. See the crate docs for
/// an overview and example.
#[derive(Debug)]
pub struct SpecService {
    core: Arc<Core>,
    gate: Gate,
    breaker: Breaker,
    default_deadline: Option<Duration>,
    /// Private registry backing this service's counters, gauges, and
    /// request-latency histogram. Private so each service's numbers start
    /// at zero and die with it; [`SpecService::metrics`] merges in the
    /// process-global pipeline metrics at exposition time.
    registry: Arc<obs::MetricsRegistry>,
    requests: obs::Counter,
    request_latency: obs::Histogram,
    /// Interner write-contention events, refreshed at exposition.
    intern_contention: obs::Gauge,
    /// Background promotion workers, joined on drop.
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl std::ops::Deref for SpecService {
    type Target = Core;

    fn deref(&self) -> &Core {
        &self.core
    }
}

impl Drop for SpecService {
    /// Closes the promotion queue (pending candidates are discarded —
    /// they were an optimization, and the generic images they would have
    /// replaced keep serving) and joins the workers. An in-flight
    /// promotion finishes its swap first; nothing is detached at exit.
    fn drop(&mut self) {
        if let Some(tier) = &self.core.tier {
            let mut q = lock(&tier.queue);
            q.closed = true;
            q.q.clear();
            self.core.tier_stats.queue_depth.set(0);
            drop(q);
            tier.cv.notify_all();
        }
        for handle in lock(&self.workers).drain(..) {
            let _ = handle.join();
        }
    }
}

impl Default for SpecService {
    fn default() -> Self {
        SpecService::new()
    }
}

impl SpecService {
    /// A service with [`ServeConfig::default`].
    pub fn new() -> Self {
        SpecService::with_config(ServeConfig::default())
    }

    /// A service with explicit configuration. When
    /// [`ServeConfig::tier0`] is on this also spawns the background
    /// promotion workers; they are joined when the service drops.
    pub fn with_config(config: ServeConfig) -> Self {
        let nshards = config.shards.max(1);
        let shards = (0..nshards).map(|_| Mutex::new(Shard::default())).collect();
        let registry = Arc::new(obs::MetricsRegistry::new());
        // Ensure the global pipeline families (phase histograms, spec
        // counters) exist too, so a freshly built service can expose the
        // complete page before serving anything.
        two4one::init_metrics();
        let core = Arc::new(Core {
            shards,
            per_shard_entries: config.max_entries.div_ceil(nshards).max(1),
            per_shard_code: config.limits.code_cap.map(|c| c.div_ceil(nshards).max(1)),
            stack_bytes: config.stack_bytes,
            ticket: AtomicU64::new(0),
            stats: ServeStats::register(&registry),
            programs: Registry::new(registry.gauge("t4o_programs_registered")),
            retry: config.retry,
            fill_hook: config.fill_hook,
            tier: config.tier0.then(|| TierState {
                promote_after: config.promote_after,
                queue: Mutex::new(PromoteQueue::default()),
                cv: Condvar::new(),
            }),
            tier_stats: TierStats::register(&registry),
        });
        let mut workers = Vec::new();
        if core.tier.is_some() {
            for w in 0..config.promote_workers.max(1) {
                let worker = core.clone();
                let spawned = std::thread::Builder::new()
                    .name(format!("two4one-promote-{w}"))
                    // Promotion runs the full specializer: same big
                    // stacks as the request-path fill workers.
                    .stack_size(config.stack_bytes)
                    .spawn(move || worker.promote_loop());
                if let Ok(handle) = spawned {
                    workers.push(handle);
                }
            }
        }
        SpecService {
            gate: Gate::new(
                config.max_inflight,
                config.queue_bound,
                registry.gauge("t4o_serve_inflight"),
            ),
            breaker: Breaker::new(config.breaker, registry.gauge("t4o_breaker_open")),
            default_deadline: config.default_deadline,
            requests: registry.counter("t4o_serve_requests_total"),
            request_latency: registry.histogram("t4o_serve_request_nanos"),
            intern_contention: registry.gauge("t4o_intern_contention"),
            registry,
            core,
            workers: Mutex::new(workers),
        }
    }

    /// A snapshot of the tiered-execution counters: Tier-0 serves,
    /// promotions, demotions, epoch-conflict discards, and the current
    /// promotion-queue depth. All zero when [`ServeConfig::tier0`] is
    /// off.
    pub fn tier_stats(&self) -> TierSnapshot {
        TierSnapshot {
            tier0_served: self.core.tier_stats.tier0_served.get(),
            promotions: self.core.tier_stats.promotions.get(),
            demotions: self.core.tier_stats.demotions.get(),
            swap_epoch_conflicts: self.core.tier_stats.swap_epoch_conflicts.get(),
            queued: self.core.tier_stats.queue_depth.get(),
        }
    }

    /// Total requests admission will hold at once (in-flight + queued);
    /// a burst beyond this necessarily sheds.
    pub fn admission_capacity(&self) -> usize {
        self.gate.capacity()
    }

    /// A snapshot of the service counters.
    pub fn stats(&self) -> ServeSnapshot {
        self.stats.snapshot()
    }

    /// A full metrics snapshot for exposition: this service's private
    /// series (`t4o_serve_*`, breaker/inflight gauges, request latency)
    /// merged with the process-global pipeline series (per-phase latency
    /// histograms, specializer decision counters). Render it with
    /// [`obs::MetricsSnapshot::to_prometheus`] or
    /// [`obs::MetricsSnapshot::to_json`].
    pub fn metrics(&self) -> obs::MetricsSnapshot {
        // Refresh the interner-contention gauge at exposition: the
        // interner counts lock collisions process-globally, and polling
        // here keeps the hot path free of any extra bookkeeping.
        self.intern_contention
            .set(i64::try_from(intern_contention()).unwrap_or(i64::MAX));
        self.registry.snapshot().merge(obs::global().snapshot())
    }

    /// Number of `Ready` entries currently cached.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                lock(s)
                    .map
                    .values()
                    .filter(|slot| matches!(slot, Slot::Ready(_)))
                    .count()
            })
            .sum()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of `InFlight` slots: fills currently owned by a leader. The
    /// network layer's drain path and the storm tests assert this returns
    /// to zero — a nonzero value after quiescence means a stranded flight
    /// (a leader that died without completing its rendezvous).
    pub fn inflight(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                lock(s)
                    .map
                    .values()
                    .filter(|slot| matches!(slot, Slot::InFlight(_)))
                    .count()
            })
            .sum()
    }

    /// Specializes `ext` to `statics`, answering from the cache when the
    /// identical request has been served before. Concurrent misses for
    /// the same key are deduplicated: one requester runs the specializer
    /// (on a dedicated large-stack thread), the rest wait and share its
    /// result. Runs under [`ServeConfig::default_deadline`], if set.
    ///
    /// # Errors
    ///
    /// Propagates specialization failures ([`ServeError::Spec`] for the
    /// leading requester, [`ServeError::Shared`] for coalesced waiters),
    /// sheds under overload ([`ServeError::Overloaded`]), and enforces
    /// deadlines ([`ServeError::DeadlineExceeded`]). Errors are never
    /// cached: the next request for the key retries.
    pub fn specialize(&self, ext: &GenExt, statics: &[Datum]) -> ServeResult {
        self.serve(ext, statics, None, self.default_deadline, None, true)
    }

    // ----- the versioned program registry --------------------------------

    /// Registers `ext` under the logical name `name` at a fresh epoch
    /// (or keeps the live registration when the content is identical —
    /// registering the same program twice is a no-op, not a new
    /// generation). If `name` is already live with *different* content,
    /// this behaves exactly like [`SpecService::redefine`]. Returns the
    /// live epoch.
    pub fn register(&self, name: &str, ext: &GenExt) -> Epoch {
        let (epoch, victims, changed) = self.programs.register(name, ext);
        if changed && epoch > Epoch::FIRST {
            obs::event_with(obs::EventKind::Redefined, epoch.get());
        }
        self.invalidate(victims);
        epoch
    }

    /// Redefines the program registered under `name`: atomically bumps
    /// its epoch, swaps in the new source, and invalidates every cached
    /// specialization derived from the old generations (via the recorded
    /// backedges — unrelated programs and anonymous entries are
    /// untouched; no full-cache flush). A fill already in flight for the
    /// old epoch completes and is served to the requests that were
    /// waiting on it, but its publication is tombstoned — it is never
    /// cached and never served again. Requests arriving after `redefine`
    /// returns always resolve the new epoch. A name never registered
    /// before simply starts at [`Epoch::FIRST`].
    pub fn redefine(&self, name: &str, ext: &GenExt) -> RedefineOutcome {
        let (epoch, victims) = self.programs.redefine(name, ext);
        obs::event_with(obs::EventKind::Redefined, epoch.get());
        let invalidated = self.invalidate(victims);
        RedefineOutcome { epoch, invalidated }
    }

    /// The live epoch of the program registered under `name`.
    pub fn epoch_of(&self, name: &str) -> Option<Epoch> {
        self.programs.epoch_of(name)
    }

    /// Every registered program as `(name, live epoch)`, sorted by name.
    pub fn programs(&self) -> Vec<(Arc<str>, Epoch)> {
        self.programs.programs()
    }

    /// Specializes the program registered under `name` to `statics`,
    /// resolving the live epoch first: the cache key, the breaker scope,
    /// and the invalidation backedge all bind to the resolved
    /// generation, so a result from before a redefinition can never be
    /// served after it.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownProgram`] when nothing is registered under
    /// `name`; otherwise exactly as [`SpecService::specialize`].
    pub fn specialize_named(&self, name: &str, statics: &[Datum]) -> ServeResult {
        self.serve_named(name, statics, self.default_deadline, None, true)
    }
}

impl Core {
    /// Drops invalidated dependents from the cache shards (only `Ready`
    /// entries — an in-flight slot belongs to its leader, whose
    /// publication the registry tombstones instead). Returns how many
    /// were dropped.
    fn invalidate(&self, victims: Vec<Key>) -> u64 {
        let mut dropped = 0u64;
        for key in victims {
            let mut guard = lock(self.shard_of(&key));
            if matches!(guard.map.get(&key), Some(Slot::Ready(_))) {
                if let Some(Slot::Ready(e)) = guard.map.remove(&key) {
                    guard.code_size -= e.size.min(guard.code_size);
                    dropped += 1;
                }
            }
        }
        if dropped > 0 {
            ServeStats::add(&self.stats.invalidated, dropped);
            obs::event_with(obs::EventKind::Invalidated, dropped);
        }
        dropped
    }

    fn shard_of(&self, key: &Key) -> &Mutex<Shard> {
        &self.shards[(key.digest as usize) % self.shards.len()]
    }
}

impl SpecService {
    /// Serves one [`SpecRequest`], honouring its deadline and
    /// cancellation token (falling back to the service defaults).
    pub fn specialize_request(&self, req: &SpecRequest) -> ServeResult {
        self.serve_request(req, true)
    }

    /// Dispatches a request to the anonymous or named serve path.
    fn serve_request(&self, req: &SpecRequest, spawn_stack: bool) -> ServeResult {
        let deadline = req.deadline.or(self.default_deadline);
        match &req.target {
            SpecTarget::Ext(ext) => self.serve(
                ext,
                &req.statics,
                None,
                deadline,
                req.cancel.as_ref(),
                spawn_stack,
            ),
            SpecTarget::Named(name) => self.serve_named(
                name,
                &req.statics,
                deadline,
                req.cancel.as_ref(),
                spawn_stack,
            ),
        }
    }

    /// Resolves a registered name to its live generation and serves
    /// against it, carrying the `(name, epoch)` backedge.
    fn serve_named(
        &self,
        name: &str,
        statics: &[Datum],
        deadline: Option<Duration>,
        cancel: Option<&CancelToken>,
        spawn_stack: bool,
    ) -> ServeResult {
        let Some((name, epoch, ext)) = self.programs.resolve(name) else {
            return Err(ServeError::UnknownProgram(name.to_string()));
        };
        let backedge = (name, epoch);
        self.serve(
            &ext,
            statics,
            Some(&backedge),
            deadline,
            cancel,
            spawn_stack,
        )
    }

    /// Runs a batch of requests over a bounded pool of `jobs` large-stack
    /// worker threads, returning one result per request, in order.
    /// Identical requests inside (or across) batches are deduplicated by
    /// the cache exactly as in [`SpecService::specialize`]; per-request
    /// deadlines and tokens are honoured as in
    /// [`SpecService::specialize_request`].
    ///
    /// Even with `jobs == 1` the batch runs on a pooled worker: one
    /// large-stack thread serves every miss inline, instead of paying a
    /// fresh thread spawn per miss as [`SpecService::specialize`] would.
    pub fn specialize_many(&self, requests: &[SpecRequest], jobs: usize) -> Vec<ServeResult> {
        let jobs = jobs.max(1).min(requests.len().max(1));
        let next = AtomicUsize::new(0);
        let results: Vec<Mutex<Option<ServeResult>>> =
            requests.iter().map(|_| Mutex::new(None)).collect();
        let mut spawn_error: Option<String> = None;
        std::thread::scope(|scope| {
            let mut workers = 0;
            for w in 0..jobs {
                let spawned = std::thread::Builder::new()
                    .name(format!("two4one-serve-{w}"))
                    .stack_size(self.stack_bytes)
                    .spawn_scoped(scope, || loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(req) = requests.get(i) else { break };
                        // Workers already run on big stacks, so serve
                        // misses inline instead of re-spawning.
                        let r = self.serve_request(req, false);
                        if let Some(slot) = results.get(i) {
                            *lock(slot) = Some(r);
                        }
                    });
                match spawned {
                    Ok(_) => workers += 1,
                    Err(e) => spawn_error = Some(e.to_string()),
                }
            }
            if workers == 0 {
                // Degenerate fallback: no pool, serve sequentially (each
                // miss still gets its own large-stack thread).
                for (req, slot) in requests.iter().zip(&results) {
                    *lock(slot) = Some(self.specialize_request(req));
                }
            }
        });
        results
            .into_iter()
            .map(|slot| {
                lock(&slot).take().unwrap_or_else(|| {
                    Err(match &spawn_error {
                        Some(msg) => ServeError::Spawn(msg.clone()),
                        None => ServeError::Worker("result never delivered".to_string()),
                    })
                })
            })
            .collect()
    }

    // ----- snapshot / restore -------------------------------------------

    /// Serializes every cached (`Ready`) entry into a `.t4os` snapshot:
    /// CRC-32-checked records in a deterministic (sorted) order, so equal
    /// cache contents produce identical bytes. In-flight fills are not
    /// included.
    pub fn snapshot_bytes(&self) -> Vec<u8> {
        let mut records: Vec<SnapRecord> = Vec::new();
        for shard in &self.shards {
            let guard = lock(shard);
            for (key, slot) in &guard.map {
                if let Slot::Ready(entry) = slot {
                    let (name, epoch) = match &key.backedge {
                        Some((n, e)) => (n.to_string(), e.get()),
                        None => (String::new(), 0),
                    };
                    records.push(SnapRecord {
                        program: key.program.to_string(),
                        entry: key.entry.to_string(),
                        statics: key.statics.to_string(),
                        name,
                        epoch,
                        stats: entry.outcome.stats.clone(),
                        image: entry.outcome.image.clone(),
                    });
                }
            }
        }
        records.sort_by(|a, b| {
            (&a.name, a.epoch, &a.program, &a.entry, &a.statics)
                .cmp(&(&b.name, b.epoch, &b.program, &b.entry, &b.statics))
        });
        persist::encode(&records)
    }

    /// Restores entries from snapshot bytes into the cache. Corrupt or
    /// torn records are quarantined (skipped and counted), never fatal; a
    /// key that is already live in the cache keeps its live entry. The
    /// usual capacity/code budgets apply — restoring may evict.
    ///
    /// Records carrying a registry backedge are judged against the live
    /// registry first: if the name is unregistered, or the registered
    /// program's identity differs from what the record was specialized
    /// against, the record is dropped as *stale* (counted in
    /// [`RestoreReport::stale_dropped`]) — a snapshot must never
    /// resurrect specializations of source that no longer exists.
    /// Matching records are rebased onto the live epoch (epochs are
    /// per-process; identity is what travels), and their backedges are
    /// re-recorded so a later redefinition invalidates them too.
    pub fn restore_bytes(&self, bytes: &[u8]) -> RestoreReport {
        let decoded = persist::decode(bytes);
        let mut restored = 0u64;
        let mut stale_dropped = 0u64;
        for rec in decoded.records {
            let backedge: Option<Backedge> = if rec.name.is_empty() {
                None
            } else {
                match self
                    .programs
                    .epoch_for_identity(&rec.name, &rec.program, &rec.entry)
                {
                    Some(epoch) => Some((Arc::from(rec.name.as_str()), epoch)),
                    None => {
                        stale_dropped += 1;
                        continue;
                    }
                }
            };
            let key = match &backedge {
                Some((name, epoch)) => {
                    Key::versioned(name, *epoch, &rec.program, &rec.entry, &rec.statics)
                }
                None => Key::new(&rec.program, &rec.entry, &rec.statics),
            };
            let shard = self.shard_of(&key);
            let outcome = Arc::new(SpecOutcome {
                image: rec.image,
                stats: rec.stats,
                profile: Arc::new(ExecProfile::default()),
            });
            let size = outcome.code_size().max(1);
            // The insert runs under the registry's epoch check (the same
            // tombstone gate as a live fill), so a redefinition racing
            // the restore cannot slip a newly stale record in.
            let published = self.programs.publish_if_live(backedge.as_ref(), &key, || {
                let mut guard = lock(shard);
                if guard.map.contains_key(&key) {
                    return None;
                }
                guard.map.insert(
                    key.clone(),
                    // Snapshots only ever hold full specializations, so a
                    // restored entry is never a promotion candidate.
                    Slot::Ready(Entry::new(
                        outcome.clone(),
                        self.ticket.fetch_add(1, Ordering::Relaxed),
                        size,
                        Tier::Specialized,
                    )),
                );
                guard.code_size += size;
                Some(guard.evict_to(self.per_shard_entries, self.per_shard_code))
            });
            match published {
                Some(Some(evicted)) => {
                    ServeStats::add(&self.stats.evictions, evicted);
                    restored += 1;
                }
                // The key is already live in the cache: keep the live entry.
                Some(None) => {}
                // The program was redefined between the identity check
                // and the publish: the record just became stale.
                None => stale_dropped += 1,
            }
        }
        ServeStats::add(&self.stats.restored, restored);
        ServeStats::add(&self.stats.quarantined, decoded.quarantined);
        ServeStats::add(&self.stats.stale_dropped, stale_dropped);
        if restored > 0 {
            obs::event_with(obs::EventKind::Restored, restored);
        }
        if decoded.quarantined > 0 {
            obs::event_with(obs::EventKind::Quarantined, decoded.quarantined);
        }
        if stale_dropped > 0 {
            obs::event_with(obs::EventKind::StaleDropped, stale_dropped);
        }
        RestoreReport {
            restored,
            quarantined: decoded.quarantined,
            stale_dropped,
        }
    }

    /// Snapshots the cache to `path` crash-safely: the bytes are written
    /// to a sibling temp file and renamed into place, so a crash during
    /// the write never leaves a torn file under the final name. (A torn
    /// file from a crash *mid-record* is still recovered gracefully by
    /// [`SpecService::restore`] — the tail is quarantined.)
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn snapshot(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        let mut tmp_name = path.as_os_str().to_os_string();
        tmp_name.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp_name);
        std::fs::write(&tmp, self.snapshot_bytes())?;
        std::fs::rename(&tmp, path)
    }

    /// Restores the cache from a `.t4os` snapshot file.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors (a *corrupt* file is not an error:
    /// its bad records are quarantined and reported).
    pub fn restore(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<RestoreReport> {
        let bytes = std::fs::read(path)?;
        Ok(self.restore_bytes(&bytes))
    }

    // ----- the gen-ext artifact cache ------------------------------------
}

impl Core {
    /// The compiled gen-ext for a resolved `(name, epoch)`: answered from
    /// the registry's artifact cache, or built now — once per generation;
    /// later fills for the same generation reuse it. A build the
    /// redefinition raced — the generation died while staging ran — is
    /// still returned for *this* fill (its waiters predate the
    /// redefinition, exactly like a tombstoned result publication) but
    /// never cached, and counts as an epoch conflict. A staging failure
    /// returns `None`: the fill falls back to the interpreted walker,
    /// which surfaces the underlying error in its own run.
    fn compiled_genext(&self, backedge: &Backedge, ext: &GenExt) -> Option<Arc<CompiledGenExt>> {
        let (name, epoch) = backedge;
        if let Some(compiled) = self.programs.compiled(name, *epoch) {
            return Some(compiled);
        }
        let compiled = match ext.compile() {
            Ok(c) => Arc::new(c),
            Err(_) => return None,
        };
        ServeStats::bump(&self.stats.genext_builds);
        if !self.programs.store_compiled(name, *epoch, compiled.clone()) {
            ServeStats::bump(&self.stats.epoch_conflicts);
            obs::event(obs::EventKind::EpochConflict);
        }
        Some(compiled)
    }
}

impl SpecService {
    /// The compiled generating extension cached for the *live* generation
    /// of `name`: present once the generation has served at least one
    /// cache miss (the first miss builds it), `None` for unregistered
    /// names and immediately after a redefinition — the artifact dies
    /// with its generation, exactly like the residual cache entries.
    pub fn genext_of(&self, name: &str) -> Option<Arc<CompiledGenExt>> {
        let epoch = self.programs.epoch_of(name)?;
        self.programs.compiled(name, epoch)
    }

    /// Serializes every compiled generating extension the registry holds
    /// into a `.t4og` gen-ext snapshot: CRC-32-checked records (name,
    /// source identity, entry, epoch, staged wire form) in name order, so
    /// equal registry contents produce identical bytes.
    pub fn genext_snapshot_bytes(&self) -> Vec<u8> {
        let records: Vec<GenextSnapRecord> = self
            .programs
            .compiled_entries()
            .into_iter()
            .map(
                |(name, epoch, identity, entry, compiled)| GenextSnapRecord {
                    name: name.to_string(),
                    identity,
                    entry,
                    epoch: epoch.get(),
                    genext: compiled.to_bytes().to_vec(),
                },
            )
            .collect();
        persist::encode_genexts(&records)
    }

    /// Restores compiled gen-exts from snapshot bytes into the registry's
    /// artifact cache, so the first cold miss of each restored program
    /// skips the gen-ext build entirely (cross-process warm start).
    ///
    /// The same judgement as [`SpecService::restore_bytes`] applies:
    /// corrupt records are quarantined; structurally intact records whose
    /// program is unregistered, or whose recorded source identity/entry
    /// no longer match the live registration, are dropped as stale —
    /// epochs are per-process, content identity is what travels. A
    /// generation that already built its artifact keeps it.
    pub fn restore_genexts_bytes(&self, bytes: &[u8]) -> GenextRestoreReport {
        let decoded = persist::decode_genexts(bytes);
        let mut restored = 0u64;
        let mut quarantined = decoded.quarantined;
        let mut stale_dropped = 0u64;
        for rec in decoded.records {
            let live = self
                .programs
                .epoch_for_identity(&rec.name, &rec.identity, &rec.entry)
                .and_then(|epoch| Some((epoch, self.programs.resolve(&rec.name)?.2)));
            let Some((epoch, ext)) = live else {
                stale_dropped += 1;
                continue;
            };
            let compiled = match CompiledGenExt::from_bytes(&rec.genext, ext.options().clone()) {
                Ok(c) => Arc::new(c),
                Err(_) => {
                    quarantined += 1;
                    continue;
                }
            };
            if self.programs.store_compiled(&rec.name, epoch, compiled) {
                restored += 1;
            } else {
                // Redefined between the identity check and the store:
                // the record just became stale.
                stale_dropped += 1;
            }
        }
        GenextRestoreReport {
            restored,
            quarantined,
            stale_dropped,
        }
    }

    /// Snapshots the gen-ext artifact cache to `path` crash-safely
    /// (temp-file-and-rename, like [`SpecService::snapshot`]).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn snapshot_genexts(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        let mut tmp_name = path.as_os_str().to_os_string();
        tmp_name.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp_name);
        std::fs::write(&tmp, self.genext_snapshot_bytes())?;
        std::fs::rename(&tmp, path)
    }

    /// Restores the gen-ext artifact cache from a `.t4og` snapshot file.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors (a *corrupt* file is not an error:
    /// its bad records are quarantined and reported).
    pub fn restore_genexts(
        &self,
        path: impl AsRef<std::path::Path>,
    ) -> std::io::Result<GenextRestoreReport> {
        let bytes = std::fs::read(path)?;
        Ok(self.restore_genexts_bytes(&bytes))
    }

    // ----- the serve path ------------------------------------------------

    /// Cache lookup / single-flight fill, under admission control, the
    /// per-request deadline, and the circuit breaker. `spawn_stack`
    /// selects whether a miss runs on a fresh large-stack thread (`true`,
    /// for callers on an ordinary stack) or inline (`false`, for pool
    /// workers that already have one).
    fn serve(
        &self,
        ext: &GenExt,
        statics: &[Datum],
        backedge: Option<&Backedge>,
        deadline: Option<Duration>,
        cancel: Option<&CancelToken>,
        spawn_stack: bool,
    ) -> ServeResult {
        self.requests.inc();
        let _span = obs::Span::enter(obs::Phase::Serve);
        let start = Instant::now();
        let r = self.serve_inner(ext, statics, backedge, deadline, cancel, spawn_stack);
        if obs::enabled() {
            self.request_latency.record_duration(start.elapsed());
        }
        r
    }

    fn serve_inner(
        &self,
        ext: &GenExt,
        statics: &[Datum],
        backedge: Option<&Backedge>,
        deadline: Option<Duration>,
        cancel: Option<&CancelToken>,
        spawn_stack: bool,
    ) -> ServeResult {
        // Arm the per-request clock. The token is shared with the caller
        // (explicit cancellation) and threaded into the specializer.
        let until = deadline.map(|d| Instant::now() + d);
        let token = match (cancel, until) {
            (None, None) => None,
            (c, u) => {
                let t = c.cloned().unwrap_or_default();
                if let (Some(at), Some(d)) = (u, deadline) {
                    t.expire_at(at, d);
                }
                Some(t)
            }
        };
        if let Some(t) = &token {
            if let Some(err) = self.stopped_error(t) {
                return Err(err);
            }
        }

        let key = request_key(ext, statics, backedge);
        let shard = self.shard_of(&key);

        // Breaker identity: registered programs by logical (name, entry)
        // with the failure streak scoped to the resolved epoch, so
        // breaker state follows the program across redefinitions without
        // one generation's record contaminating the next; anonymous
        // extensions by content digest.
        let (scope, epoch) = match backedge {
            Some((name, epoch)) => (
                BreakerScope::Named {
                    name: name.clone(),
                    entry: key.entry.clone(),
                },
                *epoch,
            ),
            None => (BreakerScope::Anon(key.program_digest), BreakerScope::ANON),
        };

        // Circuit breaker first: a tripped program never reaches the
        // cache-fill machinery (its errors are not cached, so without the
        // breaker every request would re-run the failing specialization).
        let verdict = self.breaker.preflight(&scope, epoch);
        if verdict == Verdict::Fallback {
            ServeStats::bump(&self.stats.breaker_open);
            obs::event(obs::EventKind::BreakerOpen);
            return self.breaker_fallback(ext, statics, spawn_stack);
        }

        enum Plan {
            Hit(Arc<SpecOutcome>),
            Wait(Arc<Flight>),
            Lead(Arc<Flight>),
        }

        // Set under the shard lock when this hit pushes a non-specialized
        // entry over the promotion threshold; acted on after the lock is
        // released (the queue has its own lock — never nest them).
        let mut promote: Option<u32> = None;
        let plan = {
            let mut guard = lock(shard);
            match guard.map.get_mut(&key) {
                Some(Slot::Ready(entry)) => {
                    entry.last_access = self.ticket.fetch_add(1, Ordering::Relaxed);
                    ServeStats::bump(&self.stats.hits);
                    obs::event(obs::EventKind::CacheHit);
                    if let Some(tier) = &self.core.tier {
                        if entry.tier != Tier::Specialized && !entry.queued && !entry.dead {
                            entry.hits += 1;
                            // Hotness = serve-path hits plus the image's own
                            // execution count (embedders running it through
                            // `run_image_profiled` feed the same decision).
                            if entry.hits + entry.outcome.profile.visits()
                                >= tier.promote_after.max(1)
                            {
                                entry.queued = true;
                                promote = Some(entry.escalation);
                            }
                        }
                    }
                    Plan::Hit(entry.outcome.clone())
                }
                Some(Slot::InFlight(flight)) => Plan::Wait(flight.clone()),
                None => {
                    let flight = Arc::new(Flight::default());
                    guard
                        .map
                        .insert(key.clone(), Slot::InFlight(flight.clone()));
                    obs::event(obs::EventKind::CacheMiss);
                    Plan::Lead(flight)
                }
            }
        };

        if let Some(escalation) = promote {
            self.core.enqueue_promotion(Candidate {
                key: key.clone(),
                ext: ext.clone(),
                statics: statics.to_vec(),
                backedge: backedge.cloned(),
                escalation,
            });
        }

        match plan {
            Plan::Hit(outcome) => {
                if verdict == Verdict::Probe {
                    self.breaker.record_success(&scope);
                }
                Ok(outcome)
            }
            Plan::Wait(flight) => {
                ServeStats::bump(&self.stats.coalesced);
                obs::event(obs::EventKind::Coalesced);
                let r = match flight.wait_cancellable(until, token.as_ref()) {
                    FlightWait::TimedOut => {
                        ServeStats::bump(&self.stats.deadline_exceeded);
                        obs::event(obs::EventKind::DeadlineExceeded);
                        Err(ServeError::DeadlineExceeded)
                    }
                    // The waiter's own token fired mid-wait (client gone or
                    // its deadline expired); it detaches without touching
                    // the leader, who publishes for the remaining waiters.
                    FlightWait::Detached => Err(match &token {
                        Some(t) => self.stopped_error(t).unwrap_or(ServeError::Cancelled),
                        None => ServeError::Cancelled,
                    }),
                    FlightWait::Done(Ok(outcome)) => {
                        ServeStats::bump(&self.stats.hits);
                        Ok(outcome)
                    }
                    FlightWait::Done(Err(msg)) => {
                        ServeStats::bump(&self.stats.errors);
                        Err(ServeError::Shared(msg))
                    }
                };
                // Waiters share the leader's run, which records its own
                // breaker outcome; a probing waiter only settles its
                // probe slot.
                if verdict == Verdict::Probe {
                    self.breaker_note(&scope, epoch, &r);
                }
                r
            }
            Plan::Lead(flight) => {
                // From here the in-flight slot is our responsibility: the
                // guard removes it and fails the flight if anything
                // unwinds before `finish_flight` takes over, so waiters
                // can never deadlock on an abandoned fill.
                let mut guard = FlightGuard {
                    shard,
                    key: &key,
                    flight: &flight,
                    armed: true,
                };
                let r = match self.gate.admit(until) {
                    Admission::Shed { queue_depth } => {
                        ServeStats::bump(&self.stats.shed);
                        obs::event_with(obs::EventKind::Shed, queue_depth as u64);
                        guard.abandon("request shed at admission (overload)");
                        if verdict == Verdict::Probe {
                            self.breaker.release_probe(&scope, epoch);
                        }
                        return Err(ServeError::Overloaded {
                            queue_depth,
                            retry_after_ms: 10 * (queue_depth as u64 + 1),
                        });
                    }
                    Admission::TimedOut => {
                        ServeStats::bump(&self.stats.deadline_exceeded);
                        obs::event(obs::EventKind::DeadlineExceeded);
                        guard.abandon("request deadline passed while queued for admission");
                        if verdict == Verdict::Probe {
                            self.breaker.release_probe(&scope, epoch);
                        }
                        return Err(ServeError::DeadlineExceeded);
                    }
                    Admission::Admitted(permit) => {
                        // Tier-0: answer the miss with the generically-
                        // compiled image (linear in the source, tens of
                        // microseconds) and leave full specialization to
                        // the background promotion workers. Otherwise run
                        // the full specializer synchronously, as ever.
                        let tier0 = self.core.tier.is_some();
                        let result = if tier0 {
                            self.core
                                .run_generic_fill(ext, statics, token.as_ref(), spawn_stack)
                        } else {
                            self.run_fill(ext, statics, &key, backedge, token.as_ref(), spawn_stack)
                        };
                        drop(permit);
                        guard.armed = false;
                        self.finish_flight(
                            ext,
                            statics,
                            &key,
                            backedge,
                            shard,
                            &flight,
                            result,
                            token.as_ref(),
                            tier0,
                        )
                    }
                };
                self.breaker_note(&scope, epoch, &r);
                r
            }
        }
    }
}

impl Core {
    /// Runs one cache fill (with escalated-budget retry) on the right
    /// stack, converting panics into [`ServeError::Worker`].
    ///
    /// A fill for a *registered* program runs through the program's
    /// compiled generating extension (built once per generation, cached
    /// in the registry — see [`SpecService::genext_of`]); an anonymous
    /// fill runs the interpreted specializer, since with no `(name,
    /// epoch)` there is nothing to key the artifact on.
    #[allow(clippy::type_complexity)]
    fn run_fill(
        &self,
        ext: &GenExt,
        statics: &[Datum],
        key: &Key,
        backedge: Option<&Backedge>,
        token: Option<&CancelToken>,
        spawn_stack: bool,
    ) -> Result<Result<(Image, SpecStats), Error>, ServeError> {
        let fill = || -> Result<(Image, SpecStats), Error> {
            if let Some(hook) = &self.fill_hook {
                (hook.0)();
            }
            let compiled = backedge.and_then(|be| self.compiled_genext(be, ext));
            let govern = |options: &SpecOptions, token: Option<&CancelToken>| match &compiled {
                Some(c) => c.specialize_object_governed(statics, options, token),
                None => ext.specialize_object_governed(statics, options, token),
            };
            let mut result = govern(ext.options(), token);
            let mut attempt: u32 = 0;
            while attempt < self.retry.max_retries {
                let transient = matches!(
                    &result,
                    Ok((_, stats)) if matches!(
                        stats.fallback_kind,
                        Some(LimitKind::UnfoldFuel | LimitKind::MemoEntries)
                    )
                );
                if !transient || token.is_some_and(|t| t.is_stopped()) {
                    break;
                }
                attempt += 1;
                ServeStats::bump(&self.stats.retried);
                obs::event_with(obs::EventKind::Retry, u64::from(attempt));
                std::thread::sleep(jittered(
                    self.retry.backoff,
                    key.digest ^ u64::from(attempt),
                ));
                let factor = self.retry.escalation.max(1).saturating_pow(attempt);
                let escalated = escalate_options(ext.options(), factor);
                match govern(&escalated, token) {
                    // A bigger budget got at least as far: keep it. Stop
                    // as soon as a run finishes without degrading.
                    Ok((image, stats)) => {
                        let done = !stats.degraded();
                        result = Ok((image, stats));
                        if done {
                            break;
                        }
                    }
                    // Escalation failing outright (it raced a deadline,
                    // say) never discards the degraded-but-usable image.
                    Err(_) => break,
                }
            }
            result
        };
        if spawn_stack {
            run_on_stack(self.stack_bytes, fill)
        } else {
            // Pool workers run fills inline; the panic boundary here
            // mirrors the thread-join boundary of `run_on_stack`.
            catch_unwind(AssertUnwindSafe(fill))
                .map_err(|_| ServeError::Worker("specialization worker panicked".to_string()))
        }
    }

    /// Publishes the leader's result: fills the cache on success, removes
    /// the in-flight slot on failure, and wakes waiters either way.
    ///
    /// A successful fill for a registered program only reaches the cache
    /// if its `(name, epoch)` backedge is still the live generation (the
    /// check and the insert run under the registry lock, so they cannot
    /// interleave with a `redefine`). When the epoch died mid-fill, the
    /// result is still completed into the flight — every waiter on it
    /// arrived before the redefinition and legitimately shares the
    /// old-generation result — but the publication is tombstoned: the
    /// in-flight slot is removed and nothing is cached, so no request
    /// arriving after the redefinition can ever observe it.
    ///
    /// With `tier0` set the published entry is marked [`Tier::Generic`]
    /// (the fill was the generic fast path, not a specializer run):
    /// `ext`/`statics` seed the promotion candidate when
    /// `promote_after == 0` asks for immediate background specialization.
    #[allow(clippy::too_many_arguments)]
    fn finish_flight(
        &self,
        ext: &GenExt,
        statics: &[Datum],
        key: &Key,
        backedge: Option<&Backedge>,
        shard: &Mutex<Shard>,
        flight: &Flight,
        result: Result<Result<(Image, SpecStats), Error>, ServeError>,
        token: Option<&CancelToken>,
        tier0: bool,
    ) -> ServeResult {
        match result {
            Ok(Ok((image, spec_stats))) => {
                let outcome = Arc::new(SpecOutcome {
                    image: Arc::new(image),
                    stats: spec_stats,
                    profile: Arc::new(ExecProfile::default()),
                });
                let size = outcome.code_size().max(1);
                let enqueue_now = tier0 && self.tier.as_ref().is_some_and(|t| t.promote_after == 0);
                let published = self.programs.publish_if_live(backedge, key, || {
                    let mut guard = lock(shard);
                    let mut entry = Entry::new(
                        outcome.clone(),
                        self.ticket.fetch_add(1, Ordering::Relaxed),
                        size,
                        if tier0 {
                            Tier::Generic
                        } else {
                            Tier::Specialized
                        },
                    );
                    entry.queued = enqueue_now;
                    guard.map.insert(key.clone(), Slot::Ready(entry));
                    guard.code_size += size;
                    guard.evict_to(self.per_shard_entries, self.per_shard_code)
                });
                ServeStats::bump(&self.stats.misses);
                if tier0 {
                    // Not a specializer run: the requester got the
                    // generic image. `spec_runs` stays a count of real
                    // specializations (the promotion worker bumps it).
                    self.tier_stats.tier0_served.inc();
                    obs::event(obs::EventKind::Tier0Served);
                } else {
                    ServeStats::bump(&self.stats.spec_runs);
                }
                match published {
                    Some(evicted) => {
                        ServeStats::add(&self.stats.evictions, evicted);
                        if enqueue_now {
                            self.enqueue_promotion(Candidate {
                                key: key.clone(),
                                ext: ext.clone(),
                                statics: statics.to_vec(),
                                backedge: backedge.cloned(),
                                escalation: 0,
                            });
                        }
                    }
                    None => {
                        // Tombstoned: drop our in-flight slot so the dead
                        // generation's key does not linger in the shard.
                        lock(shard).map.remove(key);
                        ServeStats::bump(&self.stats.epoch_conflicts);
                        obs::event(obs::EventKind::EpochConflict);
                    }
                }
                if !tier0 && outcome.stats.degraded() {
                    // A Tier-0 image is degraded by construction (fuel 0);
                    // counting it would drown the real signal.
                    ServeStats::bump(&self.stats.degraded);
                }
                flight.complete(Ok(outcome.clone()));
                Ok(outcome)
            }
            Ok(Err(engine_err)) => {
                lock(shard).map.remove(key);
                if !tier0 {
                    ServeStats::bump(&self.stats.spec_runs);
                }
                let serve_err = match cancellation_of(&engine_err, token) {
                    Some(e) => {
                        if matches!(e, ServeError::DeadlineExceeded) {
                            ServeStats::bump(&self.stats.deadline_exceeded);
                        }
                        e
                    }
                    None => {
                        ServeStats::bump(&self.stats.errors);
                        ServeError::Spec(engine_err)
                    }
                };
                flight.complete(Err(serve_err.to_string()));
                Err(serve_err)
            }
            Err(serve_err) => {
                lock(shard).map.remove(key);
                ServeStats::bump(&self.stats.errors);
                flight.complete(Err(serve_err.to_string()));
                Err(serve_err)
            }
        }
    }

    /// Runs the Tier-0 fill: generic compilation with no unfolding —
    /// the exact recipe of the breaker's fallback path, so a Tier-0
    /// response is bit-identical to the fallback image for the same
    /// request. Unlike the fallback it *is* published into the cache
    /// (marked [`Tier::Generic`]) and later replaced by promotion.
    #[allow(clippy::type_complexity)]
    fn run_generic_fill(
        &self,
        ext: &GenExt,
        statics: &[Datum],
        token: Option<&CancelToken>,
        spawn_stack: bool,
    ) -> Result<Result<(Image, SpecStats), Error>, ServeError> {
        let fill = || -> Result<(Image, SpecStats), Error> {
            if let Some(hook) = &self.fill_hook {
                (hook.0)();
            }
            ext.specialize_object_governed(statics, &generic_options(ext), token)
        };
        if spawn_stack {
            run_on_stack(self.stack_bytes, fill)
        } else {
            catch_unwind(AssertUnwindSafe(fill))
                .map_err(|_| ServeError::Worker("specialization worker panicked".to_string()))
        }
    }

    /// Hands a candidate to the promotion workers. Never blocks the
    /// serve path: when the queue is full (or the service is shutting
    /// down) the candidate is dropped and its cache entry re-armed, so a
    /// later hit simply tries again.
    fn enqueue_promotion(&self, cand: Candidate) {
        let Some(tier) = &self.tier else { return };
        let key = cand.key.clone();
        let accepted = {
            let mut q = lock(&tier.queue);
            if q.closed || q.q.len() >= PROMOTE_QUEUE_CAP {
                false
            } else {
                q.q.push_back(cand);
                true
            }
        };
        if accepted {
            self.tier_stats.queue_depth.add(1);
            tier.cv.notify_one();
            obs::event(obs::EventKind::PromoteEnqueued);
        } else if let Some(Slot::Ready(entry)) = lock(self.shard_of(&key)).map.get_mut(&key) {
            entry.queued = false;
        }
    }

    /// Body of one background promotion worker: pop candidates until the
    /// queue closes.
    fn promote_loop(&self) {
        let Some(tier) = &self.tier else { return };
        loop {
            let cand = {
                let mut q = lock(&tier.queue);
                loop {
                    // Closed beats non-empty: shutdown discards whatever
                    // is still queued instead of racing `Drop`'s join.
                    if q.closed {
                        return;
                    }
                    if let Some(c) = q.q.pop_front() {
                        break c;
                    }
                    q = tier.cv.wait(q).unwrap_or_else(PoisonError::into_inner);
                }
            };
            self.tier_stats.queue_depth.add(-1);
            self.promote_one(cand);
        }
    }

    /// Specializes one hot candidate off the request path and hot-swaps
    /// the result into its cache slot — *if* the entry is still there and
    /// its generation is still live. The swap runs under the registry's
    /// epoch check, exactly like a request-path publication: a `redefine`
    /// that lands mid-build tombstones the swap and the stale image is
    /// dropped on the floor.
    fn promote_one(&self, cand: Candidate) {
        let t0 = Instant::now();
        let factor = self.retry.escalation.max(1).saturating_pow(cand.escalation);
        let options = if cand.escalation == 0 {
            cand.ext.options().clone()
        } else {
            // Polyvariant re-specialization of a hot-but-degraded entry:
            // same escalation ladder as the request-path retry.
            escalate_options(cand.ext.options(), factor)
        };
        // First promotion of a generation also compiles its generating
        // extension here — off the request path — and caches it in the
        // registry for every later build of the same generation.
        let compiled = cand
            .backedge
            .as_ref()
            .and_then(|be| self.compiled_genext(be, &cand.ext));
        let built = catch_unwind(AssertUnwindSafe(|| match &compiled {
            Some(c) => c.specialize_object_governed(&cand.statics, &options, None),
            None => cand
                .ext
                .specialize_object_governed(&cand.statics, &options, None),
        }));
        let (image, spec_stats) = match built {
            Ok(Ok(r)) => r,
            // Specializer failed or panicked: demote. The generic image
            // keeps serving and this entry is never promoted again — its
            // failures must not re-run the specializer on every N hits.
            _ => {
                self.tier_stats.demotions.inc();
                obs::event(obs::EventKind::Demoted);
                let mut guard = lock(self.shard_of(&cand.key));
                if let Some(Slot::Ready(entry)) = guard.map.get_mut(&cand.key) {
                    entry.queued = false;
                    entry.dead = true;
                }
                return;
            }
        };
        let degraded = spec_stats.degraded();
        ServeStats::bump(&self.stats.spec_runs);
        if degraded {
            ServeStats::bump(&self.stats.degraded);
        }
        let outcome = Arc::new(SpecOutcome {
            image: Arc::new(image),
            stats: spec_stats,
            profile: Arc::new(ExecProfile::default()),
        });
        let size = outcome.code_size().max(1);
        let next_escalation = (cand.escalation + 1).min(MAX_ESCALATIONS);
        let dead = degraded && cand.escalation >= MAX_ESCALATIONS;
        let shard = self.shard_of(&cand.key);
        let published = self
            .programs
            .publish_if_live(cand.backedge.as_ref(), &cand.key, || {
                let mut guard = lock(shard);
                let shard_ref = &mut *guard;
                match shard_ref.map.get_mut(&cand.key) {
                    Some(Slot::Ready(entry)) => {
                        shard_ref.code_size =
                            shard_ref.code_size - entry.size.min(shard_ref.code_size) + size;
                        let mut next = Entry::new(
                            outcome.clone(),
                            entry.last_access,
                            size,
                            if degraded {
                                Tier::Degraded
                            } else {
                                Tier::Specialized
                            },
                        );
                        // A still-degraded swap re-arms with a bigger
                        // budget next round (until the ladder runs out);
                        // a clean one is final.
                        next.escalation = if degraded { next_escalation } else { 0 };
                        next.dead = dead;
                        *entry = next;
                        Some(shard_ref.evict_to(self.per_shard_entries, self.per_shard_code))
                    }
                    // Evicted, invalidated, or replaced by a fresh flight
                    // while we built: nothing to swap into.
                    _ => None,
                }
            });
        match published {
            Some(Some(evicted)) => {
                ServeStats::add(&self.stats.evictions, evicted);
                self.tier_stats.promotions.inc();
                self.tier_stats
                    .promotion_nanos
                    .record_duration(t0.elapsed());
                obs::event(obs::EventKind::Promoted);
            }
            // The slot vanished mid-build; drop the image silently.
            Some(None) => {}
            // The generation died mid-build (`redefine` raced us): the
            // stale-epoch image must never be swapped in.
            None => {
                self.tier_stats.swap_epoch_conflicts.inc();
                obs::event(obs::EventKind::SwapEpochConflict);
            }
        }
    }
}

impl SpecService {
    /// Serves generic (no-unfolding) fallback code for a program whose
    /// breaker is open. The result is *not* cached: it must disappear the
    /// moment the breaker closes, and producing it is linear in the
    /// source program.
    fn breaker_fallback(&self, ext: &GenExt, statics: &[Datum], spawn_stack: bool) -> ServeResult {
        let options = generic_options(ext);
        let run = || ext.specialize_object_governed(statics, &options, None);
        let result = if spawn_stack {
            run_on_stack(self.stack_bytes, run)
        } else {
            catch_unwind(AssertUnwindSafe(run))
                .map_err(|_| ServeError::Worker("fallback worker panicked".to_string()))
        };
        match result {
            Ok(Ok((image, stats))) => Ok(Arc::new(SpecOutcome {
                image: Arc::new(image),
                stats,
                profile: Arc::new(ExecProfile::default()),
            })),
            Ok(Err(e)) => Err(ServeError::BreakerOpen(e.to_string())),
            Err(e) => Err(ServeError::BreakerOpen(e.to_string())),
        }
    }

    /// Maps a fired token to the corresponding request error, bumping the
    /// deadline counter.
    fn stopped_error(&self, token: &CancelToken) -> Option<ServeError> {
        if token.is_cancelled() {
            Some(ServeError::Cancelled)
        } else if token.deadline_expired() {
            ServeStats::bump(&self.stats.deadline_exceeded);
            Some(ServeError::DeadlineExceeded)
        } else {
            None
        }
    }

    /// Feeds a leader/probe outcome to the breaker. Hard failures
    /// (specialization errors, dead workers, blown deadlines) count
    /// toward tripping; overload sheds and explicit cancellations are
    /// neutral.
    fn breaker_note(&self, scope: &BreakerScope, epoch: Epoch, result: &ServeResult) {
        match result {
            Ok(_) => self.breaker.record_success(scope),
            Err(
                ServeError::Spec(_)
                | ServeError::Worker(_)
                | ServeError::Shared(_)
                | ServeError::DeadlineExceeded,
            ) => self.breaker.record_failure(scope, epoch),
            Err(_) => self.breaker.release_probe(scope, epoch),
        }
    }
}

/// Removes the in-flight slot and fails the flight when a leader bails
/// out before `finish_flight` — including by panic. Without this, a
/// worker that dies mid-fill would leave an `InFlight` slot behind
/// forever and every later requester for the key would block on it.
struct FlightGuard<'a> {
    shard: &'a Mutex<Shard>,
    key: &'a Key,
    flight: &'a Arc<Flight>,
    armed: bool,
}

impl FlightGuard<'_> {
    /// Controlled bail-out with a meaningful message for waiters.
    fn abandon(&mut self, msg: &str) {
        self.armed = false;
        lock(self.shard).map.remove(self.key);
        self.flight.complete(Err(msg.to_string()));
    }
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            lock(self.shard).map.remove(self.key);
            self.flight.complete(Err(
                "specialization fill abandoned (worker panicked)".to_string()
            ));
        }
    }
}

/// Classifies an engine error as a request cancellation, if it is one.
fn cancellation_of(err: &Error, token: Option<&CancelToken>) -> Option<ServeError> {
    match err {
        Error::Pe(PeError::Limit(l)) if l.kind == LimitKind::Cancelled => {
            Some(if token.is_some_and(CancelToken::is_cancelled) {
                ServeError::Cancelled
            } else {
                ServeError::DeadlineExceeded
            })
        }
        _ => None,
    }
}

/// The generic-compilation recipe shared by the Tier-0 fast path and the
/// breaker fallback: zero unfold fuel under the fallback regime, i.e.
/// compile every reachable definition as-is. Linear in the source
/// program, and deterministic — the two paths produce bit-identical
/// images for one request.
fn generic_options(ext: &GenExt) -> SpecOptions {
    let mut options = ext.options().clone();
    options.limits.unfold_fuel = Some(0);
    options.fallback = true;
    options
}

/// Multiplies the transient budgets (unfold fuel, memo cap) for a retry.
fn escalate_options(options: &SpecOptions, factor: u64) -> SpecOptions {
    let mut o = options.clone();
    if let Some(fuel) = o.limits.unfold_fuel {
        o.limits.unfold_fuel = Some(fuel.saturating_mul(factor));
    }
    if let Some(cap) = o.limits.memo_cap {
        o.limits.memo_cap = Some(cap.saturating_mul(factor as usize));
    }
    o
}

/// Deterministic 50–150 % jitter around `base`, seeded by the request
/// key (SplitMix64 scramble) so tests are reproducible.
fn jittered(base: Duration, seed: u64) -> Duration {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    let pct = 50 + (z % 101) as u32;
    base * pct / 100
}

/// Builds the full cache key for a request: the extension's cache
/// identity (annotated program + options, rendered once per extension and
/// cached — see [`GenExt::cache_identity`]), the entry name, and the
/// rendered static arguments — plus, for requests resolved through the
/// registry, the `(name, epoch)` backedge, so two generations of one
/// program can never alias. Only the statics are rendered per request.
fn request_key(ext: &GenExt, statics: &[Datum], backedge: Option<&Backedge>) -> Key {
    let mut rendered = String::new();
    for (i, d) in statics.iter().enumerate() {
        if i > 0 {
            rendered.push(' ');
        }
        let _ = std::fmt::Write::write_fmt(&mut rendered, format_args!("{d}"));
    }
    match backedge {
        Some((name, epoch)) => Key::versioned(
            name,
            *epoch,
            ext.cache_identity(),
            ext.entry().as_str(),
            &rendered,
        ),
        None => Key::new(ext.cache_identity(), ext.entry().as_str(), &rendered),
    }
}

/// Runs `f` on a dedicated thread with `bytes` of stack, for the deeply
/// recursive specializer phases.
fn run_on_stack<T: Send>(bytes: usize, f: impl FnOnce() -> T + Send) -> Result<T, ServeError> {
    std::thread::scope(|scope| {
        let handle = std::thread::Builder::new()
            .name("two4one-spec".into())
            .stack_size(bytes)
            // Carry the worker's trace ring back so the request's spans
            // and events stay on the requesting thread's trace.
            .spawn_scoped(scope, move || {
                let result = f();
                (result, obs::take_trace())
            })
            .map_err(|e| ServeError::Spawn(e.to_string()))?;
        let (result, trace) = handle
            .join()
            .map_err(|_| ServeError::Worker("specialization worker panicked".to_string()))?;
        obs::absorb_trace(trace);
        Ok(result)
    })
}

// The service is shared by reference across worker threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SpecService>();
    assert_send_sync::<SpecOutcome>();
    assert_send_sync::<SpecRequest>();
    assert_send_sync::<SpecTarget>();
    assert_send_sync::<ServeError>();
    assert_send_sync::<ServeSnapshot>();
    assert_send_sync::<RedefineOutcome>();
    assert_send_sync::<GenextRestoreReport>();
    assert_send_sync::<TierSnapshot>();
};
