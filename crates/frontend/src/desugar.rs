//! Desugaring: concrete syntax → surface IR.
//!
//! Expands all derived forms into the seven-ish constructs of [`SExpr`].
//! Primitive resolution is *not* done here (it needs scope information and
//! happens in [`crate::rename`]); applications of primitive names are left
//! as ordinary applications.

use crate::surface::{SExpr, STop};
use crate::FrontError;
use two4one_syntax::datum::Datum;
use two4one_syntax::symbol::Symbol;

type Res<T> = Result<T, FrontError>;

fn err<T>(msg: impl Into<String>) -> Res<T> {
    Err(FrontError::Syntax(msg.into()))
}

fn sym_of(d: &Datum) -> Res<Symbol> {
    d.as_sym()
        .cloned()
        .ok_or_else(|| FrontError::Syntax(format!("expected identifier, got `{d}`")))
}

/// Desugars a whole program: a sequence of top-level `define` forms.
///
/// # Errors
///
/// Returns [`FrontError::Syntax`] on malformed forms or top-level
/// expressions (programs are sets of definitions, as in the paper).
pub fn desugar_program(data: &[Datum]) -> Res<Vec<STop>> {
    let mut out = Vec::new();
    for d in data {
        let parts = match d.as_form("define") {
            Some(p) => p,
            None => {
                return err(format!(
                    "only top-level definitions are supported, got `{d}`"
                ))
            }
        };
        out.push(desugar_define(&parts, d)?);
    }
    Ok(out)
}

/// Desugars the body of a `(define ...)` whose operands are `parts`.
fn desugar_define(parts: &[Datum], whole: &Datum) -> Res<STop> {
    if parts.len() < 2 {
        return err(format!("bad definition `{whole}`"));
    }
    match &parts[0] {
        // (define (f x ...) body ...)
        Datum::Pair(_) => {
            let head = parts[0]
                .to_vec()
                .ok_or_else(|| FrontError::Syntax(format!("bad definition head in `{whole}`")))?;
            if head.is_empty() {
                return err("empty definition head");
            }
            let name = sym_of(&head[0])?;
            let params = head[1..].iter().map(sym_of).collect::<Res<Vec<_>>>()?;
            let body = desugar_body(&parts[1..])?;
            Ok(STop { name, params, body })
        }
        // (define f (lambda (x ...) body ...))
        Datum::Sym(name) => {
            if parts.len() != 2 {
                return err(format!("bad definition `{whole}`"));
            }
            let rhs = desugar_expr(&parts[1])?;
            match rhs {
                SExpr::Lambda { params, body, .. } => Ok(STop {
                    name: *name,
                    params,
                    body: *body,
                }),
                _ => err(format!(
                    "top-level `{name}` must be a procedure definition \
                     (value definitions are not part of the core language)"
                )),
            }
        }
        _ => err(format!("bad definition `{whole}`")),
    }
}

/// Desugars a `<body>`: leading internal defines become a `letrec`,
/// multiple expressions become `begin`.
pub fn desugar_body(forms: &[Datum]) -> Res<SExpr> {
    if forms.is_empty() {
        return err("empty body");
    }
    let mut defs = Vec::new();
    let mut i = 0;
    while i < forms.len() {
        if let Some(parts) = forms[i].as_form("define") {
            if parts.len() < 2 {
                return err(format!("bad definition `{}`", forms[i]));
            }
            match &parts[0] {
                // (define (f x ...) body ...) — a local procedure.
                Datum::Pair(_) => {
                    let top = desugar_define(&parts, &forms[i])?;
                    defs.push((
                        top.name,
                        SExpr::Lambda {
                            name: top.name,
                            params: top.params,
                            body: Box::new(top.body),
                        },
                    ));
                }
                // (define x e) — a local value binding.
                Datum::Sym(name) => {
                    if parts.len() != 2 {
                        return err(format!("bad definition `{}`", forms[i]));
                    }
                    defs.push((*name, desugar_expr(&parts[1])?));
                }
                _ => return err(format!("bad definition `{}`", forms[i])),
            }
            i += 1;
        } else {
            break;
        }
    }
    let exprs = &forms[i..];
    if exprs.is_empty() {
        return err("body consists only of definitions");
    }
    let mut seq = exprs.iter().map(desugar_expr).collect::<Res<Vec<_>>>()?;
    let body = if seq.len() == 1 {
        seq.pop().expect("one element")
    } else {
        SExpr::Begin(seq)
    };
    if defs.is_empty() {
        Ok(body)
    } else {
        Ok(SExpr::Letrec(defs, Box::new(body)))
    }
}

/// Desugars a single expression.
///
/// # Errors
///
/// Returns [`FrontError::Syntax`] on malformed special forms.
pub fn desugar_expr(d: &Datum) -> Res<SExpr> {
    match d {
        Datum::Sym(s) => Ok(SExpr::Var(*s)),
        _ if d.is_self_evaluating() => Ok(SExpr::Const(d.clone())),
        Datum::Nil => err("empty application `()`"),
        Datum::Pair(_) => {
            let items = d
                .to_vec()
                .ok_or_else(|| FrontError::Syntax(format!("improper list `{d}`")))?;
            let head = items[0].as_sym().map(|s| s.as_str().to_string());
            match head.as_deref() {
                Some("quote") => {
                    if items.len() != 2 {
                        return err(format!("bad quote `{d}`"));
                    }
                    Ok(SExpr::Const(items[1].clone()))
                }
                Some("quasiquote") => {
                    if items.len() != 2 {
                        return err(format!("bad quasiquote `{d}`"));
                    }
                    desugar_quasi(&items[1], 1)
                }
                Some("unquote") | Some("unquote-splicing") => {
                    err(format!("`{d}` outside quasiquote"))
                }
                Some("if") => match items.len() {
                    3 => Ok(SExpr::if_(
                        desugar_expr(&items[1])?,
                        desugar_expr(&items[2])?,
                        SExpr::Const(Datum::Unspec),
                    )),
                    4 => Ok(SExpr::if_(
                        desugar_expr(&items[1])?,
                        desugar_expr(&items[2])?,
                        desugar_expr(&items[3])?,
                    )),
                    _ => err(format!("bad if `{d}`")),
                },
                Some("when") | Some("unless") => {
                    if items.len() < 3 {
                        return err(format!("bad {} `{d}`", head.expect("checked")));
                    }
                    let test = desugar_expr(&items[1])?;
                    let body = desugar_body(&items[2..])?;
                    Ok(if head.as_deref() == Some("when") {
                        SExpr::if_(test, body, SExpr::Const(Datum::Unspec))
                    } else {
                        SExpr::if_(test, SExpr::Const(Datum::Unspec), body)
                    })
                }
                Some("cond") => desugar_cond(&items[1..], d),
                Some("case") => desugar_case(&items[1..], d),
                Some("and") => Ok(desugar_and(&items[1..])?),
                Some("or") => Ok(desugar_or(&items[1..])?),
                Some("lambda") => {
                    if items.len() < 3 {
                        return err(format!("bad lambda `{d}`"));
                    }
                    let params = items[1]
                        .to_vec()
                        .ok_or_else(|| {
                            FrontError::Syntax(format!(
                                "bad lambda parameter list in `{d}` \
                                 (rest parameters are not supported)"
                            ))
                        })?
                        .iter()
                        .map(sym_of)
                        .collect::<Res<Vec<_>>>()?;
                    Ok(SExpr::Lambda {
                        name: Symbol::new("lam"),
                        params,
                        body: Box::new(desugar_body(&items[2..])?),
                    })
                }
                Some("let") => desugar_let(&items[1..], d),
                Some("let*") => {
                    if items.len() < 3 {
                        return err(format!("bad let* `{d}`"));
                    }
                    let bindings = desugar_bindings(&items[1])?;
                    let body = desugar_body(&items[2..])?;
                    Ok(bindings
                        .into_iter()
                        .rev()
                        .fold(body, |acc, b| SExpr::Let(vec![b], Box::new(acc))))
                }
                Some("letrec") | Some("letrec*") => {
                    if items.len() < 3 {
                        return err(format!("bad letrec `{d}`"));
                    }
                    let bindings = desugar_bindings(&items[1])?;
                    let body = desugar_body(&items[2..])?;
                    Ok(SExpr::Letrec(bindings, Box::new(body)))
                }
                Some("begin") => {
                    if items.len() < 2 {
                        return err("empty begin");
                    }
                    desugar_body(&items[1..])
                }
                Some("set!") => {
                    if items.len() != 3 {
                        return err(format!("bad set! `{d}`"));
                    }
                    Ok(SExpr::Set(
                        sym_of(&items[1])?,
                        Box::new(desugar_expr(&items[2])?),
                    ))
                }
                _ => {
                    let f = desugar_expr(&items[0])?;
                    let args = items[1..]
                        .iter()
                        .map(desugar_expr)
                        .collect::<Res<Vec<_>>>()?;
                    Ok(SExpr::app(f, args))
                }
            }
        }
        _ => err(format!("cannot desugar `{d}`")),
    }
}

fn desugar_bindings(d: &Datum) -> Res<Vec<(Symbol, SExpr)>> {
    let bs = d
        .to_vec()
        .ok_or_else(|| FrontError::Syntax(format!("bad binding list `{d}`")))?;
    bs.iter()
        .map(|b| {
            let pair = b
                .to_vec()
                .filter(|v| v.len() == 2)
                .ok_or_else(|| FrontError::Syntax(format!("bad binding `{b}`")))?;
            Ok((sym_of(&pair[0])?, desugar_expr(&pair[1])?))
        })
        .collect()
}

fn desugar_let(args: &[Datum], whole: &Datum) -> Res<SExpr> {
    if args.len() < 2 {
        return err(format!("bad let `{whole}`"));
    }
    // Named let: (let loop ((x init) ...) body ...)
    if let Datum::Sym(loop_name) = &args[0] {
        if args.len() < 3 {
            return err(format!("bad named let `{whole}`"));
        }
        let bindings = desugar_bindings(&args[1])?;
        let body = desugar_body(&args[2..])?;
        let (params, inits): (Vec<_>, Vec<_>) = bindings.into_iter().unzip();
        let lambda = SExpr::Lambda {
            name: *loop_name,
            params,
            body: Box::new(body),
        };
        return Ok(SExpr::Letrec(
            vec![(*loop_name, lambda)],
            Box::new(SExpr::app(SExpr::Var(*loop_name), inits)),
        ));
    }
    let bindings = desugar_bindings(&args[0])?;
    let body = desugar_body(&args[1..])?;
    Ok(SExpr::Let(bindings, Box::new(body)))
}

fn desugar_cond(clauses: &[Datum], whole: &Datum) -> Res<SExpr> {
    if clauses.is_empty() {
        return Ok(SExpr::Const(Datum::Unspec));
    }
    let clause = clauses[0]
        .to_vec()
        .filter(|v| !v.is_empty())
        .ok_or_else(|| FrontError::Syntax(format!("bad cond clause in `{whole}`")))?;
    let is_else = clause[0].as_sym().is_some_and(|s| s.as_str() == "else");
    if is_else {
        if !clauses[1..].is_empty() {
            return err(format!("clauses after else in `{whole}`"));
        }
        if clause.len() < 2 {
            return err("empty else clause");
        }
        return desugar_body(&clause[1..]);
    }
    let test = desugar_expr(&clause[0])?;
    let rest = desugar_cond(&clauses[1..], whole)?;
    if clause.len() == 1 {
        // (cond (t) ...) — value of the test if true. Bind to avoid
        // evaluating the test twice; renaming keeps `t%cond` hygienic
        // because user identifiers never contain `%`.
        let tmp = Symbol::new("t%cond");
        Ok(SExpr::Let(
            vec![(tmp, test)],
            Box::new(SExpr::if_(SExpr::Var(tmp), SExpr::Var(tmp), rest)),
        ))
    } else {
        Ok(SExpr::if_(test, desugar_body(&clause[1..])?, rest))
    }
}

fn desugar_case(args: &[Datum], whole: &Datum) -> Res<SExpr> {
    if args.is_empty() {
        return err(format!("bad case `{whole}`"));
    }
    let key = desugar_expr(&args[0])?;
    let tmp = Symbol::new("k%case");
    let mut acc = SExpr::Const(Datum::Unspec);
    for clause in args[1..].iter().rev() {
        let parts = clause
            .to_vec()
            .filter(|v| v.len() >= 2)
            .ok_or_else(|| FrontError::Syntax(format!("bad case clause in `{whole}`")))?;
        let body = desugar_body(&parts[1..])?;
        let is_else = parts[0].as_sym().is_some_and(|s| s.as_str() == "else");
        if is_else {
            acc = body;
        } else {
            if !parts[0].is_list() {
                return err(format!("bad case datum list in `{whole}`"));
            }
            // (memv key '(d1 d2 ...)) — our memq uses eqv? semantics.
            let test = SExpr::app(
                SExpr::var("memq"),
                vec![SExpr::Var(tmp), SExpr::Const(parts[0].clone())],
            );
            acc = SExpr::if_(test, body, acc);
        }
    }
    Ok(SExpr::Let(vec![(tmp, key)], Box::new(acc)))
}

fn desugar_and(args: &[Datum]) -> Res<SExpr> {
    match args {
        [] => Ok(SExpr::Const(Datum::Bool(true))),
        [e] => desugar_expr(e),
        [e, rest @ ..] => Ok(SExpr::if_(
            desugar_expr(e)?,
            desugar_and(rest)?,
            SExpr::Const(Datum::Bool(false)),
        )),
    }
}

fn desugar_or(args: &[Datum]) -> Res<SExpr> {
    match args {
        [] => Ok(SExpr::Const(Datum::Bool(false))),
        [e] => desugar_expr(e),
        [e, rest @ ..] => {
            let tmp = Symbol::new("t%or");
            Ok(SExpr::Let(
                vec![(tmp, desugar_expr(e)?)],
                Box::new(SExpr::if_(
                    SExpr::Var(tmp),
                    SExpr::Var(tmp),
                    desugar_or(rest)?,
                )),
            ))
        }
    }
}

/// Standard quasiquote expansion with nesting depth.
fn desugar_quasi(d: &Datum, depth: u32) -> Res<SExpr> {
    match d {
        Datum::Pair(_) => {
            // (unquote e)
            if let Some(args) = d.as_form("unquote") {
                if args.len() != 1 {
                    return err(format!("bad unquote `{d}`"));
                }
                return if depth == 1 {
                    desugar_expr(&args[0])
                } else {
                    // Rebuild the unquote form one level down.
                    Ok(SExpr::app(
                        SExpr::var("list"),
                        vec![
                            SExpr::Const(Datum::sym("unquote")),
                            desugar_quasi(&args[0], depth - 1)?,
                        ],
                    ))
                };
            }
            if let Some(args) = d.as_form("quasiquote") {
                if args.len() != 1 {
                    return err(format!("bad quasiquote `{d}`"));
                }
                return Ok(SExpr::app(
                    SExpr::var("list"),
                    vec![
                        SExpr::Const(Datum::sym("quasiquote")),
                        desugar_quasi(&args[0], depth + 1)?,
                    ],
                ));
            }
            let car = d.car().expect("pair");
            let cdr = d.cdr().expect("pair");
            // (,@e . rest)
            if let Some(args) = car.as_form("unquote-splicing") {
                if args.len() != 1 {
                    return err(format!("bad unquote-splicing `{car}`"));
                }
                if depth == 1 {
                    return Ok(SExpr::app(
                        SExpr::var("append"),
                        vec![desugar_expr(&args[0])?, desugar_quasi(cdr, depth)?],
                    ));
                }
                let rebuilt = SExpr::app(
                    SExpr::var("list"),
                    vec![
                        SExpr::Const(Datum::sym("unquote-splicing")),
                        desugar_quasi(&args[0], depth - 1)?,
                    ],
                );
                return Ok(SExpr::app(
                    SExpr::var("cons"),
                    vec![rebuilt, desugar_quasi(cdr, depth)?],
                ));
            }
            Ok(SExpr::app(
                SExpr::var("cons"),
                vec![desugar_quasi(car, depth)?, desugar_quasi(cdr, depth)?],
            ))
        }
        atom => Ok(SExpr::Const(atom.clone())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use two4one_syntax::reader::{read_all, read_one};

    fn de(src: &str) -> SExpr {
        desugar_expr(&read_one(src).unwrap()).unwrap()
    }

    #[test]
    fn basic_forms() {
        assert_eq!(de("x"), SExpr::var("x"));
        assert_eq!(de("5"), SExpr::Const(Datum::Int(5)));
        assert_eq!(de("'(a)"), SExpr::Const(read_one("(a)").unwrap()));
        assert!(matches!(de("(if a b c)"), SExpr::If(..)));
        assert!(matches!(de("(f x)"), SExpr::App(..)));
    }

    #[test]
    fn one_armed_if_gets_unspecified() {
        match de("(if a b)") {
            SExpr::If(_, _, a) => assert_eq!(*a, SExpr::Const(Datum::Unspec)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn and_or_expansion() {
        assert_eq!(de("(and)"), SExpr::Const(Datum::Bool(true)));
        assert_eq!(de("(or)"), SExpr::Const(Datum::Bool(false)));
        assert!(matches!(de("(and a b)"), SExpr::If(..)));
        assert!(matches!(de("(or a b)"), SExpr::Let(..)));
    }

    #[test]
    fn cond_with_else_and_testonly() {
        assert!(matches!(de("(cond (a 1) (else 2))"), SExpr::If(..)));
        assert!(matches!(de("(cond (a) (else 2))"), SExpr::Let(..)));
        assert!(desugar_expr(&read_one("(cond (else 1) (a 2))").unwrap()).is_err());
    }

    #[test]
    fn case_uses_memq() {
        let e = de("(case x ((1 2) 'small) (else 'big))");
        assert!(matches!(e, SExpr::Let(..)));
    }

    #[test]
    fn named_let_becomes_letrec() {
        let e = de("(let loop ((i 0)) (loop (+ i 1)))");
        match e {
            SExpr::Letrec(bs, body) => {
                assert_eq!(bs.len(), 1);
                assert_eq!(bs[0].0, Symbol::new("loop"));
                assert!(matches!(*body, SExpr::App(..)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn let_star_nests() {
        let e = de("(let* ((a 1) (b a)) b)");
        match e {
            SExpr::Let(bs, body) => {
                assert_eq!(bs.len(), 1);
                assert!(matches!(*body, SExpr::Let(..)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn bodies_with_internal_defines() {
        let e = de("(lambda (x) (define (f y) y) (f x))");
        match e {
            SExpr::Lambda { body, .. } => assert!(matches!(*body, SExpr::Letrec(..))),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn multi_expression_bodies_become_begin() {
        let e = de("(lambda () (display 1) 2)");
        match e {
            SExpr::Lambda { body, .. } => assert!(matches!(*body, SExpr::Begin(_))),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn quasiquote_simple() {
        // `(a ,b) => (cons 'a (cons b '()))
        let e = de("`(a ,b)");
        match &e {
            SExpr::App(f, args) => {
                assert_eq!(**f, SExpr::var("cons"));
                assert_eq!(args[0], SExpr::Const(Datum::sym("a")));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn quasiquote_splicing() {
        let e = de("`(,@xs 1)");
        match &e {
            SExpr::App(f, args) => {
                assert_eq!(**f, SExpr::var("append"));
                assert_eq!(args[0], SExpr::var("xs"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn nested_quasiquote_preserves_inner() {
        // ``(,x) at depth 2 keeps the inner unquote as data.
        let e = de("``(,x)");
        // Just check it desugars without touching x as a variable.
        fn has_var(e: &SExpr, name: &str) -> bool {
            match e {
                SExpr::Var(s) => s.as_str() == name,
                SExpr::App(f, args) => has_var(f, name) || args.iter().any(|a| has_var(a, name)),
                SExpr::Const(_) => false,
                _ => false,
            }
        }
        assert!(!has_var(&e, "x"), "inner unquote must stay quoted: {e:?}");
    }

    #[test]
    fn program_shapes() {
        let tops =
            desugar_program(&read_all("(define (f x) x) (define g (lambda (y) y))").unwrap())
                .unwrap();
        assert_eq!(tops.len(), 2);
        assert_eq!(tops[1].name, Symbol::new("g"));
        assert_eq!(tops[1].params.len(), 1);
        assert!(desugar_program(&read_all("(+ 1 2)").unwrap()).is_err());
        assert!(desugar_program(&read_all("(define x 5)").unwrap()).is_err());
    }

    #[test]
    fn set_bang() {
        assert!(matches!(de("(set! x 1)"), SExpr::Set(..)));
        assert!(desugar_expr(&read_one("(set! (f) 1)").unwrap()).is_err());
    }
}
