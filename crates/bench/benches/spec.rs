//! Cold-path phase split: where does a cold specialization request spend
//! its time?
//!
//! The serving benchmarks (`serve.rs`) measure the cold path end to end;
//! this file breaks it into its phases so an optimization PR can see
//! *which* phase moved:
//!
//! * `read-front-end` — reader + desugaring + renaming + lambda lifting;
//! * `bta` — binding-time analysis (building the generating extension);
//! * `specialize` — the specializer producing residual ANF *source*;
//! * `compile` — the stock byte-code compiler over that residual program;
//! * `vm-exec` — executing the compiled residual code once;
//! * `fused/spec-to-object` — specialize + compile as the single composed
//!   pass of the paper, for comparison against `specialize` + `compile`.
//!
//! Subject: the MIXWELL interpreter specialized over its static program —
//! the paper's headline workload. Results land in `BENCH_spec.json` so
//! successive PRs can compare per-phase trajectories.

use std::hint::black_box;
use std::time::Instant;
use two4one::{compile_program, with_stack, Machine, Value};
use two4one_bench::harness::{self, Criterion};
use two4one_bench::subjects;
use two4one_bench::{criterion_group, criterion_main};

fn bench_spec_phases(c: &mut Criterion) {
    let mut group = c.benchmark_group("spec_phases");
    group.sample_size(10);

    let subject = subjects().remove(0); // MIXWELL
    let src: &'static str = subject.interp_src;
    let entry: &'static str = subject.entry;
    let pgg = subject.pgg();
    let parsed = subject.parsed();
    let genext = subject.genext();
    let statics = vec![subject.program.clone()];
    let run_args = subject.run_args.clone();

    // Phase 1: reader + front end.
    {
        let pgg = subject.pgg();
        group.bench_function("read-front-end", move |b| {
            b.iter(|| black_box(pgg.parse(src).expect("parse")))
        });
    }

    // Phase 2: binding-time analysis (cogen builds the generating
    // extension; the division is the compilation division of Sec. 7).
    {
        let parsed = parsed.clone();
        let division = two4one::Division::new([two4one::BT::Static, two4one::BT::Dynamic]);
        group.bench_function("bta", move |b| {
            b.iter(|| black_box(pgg.cogen(&parsed, entry, &division).expect("cogen")))
        });
    }

    // Phase 3: specialization to residual source (ANF). Runs on a big
    // stack: the specializer recurses over the interpreter.
    {
        let g = genext.clone();
        let s = statics.clone();
        group.bench_function("specialize", move |b| {
            b.iter_custom(|iters| {
                let g = g.clone();
                let s = s.clone();
                with_stack(move || {
                    let t0 = Instant::now();
                    for _ in 0..iters {
                        black_box(g.specialize_source(&s).expect("specialize").size());
                    }
                    t0.elapsed()
                })
            })
        });
    }

    // Phase 4: byte-code compilation of the residual program.
    let residual = {
        let g = genext.clone();
        let s = statics.clone();
        with_stack(move || g.specialize_source(&s).expect("residual"))
    };
    {
        let residual = residual.clone();
        group.bench_function("compile", move |b| {
            b.iter(|| {
                black_box(
                    compile_program(&residual, entry)
                        .expect("compile")
                        .code_size(),
                )
            })
        });
    }

    // Phase 5: one execution of the compiled residual code.
    {
        let image = compile_program(&residual, entry).expect("compile residual");
        let args = run_args.clone();
        group.bench_function("vm-exec", move |b| {
            b.iter(|| {
                let mut m = Machine::load(&image);
                let argv = vec![Value::from(&args)];
                black_box(m.call_global(&image.entry, argv).expect("run"))
            })
        });
    }

    // Phase 5b: the same execution with a tiered-serving profile
    // attached. The VM flushes its fetch/retire/visit counters at the
    // amortized deadline stride, so the gap between this row and
    // `vm-exec` is the whole cost of profiling a warm request (design
    // budget: under 2%).
    {
        let image = compile_program(&residual, entry).expect("compile residual");
        let args = run_args.clone();
        let profile = std::sync::Arc::new(two4one::ExecProfile::default());
        group.bench_function("vm-exec-profiled", move |b| {
            b.iter(|| {
                let mut m = Machine::load(&image).with_profile(profile.clone());
                let argv = vec![Value::from(&args)];
                black_box(m.call_global(&image.entry, argv).expect("run profiled"))
            })
        });
    }

    // The composed pass: residual object code with no residual syntax
    // tree in between — should beat `specialize` + `compile` run apart.
    {
        let g = genext.clone();
        let s = statics.clone();
        group.bench_function("fused/spec-to-object", move |b| {
            b.iter_custom(|iters| {
                let g = g.clone();
                let s = s.clone();
                with_stack(move || {
                    let t0 = Instant::now();
                    for _ in 0..iters {
                        black_box(g.specialize_object(&s).expect("fused").code_size());
                    }
                    t0.elapsed()
                })
            })
        });
    }

    // Phase 7: staging the gen-ext to bytecode — the one-time build cost
    // of the *compiled* generating extension.
    {
        let g = genext.clone();
        group.bench_function("genext-build", move |b| {
            b.iter(|| black_box(g.compile().expect("genext-build").to_bytes().len()))
        });
    }

    // Phase 8: cold specialization through the compiled gen-ext — the
    // artifact a serving process keeps per registered program (or
    // restores from a `.t4og` snapshot). Directly comparable to
    // `fused/spec-to-object`, which is the same residual image produced
    // by the interpreted walker.
    {
        let compiled = genext.compile().expect("compile genext");
        let s = statics.clone();
        group.bench_function("cold-genext", move |b| {
            b.iter_custom(|iters| {
                let c = compiled.clone();
                let s = s.clone();
                with_stack(move || {
                    let t0 = Instant::now();
                    for _ in 0..iters {
                        black_box(
                            c.specialize_object_with_stats(&s)
                                .expect("cold-genext")
                                .0
                                .code_size(),
                        );
                    }
                    t0.elapsed()
                })
            })
        });
    }

    report(&group);
}

/// Prints the phase breakdown and writes the trajectory file.
fn report(group: &harness::Group) {
    let phase = |id: &str| -> f64 {
        group
            .results()
            .iter()
            .find(|r| r.id == id)
            .map(|r| r.median.as_secs_f64() * 1e3)
            .unwrap_or_else(|| panic!("missing phase {id}"))
    };
    let read = phase("read-front-end");
    let bta = phase("bta");
    let spec = phase("specialize");
    let compile = phase("compile");
    let exec = phase("vm-exec");
    let execp = phase("vm-exec-profiled");
    let fused = phase("fused/spec-to-object");
    let gbuild = phase("genext-build");
    let gcold = phase("cold-genext");
    let staged = spec + compile;
    let total = read + bta + staged + exec;
    println!("  cold path, MIXWELL (medians):");
    for (name, ms) in [
        ("read+front-end", read),
        ("bta", bta),
        ("specialize", spec),
        ("compile", compile),
        ("vm-exec", exec),
    ] {
        println!("    {name:<16} {ms:8.3} ms  ({:5.1}%)", 100.0 * ms / total);
    }
    println!(
        "    vm-exec-profiled {execp:8.3} ms  (counter overhead {:+.1}%)",
        (execp / exec - 1.0) * 100.0
    );
    println!("    staged spec+compile {staged:8.3} ms");
    println!(
        "    fused spec-to-object {fused:7.3} ms  ({:.2}x staged)",
        staged / fused
    );
    println!("    genext-build     {gbuild:8.3} ms  (one-time, amortized over the cache)");
    println!(
        "    cold-genext      {gcold:8.3} ms  ({:.2}x interpreted specialize, {:.2}x fused)",
        spec / gcold,
        fused / gcold
    );

    // Anchor to the workspace root so the trajectory file lands in the
    // same place regardless of cargo's bench working directory.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_spec.json");
    harness::write_json(path, group).expect("write BENCH_spec.json");
    println!("  wrote BENCH_spec.json");

    // Sanity floors, loose enough for a 1-sample CI smoke run: every
    // phase must actually be measured, and the fused pass must not lose
    // badly to running its two halves apart (it skips the residual tree).
    for (name, ms) in [("read", read), ("bta", bta), ("spec", spec)] {
        assert!(ms > 0.0, "phase {name} measured as zero");
    }
    assert!(
        fused < staged * 1.5,
        "fused generation ({fused:.3} ms) much slower than staged ({staged:.3} ms)"
    );
    // The compiled gen-ext earns its keep: a cold miss through the
    // bytecode machine must beat the interpreted specializer by 2x on the
    // same workload (it runs at ~2.2x on an idle machine, and the margin
    // widens under 1-sample smoke runs because the interpreted baseline
    // pays the warmup).
    // Execution profiling is a strided counter flush: its design budget
    // is under 2% on the warm path. The floor is looser because both
    // rows are microsecond-scale samples on shared CI hardware.
    assert!(
        execp <= exec * 1.25,
        "profiled execution ({execp:.3} ms) too far above plain ({exec:.3} ms)"
    );
    assert!(
        gcold * 2.0 <= spec,
        "cold-genext ({gcold:.3} ms) is less than 2x faster than the \
         interpreted specializer ({spec:.3} ms)"
    );
}

criterion_group!(benches, bench_spec_phases);
criterion_main!(benches);
