//! The surface intermediate representation.
//!
//! Sits between concrete syntax and Core Scheme: special forms are already
//! expanded, but multi-binding `let`, `letrec`, `begin`, and `set!` still
//! exist. The passes in this crate progressively remove them.

use two4one_syntax::datum::Datum;
use two4one_syntax::prim::Prim;
use two4one_syntax::symbol::Symbol;

/// A surface expression.
#[derive(Debug, Clone, PartialEq)]
pub enum SExpr {
    /// A constant.
    Const(Datum),
    /// A variable.
    Var(Symbol),
    /// A lambda with a name hint.
    Lambda {
        /// Name hint for diagnostics and template names.
        name: Symbol,
        /// Formals.
        params: Vec<Symbol>,
        /// Body (already a single expression).
        body: Box<SExpr>,
    },
    /// `(if t c a)`.
    If(Box<SExpr>, Box<SExpr>, Box<SExpr>),
    /// Parallel multi-binding `let`.
    Let(Vec<(Symbol, SExpr)>, Box<SExpr>),
    /// `letrec`.
    Letrec(Vec<(Symbol, SExpr)>, Box<SExpr>),
    /// `(set! x e)` — removed by assignment elimination.
    Set(Symbol, Box<SExpr>),
    /// `(begin e ...)` — non-empty sequence.
    Begin(Vec<SExpr>),
    /// Application.
    App(Box<SExpr>, Vec<SExpr>),
    /// Primitive application (introduced by the renamer).
    Prim(Prim, Vec<SExpr>),
}

impl SExpr {
    /// Convenience `if` constructor.
    pub fn if_(t: SExpr, c: SExpr, a: SExpr) -> SExpr {
        SExpr::If(Box::new(t), Box::new(c), Box::new(a))
    }

    /// Convenience application constructor.
    pub fn app(f: SExpr, args: Vec<SExpr>) -> SExpr {
        SExpr::App(Box::new(f), args)
    }

    /// Variable reference by name.
    pub fn var(name: &str) -> SExpr {
        SExpr::Var(Symbol::new(name))
    }

    /// Walks the expression, applying `f` to every subexpression bottom-up.
    pub fn map_subexprs(self, f: &mut impl FnMut(SExpr) -> SExpr) -> SExpr {
        let e = match self {
            SExpr::Const(_) | SExpr::Var(_) => self,
            SExpr::Lambda { name, params, body } => SExpr::Lambda {
                name,
                params,
                body: Box::new(body.map_subexprs(f)),
            },
            SExpr::If(a, b, c) => {
                SExpr::if_(a.map_subexprs(f), b.map_subexprs(f), c.map_subexprs(f))
            }
            SExpr::Let(bs, body) => SExpr::Let(
                bs.into_iter()
                    .map(|(x, e)| (x, e.map_subexprs(f)))
                    .collect(),
                Box::new(body.map_subexprs(f)),
            ),
            SExpr::Letrec(bs, body) => SExpr::Letrec(
                bs.into_iter()
                    .map(|(x, e)| (x, e.map_subexprs(f)))
                    .collect(),
                Box::new(body.map_subexprs(f)),
            ),
            SExpr::Set(x, e) => SExpr::Set(x, Box::new(e.map_subexprs(f))),
            SExpr::Begin(es) => SExpr::Begin(es.into_iter().map(|e| e.map_subexprs(f)).collect()),
            SExpr::App(g, args) => SExpr::app(
                g.map_subexprs(f),
                args.into_iter().map(|e| e.map_subexprs(f)).collect(),
            ),
            SExpr::Prim(p, args) => {
                SExpr::Prim(p, args.into_iter().map(|e| e.map_subexprs(f)).collect())
            }
        };
        f(e)
    }
}

/// A desugared top-level definition.
#[derive(Debug, Clone, PartialEq)]
pub struct STop {
    /// The global name.
    pub name: Symbol,
    /// Parameters.
    pub params: Vec<Symbol>,
    /// Body.
    pub body: SExpr,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_subexprs_visits_everything() {
        let e = SExpr::if_(
            SExpr::var("a"),
            SExpr::Begin(vec![SExpr::var("b")]),
            SExpr::Prim(Prim::Add, vec![SExpr::var("c")]),
        );
        let mut count = 0;
        e.map_subexprs(&mut |e| {
            count += 1;
            e
        });
        assert_eq!(count, 6);
    }
}
