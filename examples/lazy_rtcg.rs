//! Run-time code generation for a lazy language: specializing the LAZY
//! interpreter compiles call-by-name programs — thunks and all — into
//! byte-code closures (Sec. 7's second benchmark subject).
//!
//! ```text
//! cargo run --example lazy_rtcg
//! ```

use two4one::{interpret, run_image, with_stack, Datum, Division, Pgg, BT};
use two4one_langs as langs;

fn main() -> Result<(), two4one::Error> {
    with_stack(run)
}

fn run() -> Result<(), two4one::Error> {
    let mut pgg = Pgg::new();
    for (name, policy) in langs::lazy_policies() {
        pgg = pgg.policy(name, policy);
    }
    let interp = pgg.parse(langs::LAZY_INTERP)?;
    let genext = pgg.cogen(
        &interp,
        "lazy-run",
        &Division::new([BT::Static, BT::Dynamic]),
    )?;

    let program = langs::lazy_program();
    println!("LAZY input program (an infinite stream pipeline):\n{program}\n");

    // The program sums the first k squares of naturals starting at n; it
    // only terminates because cons is lazy.
    let args = Datum::list([Datum::Int(5), Datum::Int(6)]);
    let slow = interpret(&interp, "lazy-run", &[program.clone(), args.clone()])?;
    println!("interpreted : sum = {}", slow.value);

    // Residual source: thunks survive as residual lambdas.
    let residual = genext.specialize_source(std::slice::from_ref(&program))?;
    println!(
        "\nresidual program ({} definitions) — note the residual thunks:\n{}",
        residual.defs.len(),
        residual.to_source()
    );

    // Fused: object code at once.
    let image = genext.specialize_object(&[program])?;
    let fast = run_image(&image, "lazy-run", &[args])?;
    println!("compiled    : sum = {}", fast.value);
    assert_eq!(slow.value, fast.value);
    Ok(())
}
