//! Per-program circuit breaking.
//!
//! A program whose specialization keeps failing hard (engine errors,
//! dead workers, blown deadlines) would otherwise re-run the specializer
//! on every request — errors are deliberately not cached. The breaker
//! watches consecutive hard failures per *program* (across all static
//! arguments): after `threshold` of them it opens and the service
//! answers with generically-compiled fallback code instead of
//! specializing. After `cooldown`, exactly one request is let through as
//! a half-open probe; success closes the breaker, failure re-opens it
//! for another cooldown.
//!
//! Programs are identified by a [`BreakerScope`]: registered programs by
//! their logical `(name, entry)` — which survives redefinition — and
//! anonymous extensions by their content digest. The failure streak
//! itself is scoped to the [`Epoch`] it was recorded under: a streak
//! from a dead generation is discarded on first contact with the live
//! one, so a pathological v1 never blocks a healthy v2, and a bad v2
//! starts from a clean record instead of inheriting v1's standing.
//!
//! State is only kept for failing programs and is dropped again on the
//! first success, so the table cannot grow with healthy traffic.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use two4one::{obs, Epoch};

use crate::cache::lock;

/// Circuit-breaker tuning (see [`ServeConfig`](crate::ServeConfig)).
#[derive(Debug, Clone)]
pub struct BreakerPolicy {
    /// Consecutive hard failures (per program) that trip the breaker.
    /// `0` disables circuit breaking entirely.
    pub threshold: u32,
    /// How long a tripped breaker stays open before letting one half-open
    /// probe through.
    pub cooldown: Duration,
}

impl Default for BreakerPolicy {
    fn default() -> Self {
        BreakerPolicy {
            threshold: 5,
            cooldown: Duration::from_millis(500),
        }
    }
}

/// How the breaker identifies one specialization target.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) enum BreakerScope {
    /// A registered program: the logical `(name, entry)`. Stable across
    /// redefinitions, so breaker state follows the program, not the
    /// bytes of any one generation.
    Named {
        /// The registry name.
        name: Arc<str>,
        /// The entry point.
        entry: Arc<str>,
    },
    /// An anonymous extension, identified by its (program, entry)
    /// content digest. Such programs cannot be redefined — new content
    /// is simply a different digest — so their streaks live at
    /// [`Epoch::ANON`].
    Anon(u64),
}

impl BreakerScope {
    /// The epoch anonymous scopes record their streaks under.
    pub(crate) const ANON: Epoch = Epoch::from_raw(0);
}

/// What the breaker says about an arriving request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Verdict {
    /// Healthy (or unknown) program: proceed normally.
    Pass,
    /// The breaker is half-open and this request is the probe; its
    /// outcome decides whether the breaker closes.
    Probe,
    /// The breaker is open: do not specialize, serve fallback code.
    Fallback,
}

#[derive(Debug)]
struct BreakerEntry {
    /// The generation this streak was recorded under; a different live
    /// epoch voids the entry.
    epoch: Epoch,
    fails: u32,
    open_until: Option<Instant>,
    probing: bool,
}

impl BreakerEntry {
    fn fresh(epoch: Epoch) -> Self {
        BreakerEntry {
            epoch,
            fails: 0,
            open_until: None,
            probing: false,
        }
    }
}

#[derive(Debug)]
pub(crate) struct Breaker {
    policy: BreakerPolicy,
    entries: Mutex<HashMap<BreakerScope, BreakerEntry>>,
    /// Number of currently open (tripped) breakers, for the exposition
    /// page (`t4o_breaker_open`).
    open_gauge: obs::Gauge,
}

impl Breaker {
    pub(crate) fn new(policy: BreakerPolicy, open_gauge: obs::Gauge) -> Self {
        Breaker {
            policy,
            entries: Mutex::new(HashMap::new()),
            open_gauge,
        }
    }

    pub(crate) fn preflight(&self, scope: &BreakerScope, epoch: Epoch) -> Verdict {
        if self.policy.threshold == 0 {
            return Verdict::Pass;
        }
        let mut map = lock(&self.entries);
        let Some(e) = map.get_mut(scope) else {
            return Verdict::Pass;
        };
        if e.epoch != epoch {
            // The program was redefined since this streak was recorded:
            // the new generation is judged on its own record.
            if e.open_until.is_some() {
                self.open_gauge.add(-1);
            }
            map.remove(scope);
            return Verdict::Pass;
        }
        match e.open_until {
            None => Verdict::Pass,
            Some(t) if Instant::now() < t => Verdict::Fallback,
            // Cooldown over: one probe at a time.
            Some(_) if e.probing => Verdict::Fallback,
            Some(_) => {
                e.probing = true;
                Verdict::Probe
            }
        }
    }

    /// A specialization for the program succeeded: close the breaker and
    /// forget it (whatever epoch the streak was from).
    pub(crate) fn record_success(&self, scope: &BreakerScope) {
        if self.policy.threshold == 0 {
            return;
        }
        if let Some(e) = lock(&self.entries).remove(scope) {
            if e.open_until.is_some() {
                self.open_gauge.add(-1);
            }
        }
    }

    /// A hard failure under `epoch`: count it, and (re-)open the breaker
    /// at threshold. A streak left over from a dead epoch is discarded
    /// first — each generation fails on its own merits.
    pub(crate) fn record_failure(&self, scope: &BreakerScope, epoch: Epoch) {
        if self.policy.threshold == 0 {
            return;
        }
        let mut map = lock(&self.entries);
        let e = map
            .entry(scope.clone())
            .or_insert_with(|| BreakerEntry::fresh(epoch));
        if e.epoch != epoch {
            if e.open_until.is_some() {
                self.open_gauge.add(-1);
            }
            *e = BreakerEntry::fresh(epoch);
        }
        e.fails = e.fails.saturating_add(1);
        e.probing = false;
        if e.fails >= self.policy.threshold {
            if e.open_until.is_none() {
                self.open_gauge.add(1);
            }
            e.open_until = Some(Instant::now() + self.policy.cooldown);
        }
    }

    /// Neutral outcome (shed at admission, caller cancelled): the probe
    /// slot is returned without judging the program. Only the streak the
    /// probe was granted for is touched — releasing a dead-epoch probe
    /// must not open a second probe slot for the live generation.
    pub(crate) fn release_probe(&self, scope: &BreakerScope, epoch: Epoch) {
        if self.policy.threshold == 0 {
            return;
        }
        if let Some(e) = lock(&self.entries).get_mut(scope) {
            if e.epoch == epoch {
                e.probing = false;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy(threshold: u32, cooldown_ms: u64) -> BreakerPolicy {
        BreakerPolicy {
            threshold,
            cooldown: Duration::from_millis(cooldown_ms),
        }
    }

    fn anon(n: u64) -> BreakerScope {
        BreakerScope::Anon(n)
    }

    fn named(name: &str) -> BreakerScope {
        BreakerScope::Named {
            name: Arc::from(name),
            entry: Arc::from("f"),
        }
    }

    const E0: Epoch = BreakerScope::ANON;

    #[test]
    fn trips_after_threshold_and_probes_after_cooldown() {
        let b = Breaker::new(policy(2, 0), obs::Gauge::new());
        assert_eq!(b.preflight(&anon(7), E0), Verdict::Pass);
        b.record_failure(&anon(7), E0);
        assert_eq!(b.preflight(&anon(7), E0), Verdict::Pass);
        b.record_failure(&anon(7), E0);
        // Tripped; zero cooldown means the next preflight is the probe.
        assert_eq!(b.preflight(&anon(7), E0), Verdict::Probe);
        // Only one probe at a time.
        assert_eq!(b.preflight(&anon(7), E0), Verdict::Fallback);
        b.record_success(&anon(7));
        assert_eq!(b.preflight(&anon(7), E0), Verdict::Pass);
    }

    #[test]
    fn open_breaker_serves_fallback_until_cooldown() {
        let b = Breaker::new(policy(1, 60_000), obs::Gauge::new());
        b.record_failure(&anon(3), E0);
        assert_eq!(b.preflight(&anon(3), E0), Verdict::Fallback);
        assert_eq!(b.preflight(&anon(3), E0), Verdict::Fallback);
        // Other programs are unaffected.
        assert_eq!(b.preflight(&anon(4), E0), Verdict::Pass);
    }

    #[test]
    fn failed_probe_reopens() {
        let b = Breaker::new(policy(1, 0), obs::Gauge::new());
        b.record_failure(&anon(9), E0);
        assert_eq!(b.preflight(&anon(9), E0), Verdict::Probe);
        b.record_failure(&anon(9), E0);
        // Re-opened (cooldown 0 → immediately probe-able again).
        assert_eq!(b.preflight(&anon(9), E0), Verdict::Probe);
    }

    #[test]
    fn released_probe_lets_another_through() {
        let b = Breaker::new(policy(1, 0), obs::Gauge::new());
        b.record_failure(&anon(5), E0);
        assert_eq!(b.preflight(&anon(5), E0), Verdict::Probe);
        b.release_probe(&anon(5), E0);
        assert_eq!(b.preflight(&anon(5), E0), Verdict::Probe);
    }

    #[test]
    fn open_gauge_tracks_trip_and_close() {
        let g = obs::Gauge::new();
        let b = Breaker::new(policy(1, 0), g.clone());
        b.record_failure(&anon(11), E0);
        assert_eq!(g.get(), 1);
        // Re-opening an already-open breaker must not double-count.
        b.record_failure(&anon(11), E0);
        assert_eq!(g.get(), 1);
        b.record_success(&anon(11));
        assert_eq!(g.get(), 0);
        // A success for an unknown program is a no-op.
        b.record_success(&anon(11));
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn zero_threshold_disables() {
        let b = Breaker::new(policy(0, 0), obs::Gauge::new());
        for _ in 0..10 {
            b.record_failure(&anon(1), E0);
        }
        assert_eq!(b.preflight(&anon(1), E0), Verdict::Pass);
    }

    #[test]
    fn breaker_opened_on_v1_does_not_block_healthy_v2() {
        // The regression the rekeying exists for: a pathological v1
        // opens the breaker on the logical name; after redefinition the
        // live epoch differs, so v2's first request passes cleanly and
        // the stale open state (and its gauge count) is discarded.
        let g = obs::Gauge::new();
        let b = Breaker::new(policy(1, 60_000), g.clone());
        let v1 = Epoch::FIRST;
        let v2 = v1.next();
        b.record_failure(&named("P"), v1);
        assert_eq!(b.preflight(&named("P"), v1), Verdict::Fallback);
        assert_eq!(g.get(), 1);
        assert_eq!(b.preflight(&named("P"), v2), Verdict::Pass);
        assert_eq!(g.get(), 0);
        // And the reverse inheritance is gone too: v2's own failures
        // start from zero rather than standing on v1's streak.
        let b2 = Breaker::new(policy(2, 60_000), obs::Gauge::new());
        b2.record_failure(&named("Q"), v1);
        b2.record_failure(&named("Q"), v2);
        // One failure under v2 is below the threshold of 2.
        assert_eq!(b2.preflight(&named("Q"), v2), Verdict::Pass);
        b2.record_failure(&named("Q"), v2);
        assert_eq!(b2.preflight(&named("Q"), v2), Verdict::Fallback);
    }

    #[test]
    fn dead_epoch_probe_release_does_not_free_live_probe_slot() {
        let b = Breaker::new(policy(1, 0), obs::Gauge::new());
        let v1 = Epoch::FIRST;
        let v2 = v1.next();
        b.record_failure(&named("P"), v2);
        assert_eq!(b.preflight(&named("P"), v2), Verdict::Probe);
        // A stale v1 release must not hand out a second v2 probe.
        b.release_probe(&named("P"), v1);
        assert_eq!(b.preflight(&named("P"), v2), Verdict::Fallback);
    }
}
