//! Walker / gen-ext machine equivalence: both consumers of the staged IR
//! must produce **bit-identical** residual programs and equal stats — on
//! clean runs, across graceful-fallback limit sweeps, and in strict mode
//! (where they must fail with the same typed error).

use two4one_anf::build::SourceBuilder;
use two4one_bta::{bta_with, Division, Options};
use two4one_compiler::ObjectBuilder;
use two4one_pe::{run_genext, specialize_staged, stage, SpecOptions};
use two4one_syntax::acs::{CallPolicy, BT};
use two4one_syntax::datum::Datum;
use two4one_syntax::limits::Limits;
use two4one_syntax::symbol::Symbol;

/// A workload: source text, entry, division, static arguments, and
/// optional call-policy overrides.
struct Workload {
    name: &'static str,
    src: &'static str,
    entry: &'static str,
    div: Vec<BT>,
    statics: Vec<Datum>,
    memoize: Vec<&'static str>,
}

fn workloads() -> Vec<Workload> {
    vec![
        Workload {
            name: "power-unfolded",
            src: "(define (power x n) (if (= n 0) 1 (* x (power x (- n 1)))))",
            entry: "power",
            div: vec![BT::Dynamic, BT::Static],
            statics: vec![Datum::Int(9)],
            memoize: vec![],
        },
        Workload {
            name: "join-points",
            src: "(define (f a b c d)
                    (+ (if a 1 2) (+ (if b 3 4) (+ (if c 5 6) (if d 7 8)))))",
            entry: "f",
            div: vec![BT::Dynamic; 4],
            statics: vec![],
            memoize: vec![],
        },
        Workload {
            name: "memoized-higher-order",
            src: "(define (apply-n f n x) (if (= n 0) x (apply-n f (- n 1) (f x))))
                  (define (inc v) (+ v 1))
                  (define (dbl v) (* v 2))
                  (define (main x) (+ (apply-n inc 3 x) (apply-n dbl 2 x)))",
            entry: "main",
            div: vec![BT::Dynamic],
            statics: vec![],
            memoize: vec!["apply-n"],
        },
        Workload {
            name: "fnref-lifting",
            src: "(define (step x) (+ x 1))
                  (define (main) (lambda (y) (step y)))",
            entry: "main",
            div: vec![],
            statics: vec![],
            memoize: vec![],
        },
        Workload {
            name: "faulting-static-prim",
            src: "(define (f d) (if d (car '()) 'safe))",
            entry: "f",
            div: vec![BT::Dynamic],
            statics: vec![],
            memoize: vec![],
        },
        Workload {
            name: "lambda-rebinding",
            src: "(define (use2 f x) (eq? f f))
                  (define (main n x) (use2 (lambda (y) (+ y x)) n))",
            entry: "main",
            div: vec![BT::Dynamic, BT::Dynamic],
            statics: vec![],
            memoize: vec![],
        },
        Workload {
            name: "memoized-recursion-dynamic-n",
            src: "(define (loop n acc) (if (= n 0) acc (loop (- n 1) (+ acc acc))))
                  (define (main n) (loop n 1))",
            entry: "main",
            div: vec![BT::Dynamic],
            statics: vec![],
            memoize: vec!["loop"],
        },
    ]
}

fn annotate(w: &Workload) -> two4one_syntax::acs::AProgram {
    let p = two4one_frontend::frontend(w.src).unwrap();
    let mut opts = Options::default();
    for m in &w.memoize {
        opts.policy_overrides
            .insert(Symbol::new(m), CallPolicy::Memoize);
    }
    bta_with(&p, w.entry, &Division::new(w.div.iter().copied()), &opts).unwrap()
}

/// Runs a workload through both engines under `spec_opts` and asserts
/// bit-identical object images, identical source renderings (the readable
/// diff when something drifts), and equal stats — or the same error.
fn assert_equivalent(w: &Workload, spec_opts: &SpecOptions, ctx: &str) {
    let aprog = annotate(w);
    let staged = stage(&aprog).unwrap();
    let entry = Symbol::new(w.entry);

    // Source backend first: a divergence shows up as a readable text diff.
    let walker_src = specialize_staged(
        &staged,
        &entry,
        &w.statics,
        SourceBuilder::new(),
        spec_opts,
        spec_opts.limits.deadline(),
    );
    let genext_src = run_genext(
        &staged,
        &entry,
        &w.statics,
        SourceBuilder::new(),
        spec_opts,
        spec_opts.limits.deadline(),
    );
    match (walker_src, genext_src) {
        (Ok((wp, ws)), Ok((gp, gs))) => {
            assert_eq!(
                wp.to_source(),
                gp.to_source(),
                "[{}/{ctx}] residual source drift",
                w.name
            );
            assert_eq!(ws, gs, "[{}/{ctx}] stats drift (source backend)", w.name);
        }
        (Err(we), Err(ge)) => {
            assert_eq!(we, ge, "[{}/{ctx}] error drift (source backend)", w.name);
            return; // both engines reject: nothing further to compare
        }
        (w_res, g_res) => panic!(
            "[{}/{ctx}] one engine failed: walker={:?} genext={:?}",
            w.name,
            w_res.map(|(p, _)| p.to_source()),
            g_res.map(|(p, _)| p.to_source()),
        ),
    }

    // Object backend: the images must be bit-identical.
    let (wimg, wstats) = specialize_staged(
        &staged,
        &entry,
        &w.statics,
        ObjectBuilder::new(),
        spec_opts,
        spec_opts.limits.deadline(),
    )
    .unwrap();
    let (gimg, gstats) = run_genext(
        &staged,
        &entry,
        &w.statics,
        ObjectBuilder::new(),
        spec_opts,
        spec_opts.limits.deadline(),
    )
    .unwrap();
    assert_eq!(
        wstats, gstats,
        "[{}/{ctx}] stats drift (object backend)",
        w.name
    );
    let wbytes = two4one_vm::encode_image(&wimg.unwrap());
    let gbytes = two4one_vm::encode_image(&gimg.unwrap());
    assert_eq!(
        wbytes, gbytes,
        "[{}/{ctx}] object image not bit-identical",
        w.name
    );
}

/// Limits with the depth guard effectively off: the walker's `max_depth`
/// protects its Rust stack, which the iterative machine does not have, so
/// equivalence sweeps keep it out of the way.
fn deep_limits() -> Limits {
    Limits::default().with_max_depth(usize::MAX)
}

#[test]
fn engines_agree_on_clean_runs() {
    let opts = SpecOptions {
        limits: deep_limits(),
        fallback: true,
    };
    for w in &workloads() {
        assert_equivalent(w, &opts, "clean");
    }
}

#[test]
fn engines_agree_across_unfold_fuel_sweep() {
    // Every fuel value from starvation to plenty: exercises guard replay,
    // generic fallback bodies, and fallback-kind classification.
    for fuel in 0..14u64 {
        let opts = SpecOptions {
            limits: deep_limits().with_unfold_fuel(fuel),
            fallback: true,
        };
        for w in &workloads() {
            assert_equivalent(w, &opts, &format!("fuel={fuel}"));
        }
    }
}

#[test]
fn engines_agree_across_memo_cap_sweep() {
    for cap in 0..5usize {
        let opts = SpecOptions {
            limits: deep_limits().with_memo_cap(cap),
            fallback: true,
        };
        for w in &workloads() {
            assert_equivalent(w, &opts, &format!("memo_cap={cap}"));
        }
    }
}

#[test]
fn engines_agree_across_code_cap_sweep() {
    for cap in [1usize, 2, 4, 8, 16, 64, 256] {
        let opts = SpecOptions {
            limits: deep_limits().with_code_cap(cap),
            fallback: true,
        };
        for w in &workloads() {
            assert_equivalent(w, &opts, &format!("code_cap={cap}"));
        }
    }
}

#[test]
fn engines_agree_in_strict_mode() {
    // With fallback off, limit overruns must abort with the *same* typed
    // error from both engines.
    for fuel in [0u64, 1, 3, 5] {
        let opts = SpecOptions {
            limits: deep_limits().with_unfold_fuel(fuel),
            fallback: false,
        };
        for w in &workloads() {
            assert_equivalent(w, &opts, &format!("strict-fuel={fuel}"));
        }
    }
    for cap in [0usize, 1, 2] {
        let opts = SpecOptions {
            limits: deep_limits().with_memo_cap(cap),
            fallback: false,
        };
        for w in &workloads() {
            assert_equivalent(w, &opts, &format!("strict-memo={cap}"));
        }
    }
}

#[test]
fn fallback_classification_matches_on_limit_hits() {
    // Starve the unfolding workload of fuel: both engines must degrade
    // (not abort), classify the first cause identically, and still agree
    // on the residual image.
    let w = &workloads()[0]; // power-unfolded
    let opts = SpecOptions {
        limits: deep_limits().with_unfold_fuel(1),
        fallback: true,
    };
    let aprog = annotate(w);
    let staged = stage(&aprog).unwrap();
    let entry = Symbol::new(w.entry);
    let (_, stats) = run_genext(
        &staged,
        &entry,
        &w.statics,
        SourceBuilder::new(),
        &opts,
        opts.limits.deadline(),
    )
    .unwrap();
    assert!(stats.degraded(), "{stats:?}");
    assert!(stats.fallback_kind.is_some(), "{stats:?}");
    assert_equivalent(w, &opts, "classification");
}
