//! Types shared by the two consumers of the staged-code IR: the
//! interpretive walker ([`crate::walk`]) and the gen-ext machine
//! ([`crate::genrun`]).
//!
//! Both engines execute the same [`GenProgram`](two4one_vm::GenProgram)
//! and must agree bit-for-bit on the residual program they emit, so the
//! bookkeeping that *shapes* residual code — free-variable tracking,
//! memoization keys, fallback classification — lives here, written once.

use crate::PeError;
use std::hash::{Hash, Hasher};
use two4one_syntax::datum::Datum;
use two4one_syntax::limits::LimitKind;
use two4one_syntax::symbol::Symbol;
use two4one_syntax::symset::SymSet;

/// A residual trivial term together with its free variables (the
/// specializer-side bookkeeping that feeds `CodeBuilder::lambda`, resolving
/// the paper's Sec. 6.4 name/compilator duality) and a size hint used to
/// avoid duplicating heavyweight trivials when unfolding.
pub struct Resid<T> {
    /// The backend trivial.
    pub triv: T,
    /// Free (dynamic) variables. A [`SymSet`] clones by refcount, so
    /// threading the set through continuations costs no tree copies.
    pub fv: SymSet,
    /// True for variables and constants, false for compiled lambdas.
    pub simple: bool,
}

impl<T: Clone> Clone for Resid<T> {
    fn clone(&self) -> Self {
        Resid {
            triv: self.triv.clone(),
            fv: self.fv.clone(),
            simple: self.simple,
        }
    }
}

/// Residual code with its free variables.
pub struct RCode<B: two4one_anf::build::CodeBuilder> {
    /// Backend code.
    pub code: B::Code,
    /// Free (dynamic) variables.
    pub fv: SymSet,
}

impl<B: two4one_anf::build::CodeBuilder> Clone for RCode<B> {
    fn clone(&self) -> Self {
        RCode {
            code: self.code.clone(),
            fv: self.fv.clone(),
        }
    }
}

/// Key of the memoization cache: callee plus the static argument tuple.
///
/// The 64-bit digest is sealed at construction from the callee's symbol
/// digest and the (already hash-consed, see [`Datum::digest`]) digests of
/// the static arguments, so a memo probe hashes one word no matter how
/// large the static data is. Equality still compares the full tuple —
/// the digest can route, never decide.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct MemoKey {
    digest: u64,
    fn_name: Symbol,
    statics: Vec<StaticKey>,
}

impl MemoKey {
    pub(crate) fn new(fn_name: Symbol, statics: Vec<StaticKey>) -> Self {
        let mut d: u64 = 0xcbf2_9ce4_8422_2325 ^ fn_name.digest();
        for k in &statics {
            let w = match k {
                StaticKey::Data(datum) => datum.digest(),
                // Tag fn-refs apart from a datum that happens to share a
                // symbol digest.
                StaticKey::Fn(g) => g.digest() ^ 0x9e37_79b9_7f4a_7c15,
            };
            d = (d.rotate_left(5) ^ w).wrapping_mul(0x0000_0100_0000_01b3);
        }
        MemoKey {
            digest: d,
            fn_name,
            statics,
        }
    }
}

impl Hash for MemoKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.digest);
    }
}

/// One component of a memoization key. Function references are keyed by
/// the *source* name of the referenced definition, so the walker and the
/// gen-ext machine — which addresses definitions by index — agree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum StaticKey {
    Data(Datum),
    Fn(Symbol),
}

/// Counters reported after specialization.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpecStats {
    /// Calls unfolded.
    pub unfolds: u64,
    /// Memoization cache hits.
    pub memo_hits: u64,
    /// Distinct specialization points created.
    pub memo_misses: u64,
    /// Residual definitions emitted.
    pub residual_defs: u64,
    /// Calls downgraded to a generic version after a recoverable limit.
    pub fallbacks: u64,
    /// Generic (all-dynamic) residual definitions emitted for fallback.
    pub generic_defs: u64,
    /// The limit behind the *first* fallback, when any fired. Lets a
    /// serving layer distinguish transient starvation (unfold fuel, memo
    /// cap — worth retrying with a bigger budget) from structural limits.
    pub fallback_kind: Option<LimitKind>,
}

impl SpecStats {
    /// True when specialization hit a resource limit somewhere and
    /// degraded to generic residual code instead of aborting.
    pub fn degraded(&self) -> bool {
        self.fallbacks > 0 || self.generic_defs > 0
    }

    /// Records one graceful fallback and which limit caused it (first
    /// cause wins — later fallbacks are usually knock-on effects).
    pub(crate) fn note_fallback(&mut self, e: &PeError) {
        self.fallbacks += 1;
        two4one_obs::event(two4one_obs::EventKind::Fallback);
        if self.fallback_kind.is_none() {
            self.fallback_kind = match e {
                PeError::UnfoldLimit(_) => Some(LimitKind::UnfoldFuel),
                PeError::Limit(l) => Some(l.kind),
                _ => None,
            };
        }
    }
}
