//! # two4one — Composing Partial Evaluation and Compilation
//!
//! A reproduction of Michael Sperber and Peter Thiemann, *"Two for the
//! Price of One: Composing Partial Evaluation and Compilation"*, PLDI 1997.
//!
//! The system composes an offline partial evaluator (a program-generator
//! generator, PGG) for a Scheme subset with a byte-code compiler, so that
//! specialization emits **object code directly** — a run-time code
//! generation system built from independently developed components, glued
//! together by deforestation (here: a builder trait + monomorphization).
//!
//! ## Quick start
//!
//! ```
//! use two4one::{Pgg, Division, BT, Datum};
//!
//! # fn main() -> Result<(), two4one::Error> {
//! let pgg = Pgg::new();
//! let program = pgg.parse(
//!     "(define (power x n) (if (= n 0) 1 (* x (power x (- n 1)))))",
//! )?;
//! // n is static, x is dynamic.
//! let genext = pgg.cogen(&program, "power", &Division::new([BT::Dynamic, BT::Static]))?;
//!
//! // Classic partial evaluation: residual *source* code…
//! let residual = genext.specialize_source(&[Datum::Int(5)])?;
//! assert!(residual.to_source().contains('*'));
//!
//! // …or, fused with the compiler: object code, directly.
//! let image = genext.specialize_object(&[Datum::Int(5)])?;
//! let out = two4one::run_image(&image, "power", &[Datum::Int(2)])?;
//! assert_eq!(out.value, Datum::Int(32));
//! # Ok(())
//! # }
//! ```
//!
//! ## Crate map
//!
//! | crate | role |
//! |---|---|
//! | `two4one-syntax` | data, reader/printer, Core Scheme + annotated syntax, primitives |
//! | `two4one-frontend` | desugaring, alpha renaming, assignment elimination, lambda lifting |
//! | `two4one-anf` | A-normal form, the normalizer, and the `CodeBuilder` fusion seam |
//! | `two4one-bta` | binding-time analysis |
//! | `two4one-pe` | the continuation-based specializer |
//! | `two4one-vm` | the byte-code VM, assembler, templates |
//! | `two4one-compiler` | the ANF compiler and its combinator form (`ObjectBuilder`) |

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, OnceLock};

pub use two4one_anf::{self as anf, Program as AnfProgram, SourceBuilder};
pub use two4one_bta::{Division, Options as BtaOptions};
pub use two4one_compiler::{compile_program, ObjectBuilder};
pub use two4one_interp::{Interp, RtError, Value as InterpValue};
pub use two4one_obs as obs;
pub use two4one_pe::{PeError, SpecOptions, SpecStats};
pub use two4one_syntax::acs::{AProgram, CallPolicy, BT};
pub use two4one_syntax::cs;
pub use two4one_syntax::datum::Datum;
pub use two4one_syntax::limits::{CancelToken, Deadline, LimitExceeded, LimitKind, Limits};
pub use two4one_syntax::printer;
pub use two4one_syntax::reader;
pub use two4one_syntax::stack::{with_stack, with_stack_size};
pub use two4one_syntax::symbol::Symbol;
pub use two4one_vm::{
    decode_genext, decode_image, encode_genext, encode_image, optimize_image, ExecProfile,
    GenProgram, Image, Machine, ObjError, Value, VmError,
};

/// Any error the pipeline can produce.
#[derive(Debug)]
pub enum Error {
    /// Reader / front-end failure.
    Front(two4one_frontend::FrontError),
    /// Binding-time analysis failure.
    Bta(two4one_bta::BtaError),
    /// Specialization failure.
    Pe(PeError),
    /// Compilation failure.
    Compile(two4one_compiler::CompileError),
    /// VM runtime failure.
    Vm(two4one_vm::VmError),
    /// Interpreter runtime failure.
    Interp(RtError),
    /// Result was not first-order data (a procedure or cell).
    NonDatumResult(String),
    /// A panic escaped an engine component. The panic was caught at the
    /// facade boundary, so the process survives; this always indicates a
    /// bug worth reporting.
    Panicked(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Front(e) => write!(f, "{e}"),
            Error::Bta(e) => write!(f, "{e}"),
            Error::Pe(e) => write!(f, "{e}"),
            Error::Compile(e) => write!(f, "{e}"),
            Error::Vm(e) => write!(f, "{e}"),
            Error::Interp(e) => write!(f, "{e}"),
            Error::NonDatumResult(v) => {
                write!(f, "result is not first-order data: {v}")
            }
            Error::Panicked(m) => {
                write!(f, "internal engine panic (caught): {m}")
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Front(e) => Some(e),
            Error::Bta(e) => Some(e),
            Error::Pe(e) => Some(e),
            Error::Compile(e) => Some(e),
            Error::Vm(e) => Some(e),
            Error::Interp(e) => Some(e),
            Error::NonDatumResult(_) | Error::Panicked(_) => None,
        }
    }
}

/// Runs `f`, converting an escaped panic into [`Error::Panicked`]. The
/// library crates are written to return typed errors instead of
/// panicking; this is the belt-and-braces boundary that keeps a missed
/// invariant from tearing down an embedding application.
fn catching<T>(f: impl FnOnce() -> Result<T, Error>) -> Result<T, Error> {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(r) => r,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            Err(Error::Panicked(msg))
        }
    }
}

macro_rules! from_error {
    ($variant:ident, $ty:ty) => {
        impl From<$ty> for Error {
            fn from(e: $ty) -> Self {
                Error::$variant(e)
            }
        }
    };
}

from_error!(Front, two4one_frontend::FrontError);
from_error!(Bta, two4one_bta::BtaError);
from_error!(Pe, PeError);
from_error!(Compile, two4one_compiler::CompileError);
from_error!(Vm, two4one_vm::VmError);
from_error!(Interp, RtError);

/// Process-wide counters the facade feeds from per-run [`SpecStats`]
/// totals. The specializer's hot loop keeps its cheap local counters;
/// the facade folds them into the shared registry once per run, so the
/// registry sees every run without contended atomics inside the engine.
struct SpecMetrics {
    spec_runs: obs::Counter,
    unfolds: obs::Counter,
    memo_hits: obs::Counter,
    memo_misses: obs::Counter,
    fallbacks: [obs::Counter; LimitKind::ALL.len()],
}

fn spec_metrics() -> &'static SpecMetrics {
    static M: OnceLock<SpecMetrics> = OnceLock::new();
    M.get_or_init(|| {
        let g = obs::global();
        SpecMetrics {
            spec_runs: g.counter("t4o_spec_runs_total"),
            unfolds: g.counter("t4o_spec_unfolds_total"),
            memo_hits: g.counter("t4o_spec_memo_hits_total"),
            memo_misses: g.counter("t4o_spec_memo_misses_total"),
            fallbacks: LimitKind::ALL
                .map(|k| g.counter_with("t4o_spec_fallbacks_total", Some(("kind", k.label())))),
        }
    })
}

fn note_spec_stats(stats: &SpecStats) {
    let m = spec_metrics();
    m.spec_runs.inc();
    m.unfolds.add(stats.unfolds);
    m.memo_hits.add(stats.memo_hits);
    m.memo_misses.add(stats.memo_misses);
    if stats.fallbacks > 0 {
        let kind = stats.fallback_kind.unwrap_or(LimitKind::UnfoldFuel);
        if let Some(idx) = LimitKind::ALL.iter().position(|k| *k == kind) {
            m.fallbacks[idx].add(stats.fallbacks);
        }
    }
}

/// Process-wide generating-extension counters: how many gen-exts were
/// compiled and how many specializations ran through one.
struct GenextMetrics {
    builds: obs::Counter,
    runs: obs::Counter,
}

fn genext_metrics() -> &'static GenextMetrics {
    static M: OnceLock<GenextMetrics> = OnceLock::new();
    M.get_or_init(|| {
        let g = obs::global();
        GenextMetrics {
            builds: g.counter("t4o_genext_builds_total"),
            runs: g.counter("t4o_genext_runs_total"),
        }
    })
}

/// Forces registration of every pipeline metric family in the global
/// registry — per-phase latency histograms, specializer run/unfold/memo
/// counters, the per-kind fallback counters, and the gen-ext counters —
/// so an exposition page (`t4o stats`, `--metrics-file`) shows all
/// families, zero-valued, before any workload has run.
pub fn init_metrics() {
    obs::touch_phase_metrics();
    let _ = spec_metrics();
    let _ = genext_metrics();
    two4one_vm::init_dispatch_metrics();
}

/// A monotonically increasing version of a logical program.
///
/// A serving layer that accepts program *redefinition* registers each
/// program under a stable logical name and stamps every registration
/// with an `Epoch`. Residual code is only valid relative to the exact
/// source it was derived from (the derivation is a revocable artifact,
/// not a permanent fact), so anything cached on behalf of a program —
/// specializations, breaker state, snapshot records — carries the epoch
/// it was derived under and dies with it. Epochs start at
/// [`Epoch::FIRST`] and only move forward; they are per-name and
/// per-process (snapshot restore compares program *identity*, not raw
/// epoch numbers, across processes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Epoch(u64);

impl Epoch {
    /// The epoch of a program's first registration.
    pub const FIRST: Epoch = Epoch(1);

    /// Wraps a raw epoch number (used when decoding persisted state).
    pub const fn from_raw(n: u64) -> Epoch {
        Epoch(n)
    }

    /// The raw epoch number.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// The epoch after this one (saturating — an epoch never wraps back
    /// to an earlier generation).
    #[must_use]
    pub fn next(self) -> Epoch {
        Epoch(self.0.saturating_add(1))
    }
}

impl fmt::Display for Epoch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The program-generator generator: front end + BTA + specializer engine,
/// with configuration.
///
/// One [`Limits`] record governs every stage derived from a `Pgg`: the
/// reader (input size/nesting), the binding-time analysis (deadline), the
/// specializer (unfold fuel, recursion depth, memo cap, code cap,
/// deadline), and — through [`run_image_with`] / [`interpret_with`] —
/// execution of the result (step fuel, deadline). The default limits are
/// generous but finite; use [`Limits::none()`] to switch them all off.
#[derive(Debug, Clone, Default)]
pub struct Pgg {
    bta_options: BtaOptions,
    spec_options: SpecOptions,
    limits: Limits,
}

impl Pgg {
    /// A PGG with default (governed, graceful-fallback) options.
    pub fn new() -> Self {
        Pgg::default()
    }

    /// Overrides the unfold/memoize policy for a function.
    pub fn policy(mut self, name: &str, policy: CallPolicy) -> Self {
        self.bta_options
            .policy_overrides
            .insert(Symbol::new(name), policy);
        self
    }

    /// Replaces the whole limit record.
    pub fn limits(mut self, limits: Limits) -> Self {
        self.limits = limits;
        self
    }

    /// The current limit record.
    pub fn limits_ref(&self) -> &Limits {
        &self.limits
    }

    /// Sets the wall-clock budget for analysis and specialization.
    pub fn timeout(mut self, d: std::time::Duration) -> Self {
        self.limits = self.limits.with_timeout(d);
        self
    }

    /// Sets the unfold fuel.
    pub fn unfold_fuel(mut self, fuel: u64) -> Self {
        self.limits = self.limits.with_unfold_fuel(fuel);
        self
    }

    /// Sets the specializer recursion-depth limit.
    pub fn spec_depth(mut self, depth: usize) -> Self {
        self.limits = self.limits.with_max_depth(depth);
        self
    }

    /// Enables or disables graceful degradation at recoverable limits
    /// (see [`SpecOptions`]); enabled by default.
    pub fn fallback(mut self, on: bool) -> Self {
        self.spec_options.fallback = on;
        self
    }

    /// Parses and lowers source text into Core Scheme, enforcing the
    /// reader limits.
    ///
    /// # Errors
    ///
    /// Fails on read, syntax, scope, or over-limit input.
    pub fn parse(&self, src: &str) -> Result<cs::Program, Error> {
        catching(|| {
            let _span = obs::Span::enter(obs::Phase::Frontend);
            Ok(two4one_frontend::frontend_with(src, &self.limits)?)
        })
    }

    /// Builds a *generating extension* for `entry` under `division`: the
    /// binding-time analysis runs once, the result can then be applied to
    /// many different static inputs (and through either backend).
    ///
    /// # Errors
    ///
    /// Fails if `entry` is unknown or the division has the wrong arity.
    pub fn cogen(
        &self,
        program: &cs::Program,
        entry: &str,
        division: &Division,
    ) -> Result<GenExt, Error> {
        catching(|| {
            let _span = obs::Span::enter(obs::Phase::Bta);
            let mut bta_options = self.bta_options.clone();
            bta_options.limits = self.limits.clone();
            let aprog = two4one_bta::bta_with(program, entry, division, &bta_options)?;
            let mut options = self.spec_options.clone();
            options.limits = self.limits.clone();
            Ok(GenExt {
                aprog,
                entry: Symbol::new(entry),
                options,
                identity: Arc::new(OnceLock::new()),
            })
        })
    }
}

/// A generating extension: apply it to static inputs to obtain residual
/// programs — as source text (the classic PGG) or directly as object code
/// (the fused run-time code generator).
#[derive(Debug, Clone)]
pub struct GenExt {
    aprog: AProgram,
    entry: Symbol,
    options: SpecOptions,
    /// Lazily rendered cache identity, shared by all clones of this
    /// extension (see [`GenExt::cache_identity`]).
    identity: Arc<OnceLock<Arc<str>>>,
}

impl GenExt {
    /// The annotated program (for inspection).
    pub fn annotated(&self) -> &AProgram {
        &self.aprog
    }

    /// The entry point.
    pub fn entry(&self) -> &Symbol {
        &self.entry
    }

    /// The cache identity of this generating extension: the annotated
    /// program rendered to text plus its specialization options (two
    /// extensions differing only in, say, fuel must not share residual
    /// code). Rendered **once** and shared by every clone, so a serving
    /// layer can key its result cache per request without re-rendering
    /// the program each time.
    pub fn cache_identity(&self) -> &str {
        self.identity
            .get_or_init(|| format!("{}\u{0}{:?}", self.aprog, self.options).into())
    }

    /// Specializes to residual **source** (ANF Scheme).
    ///
    /// # Errors
    ///
    /// Fails on specialization errors (see [`PeError`]).
    pub fn specialize_source(&self, statics: &[Datum]) -> Result<AnfProgram, Error> {
        Ok(self.specialize_source_with_stats(statics)?.0)
    }

    /// Like [`GenExt::specialize_source`], also returning statistics.
    ///
    /// # Errors
    ///
    /// Fails on specialization errors.
    pub fn specialize_source_with_stats(
        &self,
        statics: &[Datum],
    ) -> Result<(AnfProgram, SpecStats), Error> {
        catching(|| {
            let _span = obs::Span::enter(obs::Phase::Specialize);
            let (prog, stats) = two4one_pe::specialize(
                &self.aprog,
                &self.entry,
                statics,
                SourceBuilder::new(),
                &self.options,
            )?;
            note_spec_stats(&stats);
            Ok((prog, stats))
        })
    }

    /// Specializes to residual source and then runs the ANF optimizer
    /// (copy propagation, unit laws, dead-binding elimination) over it.
    ///
    /// # Errors
    ///
    /// Fails on specialization errors.
    pub fn specialize_source_optimized(&self, statics: &[Datum]) -> Result<AnfProgram, Error> {
        Ok(two4one_anf::optimize(&self.specialize_source(statics)?))
    }

    /// Specializes **directly to object code** — the composed system of the
    /// paper. No residual syntax tree is constructed.
    ///
    /// # Errors
    ///
    /// Fails on specialization or code-generation errors.
    pub fn specialize_object(&self, statics: &[Datum]) -> Result<Image, Error> {
        Ok(self.specialize_object_with_stats(statics)?.0)
    }

    /// Like [`GenExt::specialize_object`], also returning statistics.
    ///
    /// # Errors
    ///
    /// Fails on specialization or code-generation errors.
    pub fn specialize_object_with_stats(
        &self,
        statics: &[Datum],
    ) -> Result<(Image, SpecStats), Error> {
        self.specialize_object_governed(statics, &self.options, None)
    }

    /// The fully-governed object-code path: specializes under explicit
    /// `options` (which may differ from this extension's own, e.g. a
    /// serving layer retrying with an escalated budget) and an optional
    /// caller-side [`CancelToken`]. The token — which may carry a
    /// per-request deadline — is checked cooperatively at the
    /// specializer's memo/unfold points, so firing it stops a run
    /// mid-specialization with [`LimitKind::Cancelled`].
    ///
    /// # Errors
    ///
    /// Fails on specialization or code-generation errors; a fired token
    /// surfaces as `Error::Pe(PeError::Limit(..))` with kind `Cancelled`.
    pub fn specialize_object_governed(
        &self,
        statics: &[Datum],
        options: &SpecOptions,
        cancel: Option<&CancelToken>,
    ) -> Result<(Image, SpecStats), Error> {
        catching(|| {
            let _span = obs::Span::enter(obs::Phase::Specialize);
            let mut deadline = options.limits.deadline();
            if let Some(token) = cancel {
                deadline = deadline.with_cancel(token.clone());
            }
            let (image, stats) = two4one_pe::specialize_with_deadline(
                &self.aprog,
                &self.entry,
                statics,
                ObjectBuilder::new(),
                options,
                deadline,
            )?;
            note_spec_stats(&stats);
            Ok((image?, stats))
        })
    }

    /// The limits and fallback setting this generating extension runs
    /// under.
    pub fn options(&self) -> &SpecOptions {
        &self.options
    }

    /// A copy of this generating extension running under different
    /// options (limits / fallback). The annotated program is shared work:
    /// binding-time analysis is *not* redone.
    pub fn with_options(&self, options: SpecOptions) -> GenExt {
        GenExt {
            aprog: self.aprog.clone(),
            entry: self.entry,
            options,
            // Fresh cell: options are part of the identity.
            identity: Arc::new(OnceLock::new()),
        }
    }

    /// **Compiles** this generating extension: stages the annotated
    /// program into the flat gen-ext IR once, yielding a
    /// [`CompiledGenExt`] whose specialization entry points run the
    /// staged bytecode directly (no per-run annotation walk). The
    /// compiled form produces residual programs **bit-identical** to this
    /// extension's and can be serialized (`.t4og`) for cross-process warm
    /// starts.
    ///
    /// # Errors
    ///
    /// Fails on staging errors (malformed annotated program).
    pub fn compile(&self) -> Result<CompiledGenExt, Error> {
        catching(|| {
            let _span = obs::Span::enter(obs::Phase::GenextBuild);
            let staged = two4one_pe::stage(&self.aprog)?;
            genext_metrics().builds.inc();
            Ok(CompiledGenExt::assemble(
                staged,
                self.entry,
                self.options.clone(),
            ))
        })
    }
}

/// A *compiled* generating extension: the staged-code IR of a [`GenExt`],
/// executed as bytecode by the gen-ext machine. Same contract as
/// [`GenExt`] — apply to static inputs, get a residual program through
/// either backend, bit-identical output — minus the per-run interpretive
/// overhead, plus serialization for cross-process warm starts.
#[derive(Debug, Clone)]
pub struct CompiledGenExt {
    staged: Arc<GenProgram>,
    entry: Symbol,
    options: SpecOptions,
    /// The `.t4og` wire form, encoded once at assembly.
    bytes: Arc<[u8]>,
    /// Cache identity: a digest of the wire form plus the options, so it
    /// is stable across processes (a snapshot-restored gen-ext hits the
    /// same result-cache entries as a freshly compiled one).
    identity: Arc<str>,
}

impl CompiledGenExt {
    fn assemble(staged: Arc<GenProgram>, entry: Symbol, options: SpecOptions) -> CompiledGenExt {
        let bytes: Arc<[u8]> = encode_genext(&staged, &entry).into();
        // FNV-1a over the canonical wire form.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in bytes.iter() {
            h = (h ^ u64::from(*b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
        let identity: Arc<str> = format!("genext:{h:016x}\u{0}{options:?}").into();
        CompiledGenExt {
            staged,
            entry,
            options,
            bytes,
            identity,
        }
    }

    /// The staged program (for inspection).
    pub fn staged(&self) -> &Arc<GenProgram> {
        &self.staged
    }

    /// The entry point.
    pub fn entry(&self) -> &Symbol {
        &self.entry
    }

    /// The limits and fallback setting this gen-ext runs under.
    pub fn options(&self) -> &SpecOptions {
        &self.options
    }

    /// The cache identity (see [`GenExt::cache_identity`]): derived from
    /// the serialized staged program, so it is stable across processes.
    pub fn cache_identity(&self) -> &str {
        &self.identity
    }

    /// A copy running under different options (limits / fallback). The
    /// staged program is shared; nothing is recompiled.
    pub fn with_options(&self, options: SpecOptions) -> CompiledGenExt {
        CompiledGenExt::assemble(self.staged.clone(), self.entry, options)
    }

    /// The `.t4og` wire form of the staged program.
    pub fn to_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Decodes a gen-ext from its `.t4og` wire form, to run under
    /// `options`.
    ///
    /// # Errors
    ///
    /// Fails on malformed or corrupt input (checksum, range checks).
    pub fn from_bytes(bytes: &[u8], options: SpecOptions) -> Result<CompiledGenExt, ObjError> {
        let (staged, entry) = decode_genext(bytes)?;
        Ok(CompiledGenExt::assemble(staged, entry, options))
    }

    /// Specializes to residual **source** (ANF Scheme).
    ///
    /// # Errors
    ///
    /// Fails on specialization errors (see [`PeError`]).
    pub fn specialize_source(&self, statics: &[Datum]) -> Result<AnfProgram, Error> {
        Ok(self.specialize_source_with_stats(statics)?.0)
    }

    /// Like [`CompiledGenExt::specialize_source`], also returning
    /// statistics.
    ///
    /// # Errors
    ///
    /// Fails on specialization errors.
    pub fn specialize_source_with_stats(
        &self,
        statics: &[Datum],
    ) -> Result<(AnfProgram, SpecStats), Error> {
        catching(|| {
            let _span = obs::Span::enter(obs::Phase::GenextRun);
            let (prog, stats) = two4one_pe::run_genext(
                &self.staged,
                &self.entry,
                statics,
                SourceBuilder::new(),
                &self.options,
                self.options.limits.deadline(),
            )?;
            genext_metrics().runs.inc();
            note_spec_stats(&stats);
            Ok((prog, stats))
        })
    }

    /// Specializes **directly to object code** — the composed system of
    /// the paper, driven by the compiled gen-ext.
    ///
    /// # Errors
    ///
    /// Fails on specialization or code-generation errors.
    pub fn specialize_object(&self, statics: &[Datum]) -> Result<Image, Error> {
        Ok(self.specialize_object_with_stats(statics)?.0)
    }

    /// Like [`CompiledGenExt::specialize_object`], also returning
    /// statistics.
    ///
    /// # Errors
    ///
    /// Fails on specialization or code-generation errors.
    pub fn specialize_object_with_stats(
        &self,
        statics: &[Datum],
    ) -> Result<(Image, SpecStats), Error> {
        self.specialize_object_governed(statics, &self.options, None)
    }

    /// The fully-governed object-code path (see
    /// [`GenExt::specialize_object_governed`]): explicit options and an
    /// optional [`CancelToken`] checked cooperatively mid-run.
    ///
    /// # Errors
    ///
    /// Fails on specialization or code-generation errors; a fired token
    /// surfaces as `Error::Pe(PeError::Limit(..))` with kind `Cancelled`.
    pub fn specialize_object_governed(
        &self,
        statics: &[Datum],
        options: &SpecOptions,
        cancel: Option<&CancelToken>,
    ) -> Result<(Image, SpecStats), Error> {
        catching(|| {
            let _span = obs::Span::enter(obs::Phase::GenextRun);
            let mut deadline = options.limits.deadline();
            if let Some(token) = cancel {
                deadline = deadline.with_cancel(token.clone());
            }
            let (image, stats) = two4one_pe::run_genext(
                &self.staged,
                &self.entry,
                statics,
                ObjectBuilder::new(),
                options,
                deadline,
            )?;
            genext_metrics().runs.inc();
            note_spec_stats(&stats);
            Ok((image?, stats))
        })
    }
}

/// Writes a compiled generating extension to a `.t4og` file.
///
/// # Errors
///
/// Fails on I/O errors.
pub fn save_genext(
    genext: &CompiledGenExt,
    path: impl AsRef<std::path::Path>,
) -> std::io::Result<()> {
    std::fs::write(path, genext.to_bytes())
}

/// Reads a compiled generating extension back from a `.t4og` file, to run
/// under `options`.
///
/// # Errors
///
/// Fails on I/O errors or malformed files.
pub fn load_genext(
    path: impl AsRef<std::path::Path>,
    options: SpecOptions,
) -> std::io::Result<CompiledGenExt> {
    let bytes = std::fs::read(path)?;
    CompiledGenExt::from_bytes(&bytes, options)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

/// Compiles a Core Scheme program with the stock pipeline
/// (A-normalization + byte-code compiler).
///
/// # Errors
///
/// Fails on compile errors.
pub fn compile(program: &cs::Program, entry: &str) -> Result<Image, Error> {
    Ok(compile_program(&two4one_anf::normalize(program), entry)?)
}

/// The "load residual source back" path of the paper's Fig. 7: read text,
/// run the front end, normalize, compile.
///
/// # Errors
///
/// Fails on read, front-end, or compile errors.
pub fn compile_source_text(src: &str, entry: &str) -> Result<Image, Error> {
    let prog = two4one_frontend::frontend(src)?;
    compile(&prog, entry)
}

/// The outcome of running a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunOutcome {
    /// The result value (first-order data).
    pub value: Datum,
    /// Text written by `display`/`write`/`newline`.
    pub output: String,
}

/// Loads an image and calls `entry` on data arguments.
///
/// # Errors
///
/// Fails on VM errors or when the result is not first-order data.
pub fn run_image(image: &Image, entry: &str, args: &[Datum]) -> Result<RunOutcome, Error> {
    run_image_with(image, entry, args, &Limits::none())
}

/// Like [`run_image`], but executing under `limits`: step fuel
/// ([`Limits::step_fuel`]) and wall-clock deadline ([`Limits::timeout`])
/// bound the run.
///
/// # Errors
///
/// Fails on VM errors (including [`VmError`] limit overruns) or when the
/// result is not first-order data.
pub fn run_image_with(
    image: &Image,
    entry: &str,
    args: &[Datum],
    limits: &Limits,
) -> Result<RunOutcome, Error> {
    catching(|| {
        let mut m = Machine::load(image).with_limits(limits);
        let argv = args.iter().map(two4one_vm::Value::from).collect();
        let v = m.call_global(&Symbol::new(entry), argv)?;
        let value = v
            .to_datum()
            .ok_or_else(|| Error::NonDatumResult(format!("{v:?}")))?;
        Ok(RunOutcome {
            value,
            output: m.output,
        })
    })
}

/// Like [`run_image_with`], but accumulating execution counts into
/// `profile` (see [`ExecProfile`]): instruction fetches, frame retires,
/// and call visits are flushed into the shared atomics at the VM's
/// amortized deadline stride and at run end, so a profile reader — e.g.
/// the serving layer's tiered-promotion worker — observes hotness
/// without stopping execution.
///
/// # Errors
///
/// Fails on VM errors (including limit overruns) or when the result is
/// not first-order data.
pub fn run_image_profiled(
    image: &Image,
    entry: &str,
    args: &[Datum],
    limits: &Limits,
    profile: &Arc<ExecProfile>,
) -> Result<RunOutcome, Error> {
    catching(|| {
        let mut m = Machine::load(image)
            .with_limits(limits)
            .with_profile(profile.clone());
        let argv = args.iter().map(two4one_vm::Value::from).collect();
        let v = m.call_global(&Symbol::new(entry), argv)?;
        let value = v
            .to_datum()
            .ok_or_else(|| Error::NonDatumResult(format!("{v:?}")))?;
        Ok(RunOutcome {
            value,
            output: m.output,
        })
    })
}

/// Writes a compiled image to a `.t4o` object file.
///
/// # Errors
///
/// Fails on I/O errors.
pub fn save_image(image: &Image, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
    std::fs::write(path, encode_image(image))
}

/// Reads a compiled image back from a `.t4o` object file.
///
/// # Errors
///
/// Fails on I/O errors or malformed object files.
pub fn load_image(path: impl AsRef<std::path::Path>) -> std::io::Result<Image> {
    let bytes = std::fs::read(path)?;
    decode_image(&bytes).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

/// Incremental specialization (an application the paper highlights in
/// Secs. 1 and 9, after Thiemann's memoization work): static inputs arrive
/// in stages, and each stage's residual program is an ordinary program
/// that can be analyzed and specialized again.
pub mod incremental {
    use super::*;

    /// Performs one stage: specializes `entry` under `division` to the
    /// given static inputs and returns the residual as a fresh Core Scheme
    /// program, re-analyzed by the front end so further stages (or
    /// compilation) can be applied directly.
    ///
    /// # Errors
    ///
    /// Fails on analysis or specialization errors.
    pub fn stage(
        pgg: &Pgg,
        program: &cs::Program,
        entry: &str,
        division: &Division,
        statics: &[Datum],
    ) -> Result<cs::Program, Error> {
        let genext = pgg.cogen(program, entry, division)?;
        let residual = genext.specialize_source(statics)?;
        pgg.parse(&residual.to_source())
    }
}

/// Runs a Core Scheme program in the tree-walking interpreter (the
/// "interpreted" baseline and semantic oracle).
///
/// # Errors
///
/// Fails on interpreter errors or when the result is not first-order data.
pub fn interpret(program: &cs::Program, entry: &str, args: &[Datum]) -> Result<RunOutcome, Error> {
    interpret_with(program, entry, args, &Limits::none())
}

/// Like [`interpret`], but executing under `limits` (step fuel and
/// wall-clock deadline).
///
/// # Errors
///
/// Fails on interpreter errors (including limit overruns) or when the
/// result is not first-order data.
pub fn interpret_with(
    program: &cs::Program,
    entry: &str,
    args: &[Datum],
    limits: &Limits,
) -> Result<RunOutcome, Error> {
    catching(|| {
        let (v, output) = two4one_interp::run_program_with(program, entry, args, limits)?;
        let value = v
            .to_datum()
            .ok_or_else(|| Error::NonDatumResult(format!("{v:?}")))?;
        Ok(RunOutcome { value, output })
    })
}

// Compile-time proof that the pipeline is thread-safe end-to-end: every
// type that crosses the serving layer's thread boundaries must be
// `Send + Sync`. A regression (e.g. an `Rc` sneaking back in) fails to
// compile rather than failing at runtime.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Pgg>();
    assert_send_sync::<GenExt>();
    assert_send_sync::<CompiledGenExt>();
    assert_send_sync::<Image>();
    assert_send_sync::<Datum>();
    assert_send_sync::<AnfProgram>();
    assert_send_sync::<AProgram>();
    assert_send_sync::<Symbol>();
    assert_send_sync::<Limits>();
    assert_send_sync::<SpecStats>();
    assert_send_sync::<Error>();
    assert_send_sync::<ExecProfile>();
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facade_round_trip() {
        let pgg = Pgg::new();
        let p = pgg
            .parse("(define (inc x) (+ x 1)) (define (main a b) (+ (inc a) b))")
            .unwrap();
        // Stock compilation.
        let image = compile(&p, "main").unwrap();
        let out = run_image(&image, "main", &[Datum::Int(1), Datum::Int(2)]).unwrap();
        assert_eq!(out.value, Datum::Int(4));
        // Interpreted baseline agrees.
        let out2 = interpret(&p, "main", &[Datum::Int(1), Datum::Int(2)]).unwrap();
        assert_eq!(out2.value, Datum::Int(4));
    }

    #[test]
    fn genext_reuse_across_static_inputs() {
        let pgg = Pgg::new();
        let p = pgg
            .parse("(define (power x n) (if (= n 0) 1 (* x (power x (- n 1)))))")
            .unwrap();
        let genext = pgg
            .cogen(&p, "power", &Division::new([BT::Dynamic, BT::Static]))
            .unwrap();
        for n in 0..8 {
            let image = genext.specialize_object(&[Datum::Int(n)]).unwrap();
            let out = run_image(&image, "power", &[Datum::Int(2)]).unwrap();
            assert_eq!(out.value, Datum::Int(1 << n));
        }
    }

    #[test]
    fn source_text_load_path() {
        let pgg = Pgg::new();
        let p = pgg.parse("(define (f x) (* x x))").unwrap();
        let genext = pgg.cogen(&p, "f", &Division::new([BT::Dynamic])).unwrap();
        let residual = genext.specialize_source(&[]).unwrap();
        let image = compile_source_text(&residual.to_source(), "f").unwrap();
        let out = run_image(&image, "f", &[Datum::Int(9)]).unwrap();
        assert_eq!(out.value, Datum::Int(81));
    }

    #[test]
    fn compiled_genext_is_bit_identical_and_round_trips() {
        let pgg = Pgg::new();
        let p = pgg
            .parse("(define (power x n) (if (= n 0) 1 (* x (power x (- n 1)))))")
            .unwrap();
        let genext = pgg
            .cogen(&p, "power", &Division::new([BT::Dynamic, BT::Static]))
            .unwrap();
        let compiled = genext.compile().unwrap();
        for n in 0..6 {
            let a = genext.specialize_object(&[Datum::Int(n)]).unwrap();
            let b = compiled.specialize_object(&[Datum::Int(n)]).unwrap();
            assert_eq!(encode_image(&a), encode_image(&b), "n={n}");
        }
        // Wire round trip: same identity, same output.
        let restored =
            CompiledGenExt::from_bytes(compiled.to_bytes(), compiled.options().clone()).unwrap();
        assert_eq!(restored.cache_identity(), compiled.cache_identity());
        let a = compiled.specialize_object(&[Datum::Int(3)]).unwrap();
        let b = restored.specialize_object(&[Datum::Int(3)]).unwrap();
        assert_eq!(encode_image(&a), encode_image(&b));
        let out = run_image(&b, "power", &[Datum::Int(2)]).unwrap();
        assert_eq!(out.value, Datum::Int(8));
    }

    #[test]
    fn errors_display() {
        let pgg = Pgg::new();
        assert!(pgg.parse("(define (f").is_err());
        let p = pgg.parse("(define (f x) x)").unwrap();
        let e = pgg
            .cogen(&p, "g", &Division::new([BT::Static]))
            .unwrap_err();
        assert!(e.to_string().contains("g"));
    }
}
