//! `loadgen` — a standalone load generator for a running `t4o serve`.
//!
//! ```text
//! loadgen --addr 127.0.0.1:7474 [--conns 8] [--requests 1000]
//!         [--name power] [--static <datum>] [--token <tenant-token>]
//!         [--ping-every 4] [--spread 16] [--ramp]
//! ```
//!
//! Drives the binary wire protocol from `--conns` concurrent
//! connections, each issuing `--requests` spec requests (interleaved
//! with pings every `--ping-every` requests). `--spread N` rotates the
//! static argument through N distinct values so the run mixes cache
//! misses and hits; `--spread 1` is pure warm traffic. Prints per-run
//! latency percentiles and the server's `/metrics` page afterwards, so a
//! storm can be correlated with the `t4o_net_*` counters it moved.
//!
//! `--ramp` splits the report into a first-touch block (each
//! connection's first `--spread` requests, the cache-filling ramp) and
//! a steady-state block (everything after). Against a `t4o serve
//! --tier0` process the two blocks bracket the tiered pipeline: the
//! ramp shows Tier-0 first-touch latency, the steady block shows
//! post-promotion hits, and the `t4o_tier_*` metrics printed afterwards
//! confirm how many promotions landed in between. Pings are suppressed
//! in ramp mode so the percentile blocks hold spec round-trips only.

use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::time::{Duration, Instant};
use two4one_net::wire;

struct Opts {
    addr: String,
    conns: usize,
    requests: usize,
    name: String,
    static_text: String,
    token: String,
    ping_every: usize,
    spread: u64,
    ramp: bool,
}

fn parse_opts() -> Result<Opts, String> {
    let mut o = Opts {
        addr: String::new(),
        conns: 8,
        requests: 1000,
        name: "power".to_string(),
        static_text: String::new(),
        token: String::new(),
        ping_every: 4,
        spread: 16,
        ramp: false,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut take = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("`{name}` needs a value"))
        };
        let num = |name: &str, text: String| -> Result<usize, String> {
            text.parse()
                .map_err(|_| format!("`{name}` needs a number, got `{text}`"))
        };
        match a.as_str() {
            "--addr" => o.addr = take("--addr")?,
            "--conns" => o.conns = num("--conns", take("--conns")?)?,
            "--requests" => o.requests = num("--requests", take("--requests")?)?,
            "--name" => o.name = take("--name")?,
            "--static" => o.static_text = take("--static")?,
            "--token" => o.token = take("--token")?,
            "--ping-every" => o.ping_every = num("--ping-every", take("--ping-every")?)?,
            "--spread" => o.spread = num("--spread", take("--spread")?)?.max(1) as u64,
            "--ramp" => o.ramp = true,
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    if o.addr.is_empty() {
        return Err("missing --addr <host:port> (from t4o serve's listening line)".to_string());
    }
    Ok(o)
}

/// One connection's latencies, split at the cache-filling ramp.
struct ConnRun {
    /// The first `--spread` requests (ramp mode only; else empty).
    ramp: Vec<Duration>,
    /// Everything after the ramp (all requests when not in ramp mode).
    steady: Vec<Duration>,
    rejected: u64,
}

/// One worker connection's run: spec requests (with pings interleaved),
/// recording a latency per round-trip. Typed server errors (429, 408…)
/// count in `rejected` rather than aborting the run — surviving refusal
/// is the behavior a load test is for.
fn run_conn(o: &Opts, worker: u64) -> Result<ConnRun, String> {
    let mut stream = TcpStream::connect(&o.addr).map_err(|e| format!("{}: {e}", o.addr))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .map_err(|e| e.to_string())?;
    stream.set_nodelay(true).map_err(|e| e.to_string())?;
    let mut run = ConnRun {
        ramp: Vec::new(),
        steady: Vec::with_capacity(o.requests),
        rejected: 0,
    };
    for i in 0..o.requests {
        let ping = !o.ramp && o.ping_every > 0 && i % o.ping_every.max(1) == o.ping_every - 1;
        let frame = if ping {
            wire::encode_frame(wire::REQ_PING, &[])
        } else {
            let statics = if o.static_text.is_empty() {
                format!("{}", 1 + (worker + i as u64) % o.spread)
            } else {
                o.static_text.clone()
            };
            let req = wire::SpecWireRequest {
                token: o.token.clone(),
                name: o.name.clone(),
                statics,
                deadline_ms: 30_000,
                want: wire::WANT_META,
            };
            wire::encode_frame(wire::REQ_SPEC, &req.encode())
        };
        let t0 = Instant::now();
        stream.write_all(&frame).map_err(|e| e.to_string())?;
        let resp = wire::read_frame(&mut stream, 1 << 24)
            .map_err(|e| e.to_string())?
            .ok_or("server closed the connection mid-run")?;
        let elapsed = t0.elapsed();
        if o.ramp && (i as u64) < o.spread {
            run.ramp.push(elapsed);
        } else {
            run.steady.push(elapsed);
        }
        if resp.ftype == wire::RESP_ERROR {
            run.rejected += 1;
        }
    }
    Ok(run)
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn fmt(d: Duration) -> String {
    let us = d.as_nanos() as f64 / 1e3;
    if us >= 1000.0 {
        format!("{:.3} ms", us / 1e3)
    } else {
        format!("{us:.1} µs")
    }
}

fn fetch_metrics(addr: &str) -> Result<String, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| e.to_string())?;
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .map_err(|e| e.to_string())?;
    stream
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: loadgen\r\nConnection: close\r\n\r\n")
        .map_err(|e| e.to_string())?;
    let mut page = String::new();
    stream
        .read_to_string(&mut page)
        .map_err(|e| e.to_string())?;
    Ok(page
        .split_once("\r\n\r\n")
        .map(|(_, body)| body.to_string())
        .unwrap_or(page))
}

fn main() -> std::process::ExitCode {
    let o = match parse_opts() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("loadgen: {e}");
            return std::process::ExitCode::FAILURE;
        }
    };
    let t0 = Instant::now();
    let outcome: Vec<Result<ConnRun, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..o.conns)
            .map(|w| {
                let o = &o;
                scope.spawn(move || run_conn(o, w as u64))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker"))
            .collect()
    });
    let wall = t0.elapsed();

    let mut ramp = Vec::new();
    let mut steady = Vec::new();
    let mut rejected = 0u64;
    let mut failures = 0usize;
    for r in outcome {
        match r {
            Ok(run) => {
                ramp.extend(run.ramp);
                steady.extend(run.steady);
                rejected += run.rejected;
            }
            Err(e) => {
                failures += 1;
                eprintln!("loadgen: connection failed: {e}");
            }
        }
    }
    let mut latencies: Vec<Duration> = ramp.iter().chain(steady.iter()).copied().collect();
    latencies.sort();
    ramp.sort();
    steady.sort();
    let total = latencies.len();
    println!(
        "loadgen: {} requests over {} connections in {:.2}s ({:.0} req/s), \
         {rejected} rejected, {failures} connections failed",
        total,
        o.conns,
        wall.as_secs_f64(),
        total as f64 / wall.as_secs_f64().max(f64::EPSILON)
    );
    let block = |label: &str, sorted: &[Duration]| {
        println!(
            "  {label}: p50 {}  p90 {}  p99 {}  p999 {}  max {}  (n={})",
            fmt(percentile(sorted, 0.50)),
            fmt(percentile(sorted, 0.90)),
            fmt(percentile(sorted, 0.99)),
            fmt(percentile(sorted, 0.999)),
            fmt(sorted.last().copied().unwrap_or_default()),
            sorted.len()
        );
    };
    block("overall", &latencies);
    if o.ramp {
        // First touches fill the cache; steady state rides the hits
        // (and, against a --tier0 server, the promoted images).
        block("first-touch", &ramp);
        block("steady-state", &steady);
    }
    match fetch_metrics(&o.addr) {
        Ok(page) => {
            println!("-- /metrics (t4o_net_* / t4o_tier_* families) --");
            for line in page
                .lines()
                .filter(|l| l.starts_with("t4o_net_") || l.starts_with("t4o_tier_"))
            {
                println!("{line}");
            }
        }
        Err(e) => eprintln!("loadgen: /metrics fetch failed: {e}"),
    }
    if failures > 0 {
        std::process::ExitCode::FAILURE
    } else {
        std::process::ExitCode::SUCCESS
    }
}
