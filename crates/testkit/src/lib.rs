//! Random-program generators for property-based testing.
//!
//! The central oracle of the workspace is *engine agreement*: the
//! tree-walking interpreter, the stock compiler + VM, and the specializer
//! must compute the same function. This crate generates random but
//! well-scoped Core Scheme programs (and random data) to drive those
//! comparisons.
//!
//! Generation happens in two phases: first a *sketch* tree with de
//! Bruijn-ish variable indices, then a resolution pass that maps indices to
//! the variables actually in scope (or to literals when the scope is
//! empty), guaranteeing closed programs with unique binders.

use proptest::prelude::*;
use std::sync::Arc;
use two4one_syntax::cs::{Def, Expr, Lambda, Program};
use two4one_syntax::datum::Datum;
use two4one_syntax::prim::Prim;
use two4one_syntax::symbol::Symbol;

/// An expression sketch: variables are indices into the enclosing scope.
#[derive(Debug, Clone)]
pub enum Sketch {
    /// Integer literal.
    Int(i64),
    /// Boolean literal.
    Bool(bool),
    /// A variable, resolved modulo the scope size.
    Var(usize),
    /// Arithmetic on two subterms.
    Arith(Prim, Box<Sketch>, Box<Sketch>),
    /// Comparison producing a boolean.
    Cmp(Prim, Box<Sketch>, Box<Sketch>),
    /// Conditional.
    If(Box<Sketch>, Box<Sketch>, Box<Sketch>),
    /// Let binding.
    Let(Box<Sketch>, Box<Sketch>),
    /// Immediately applied unary lambda (keeps arities trivially correct).
    ApplyLambda(Box<Sketch>, Box<Sketch>),
    /// A lambda passed to a higher-order global.
    CallGlobal(usize, Box<Sketch>, Box<Sketch>),
    /// Pair construction and access (kept total by construction/selection
    /// pairing).
    ConsCar(Box<Sketch>, Box<Sketch>),
}

/// Strategy for expression sketches.
pub fn arb_sketch() -> impl Strategy<Value = Sketch> {
    let leaf = prop_oneof![
        (-20i64..20).prop_map(Sketch::Int),
        any::<bool>().prop_map(Sketch::Bool),
        (0usize..8).prop_map(Sketch::Var),
    ];
    leaf.prop_recursive(5, 64, 3, |inner| {
        prop_oneof![
            (
                prop_oneof![Just(Prim::Add), Just(Prim::Sub), Just(Prim::Mul)],
                inner.clone(),
                inner.clone()
            )
                .prop_map(|(p, a, b)| Sketch::Arith(p, Box::new(a), Box::new(b))),
            (
                prop_oneof![
                    Just(Prim::Lt),
                    Just(Prim::Le),
                    Just(Prim::NumEq),
                    Just(Prim::EqualP)
                ],
                inner.clone(),
                inner.clone()
            )
                .prop_map(|(p, a, b)| Sketch::Cmp(p, Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(t, c, a)| {
                Sketch::If(Box::new(t), Box::new(c), Box::new(a))
            }),
            (inner.clone(), inner.clone())
                .prop_map(|(r, b)| Sketch::Let(Box::new(r), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(b, a)| Sketch::ApplyLambda(Box::new(b), Box::new(a))),
            (0usize..2, inner.clone(), inner.clone()).prop_map(|(g, a, b)| {
                Sketch::CallGlobal(g, Box::new(a), Box::new(b))
            }),
            (inner.clone(), inner)
                .prop_map(|(a, b)| Sketch::ConsCar(Box::new(a), Box::new(b))),
        ]
    })
}

/// Names and arities of the fixed global functions every generated program
/// defines.
const GLOBALS: &[(&str, usize)] = &[("gadd", 2), ("gsel", 2)];

struct Resolver {
    counter: u64,
}

impl Resolver {
    fn fresh(&mut self) -> Symbol {
        self.counter += 1;
        Symbol::new(&format!("v%{}", self.counter))
    }

    fn resolve(&mut self, s: &Sketch, scope: &[Symbol]) -> Expr {
        match s {
            Sketch::Int(n) => Expr::Const(Datum::Int(*n)),
            Sketch::Bool(b) => Expr::Const(Datum::Bool(*b)),
            Sketch::Var(i) => {
                if scope.is_empty() {
                    Expr::Const(Datum::Int(*i as i64))
                } else {
                    Expr::Var(scope[i % scope.len()].clone())
                }
            }
            Sketch::Arith(p, a, b) => Expr::PrimApp(
                *p,
                vec![self.resolve(a, scope), self.resolve(b, scope)],
            ),
            Sketch::Cmp(p, a, b) => Expr::PrimApp(
                *p,
                vec![self.resolve(a, scope), self.resolve(b, scope)],
            ),
            Sketch::If(t, c, a) => Expr::if_(
                self.resolve(t, scope),
                self.resolve(c, scope),
                self.resolve(a, scope),
            ),
            Sketch::Let(r, b) => {
                let x = self.fresh();
                let rhs = self.resolve(r, scope);
                let mut inner = scope.to_vec();
                inner.push(x.clone());
                Expr::let_(x, rhs, self.resolve(b, &inner))
            }
            Sketch::ApplyLambda(body, arg) => {
                let x = self.fresh();
                let mut inner = scope.to_vec();
                inner.push(x.clone());
                let lam = Expr::Lambda(Arc::new(Lambda {
                    name: Symbol::new("anon"),
                    params: vec![x],
                    body: self.resolve(body, &inner),
                }));
                Expr::app(lam, vec![self.resolve(arg, scope)])
            }
            Sketch::CallGlobal(g, a, b) => {
                let (name, arity) = GLOBALS[g % GLOBALS.len()];
                debug_assert_eq!(arity, 2);
                Expr::app(
                    Expr::Var(Symbol::new(name)),
                    vec![self.resolve(a, scope), self.resolve(b, scope)],
                )
            }
            Sketch::ConsCar(a, b) => {
                // (car (cons a b)) — exercises pairs while staying total.
                let pair = Expr::PrimApp(
                    Prim::Cons,
                    vec![self.resolve(a, scope), self.resolve(b, scope)],
                );
                Expr::PrimApp(Prim::Car, vec![pair])
            }
        }
    }
}

/// Builds a closed program from sketches: fixed library globals plus a
/// two-parameter `main` whose body is the resolved sketch.
pub fn program_from_sketch(main_body: &Sketch, gadd_body: &Sketch) -> Program {
    let mut r = Resolver { counter: 0 };
    let a = Symbol::new("a%main");
    let b = Symbol::new("b%main");
    let main = Def {
        name: Symbol::new("main"),
        params: vec![a.clone(), b.clone()],
        body: r.resolve(main_body, &[a, b]),
    };
    let ga = Symbol::new("a%gadd");
    let gb = Symbol::new("b%gadd");
    let gadd = Def {
        name: Symbol::new("gadd"),
        params: vec![ga.clone(), gb.clone()],
        body: r.resolve(gadd_body, &[ga, gb]),
    };
    // gsel: a higher-orderish selector on plain values.
    let sa = Symbol::new("a%gsel");
    let sb = Symbol::new("b%gsel");
    let gsel = Def {
        name: Symbol::new("gsel"),
        params: vec![sa.clone(), sb.clone()],
        body: Expr::if_(
            Expr::PrimApp(Prim::Lt, vec![Expr::Var(sa.clone()), Expr::Var(sb.clone())]),
            Expr::Var(sa),
            Expr::Var(sb),
        ),
    };
    Program {
        defs: vec![main, gadd, gsel],
    }
}

/// Strategy producing whole closed programs.
pub fn arb_program() -> impl Strategy<Value = Program> {
    (arb_sketch(), arb_sketch())
        .prop_map(|(m, g)| program_from_sketch(&m, &g))
}

/// Strategy for random first-order data (for reader/printer round-trips).
pub fn arb_datum() -> impl Strategy<Value = Datum> {
    let leaf = prop_oneof![
        Just(Datum::Nil),
        any::<bool>().prop_map(Datum::Bool),
        (-1000i64..1000).prop_map(Datum::Int),
        "[a-z][a-z0-9!?<>=+*-]{0,6}".prop_map(|s| Datum::sym(&s)),
        "[ -~]{0,8}".prop_map(|s| Datum::string(&s)),
        prop_oneof![Just('a'), Just(' '), Just('\n'), Just('λ')].prop_map(Datum::Char),
    ];
    leaf.prop_recursive(4, 32, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Datum::cons(a, b)),
            proptest::collection::vec(inner, 0..4).prop_map(Datum::list),
        ]
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    proptest! {
        #[test]
        fn generated_programs_are_closed(p in arb_program()) {
            prop_assert!(p.unbound_vars().is_empty(), "{:?}", p.unbound_vars());
        }

        #[test]
        fn generated_programs_have_unique_binders(p in arb_program()) {
            // Collect all binders; uniqueness is what BTA requires.
            fn binders(e: &Expr, out: &mut Vec<Symbol>) {
                match e {
                    Expr::Lambda(l) => {
                        out.extend(l.params.iter().cloned());
                        binders(&l.body, out);
                    }
                    Expr::Let(x, r, b) => {
                        out.push(x.clone());
                        binders(r, out);
                        binders(b, out);
                    }
                    Expr::If(a, b, c) => {
                        binders(a, out);
                        binders(b, out);
                        binders(c, out);
                    }
                    Expr::App(f, args) => {
                        binders(f, out);
                        args.iter().for_each(|a| binders(a, out));
                    }
                    Expr::PrimApp(_, args) => args.iter().for_each(|a| binders(a, out)),
                    _ => {}
                }
            }
            let mut all = Vec::new();
            for d in &p.defs {
                all.extend(d.params.iter().cloned());
                binders(&d.body, &mut all);
            }
            let set: std::collections::HashSet<_> = all.iter().collect();
            prop_assert_eq!(set.len(), all.len());
        }

        #[test]
        fn datum_strategy_is_printable(d in arb_datum()) {
            let _ = d.to_string();
        }
    }
}
