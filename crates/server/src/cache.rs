//! The sharded specialization-result cache.
//!
//! Layout: `shards` independent hash maps, each behind its own mutex, so
//! concurrent requests for different keys proceed without contention.
//! A shard is picked by the key's 64-bit digest; *within* a shard the map
//! is keyed by the **full** key (rendered program, entry, rendered static
//! arguments), so two different programs whose digests happen to collide
//! can never alias each other's residual code — the digest is a routing
//! and hashing accelerator, never an identity.
//!
//! Each occupied slot is either `Ready` (a finished result plus LRU
//! bookkeeping) or `InFlight` (a single-flight rendezvous: the first
//! requester of a key specializes, everyone else arriving before it
//! finishes blocks on the flight's condvar and shares the one result).

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use two4one::{CancelToken, Epoch};

use crate::SpecOutcome;

/// Locks a mutex, recovering from poisoning (shard state is always
/// consistent: every mutation happens fully inside one critical section).
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// 64-bit FNV-1a over the given byte strings, with a separator between
/// parts so `("ab","c")` and `("a","bc")` differ.
pub(crate) fn digest64<'a>(parts: impl IntoIterator<Item = &'a str>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for part in parts {
        for b in part.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^= 0xff;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Full identity of a specialization request.
///
/// Equality compares every field; the precomputed digest only serves as
/// the hash and the shard selector.
#[derive(Debug, Clone)]
pub(crate) struct Key {
    pub(crate) digest: u64,
    /// Digest over (program, entry) only — shared by all static-argument
    /// variants of one specialization target. The circuit breaker tracks
    /// failure streaks at this granularity. Not part of identity.
    pub(crate) program_digest: u64,
    pub(crate) program: Arc<str>,
    pub(crate) entry: Arc<str>,
    pub(crate) statics: Arc<str>,
    /// Invalidation backedge: the logical registry name and epoch this
    /// result was specialized under, or `None` for anonymous requests
    /// (callers holding a raw [`two4one::GenExt`]). Part of identity —
    /// re-registering identical source under a new epoch must not alias
    /// the old generation's entries.
    pub(crate) backedge: Option<(Arc<str>, Epoch)>,
}

impl Key {
    pub(crate) fn new(program: &str, entry: &str, statics: &str) -> Self {
        Key {
            digest: digest64([program, entry, statics]),
            program_digest: digest64([program, entry]),
            program: Arc::from(program),
            entry: Arc::from(entry),
            statics: Arc::from(statics),
            backedge: None,
        }
    }

    /// A key carrying a registry backedge: same content identity as
    /// [`Key::new`], plus the `(name, epoch)` of the registration the
    /// request resolved. The epoch is folded into the digest so two
    /// generations of one program never share a slot.
    pub(crate) fn versioned(
        name: &Arc<str>,
        epoch: Epoch,
        program: &str,
        entry: &str,
        statics: &str,
    ) -> Self {
        let epoch_part = epoch.get().to_string();
        Key {
            digest: digest64([name.as_ref(), &epoch_part, program, entry, statics]),
            program_digest: digest64([program, entry]),
            program: Arc::from(program),
            entry: Arc::from(entry),
            statics: Arc::from(statics),
            backedge: Some((name.clone(), epoch)),
        }
    }

    /// A key with a caller-chosen digest, for exercising the
    /// collision-safety of full-key equality in tests.
    #[cfg(test)]
    pub(crate) fn with_digest(digest: u64, program: &str, entry: &str, statics: &str) -> Self {
        Key {
            digest,
            program_digest: digest64([program, entry]),
            program: Arc::from(program),
            entry: Arc::from(entry),
            statics: Arc::from(statics),
            backedge: None,
        }
    }
}

impl PartialEq for Key {
    fn eq(&self, other: &Self) -> bool {
        self.digest == other.digest
            && self.entry == other.entry
            && self.statics == other.statics
            && self.program == other.program
            && self.backedge == other.backedge
    }
}

impl Eq for Key {}

impl Hash for Key {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.digest);
    }
}

/// Single-flight rendezvous for one in-progress specialization.
#[derive(Debug, Default)]
pub(crate) struct Flight {
    /// `None` while the leader is still working; then the shared result
    /// (errors travel as rendered messages, since engine errors are not
    /// `Clone`).
    result: Mutex<Option<Result<Arc<SpecOutcome>, String>>>,
    done: Condvar,
}

impl Flight {
    /// Publishes the leader's result and wakes all waiters.
    pub(crate) fn complete(&self, r: Result<Arc<SpecOutcome>, String>) {
        *lock(&self.result) = Some(r);
        self.done.notify_all();
    }

    /// Blocks until the leader publishes, then returns a shared copy.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn wait(&self) -> Result<Arc<SpecOutcome>, String> {
        let mut guard = lock(&self.result);
        loop {
            if let Some(r) = guard.as_ref() {
                return r.clone();
            }
            guard = self
                .done
                .wait(guard)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Like [`Flight::wait`], but gives up at `until`: returns `None` if
    /// the leader has not published by then (the leader keeps running —
    /// a waiter's deadline never cancels someone else's request).
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn wait_until(
        &self,
        until: Option<Instant>,
    ) -> Option<Result<Arc<SpecOutcome>, String>> {
        match self.wait_cancellable(until, None) {
            FlightWait::Done(r) => Some(r),
            FlightWait::TimedOut | FlightWait::Detached => None,
        }
    }

    /// Like [`Flight::wait_until`], but additionally observes the waiter's
    /// own [`CancelToken`]: a coalesced waiter whose client disconnects
    /// detaches from the flight instead of blocking until the deadline.
    /// Detaching is strictly waiter-side — the leader keeps running and
    /// publishes for everyone else (a waiter's token never cancels someone
    /// else's request). A published result always wins over a fired token:
    /// delivering it is free and the caller may still be able to use it.
    pub(crate) fn wait_cancellable(
        &self,
        until: Option<Instant>,
        cancel: Option<&CancelToken>,
    ) -> FlightWait {
        // With a token present we wake in short ticks to notice the token
        // firing; condvar wakeups from `complete` still arrive instantly.
        const TICK: Duration = Duration::from_millis(10);
        // "No deadline" still needs a finite wait_timeout argument when
        // ticking; one hour is indistinguishable from forever here.
        const UNBOUNDED: Duration = Duration::from_secs(3600);
        let mut guard = lock(&self.result);
        loop {
            if let Some(r) = guard.as_ref() {
                return FlightWait::Done(r.clone());
            }
            if let Some(token) = cancel {
                if token.is_stopped() {
                    return FlightWait::Detached;
                }
            }
            let now = Instant::now();
            let mut step = match until {
                Some(u) if now >= u => return FlightWait::TimedOut,
                Some(u) => u - now,
                None => UNBOUNDED,
            };
            if cancel.is_some() {
                step = step.min(TICK);
            }
            guard = self
                .done
                .wait_timeout(guard, step)
                .unwrap_or_else(PoisonError::into_inner)
                .0;
        }
    }
}

/// Why [`Flight::wait_cancellable`] returned.
#[derive(Debug)]
pub(crate) enum FlightWait {
    /// The leader published; the shared result.
    Done(Result<Arc<SpecOutcome>, String>),
    /// The waiter's deadline passed before the leader published.
    TimedOut,
    /// The waiter's cancellation token fired; it detached from the flight
    /// without affecting the leader.
    Detached,
}

/// Which execution tier produced a cached image.
///
/// `Generic` is the Tier-0 fast path: the generically-compiled image
/// (fuel-0 fallback recipe) published immediately on a cold miss so the
/// requester never waits on the specializer. `Specialized` is the fully
/// specialized residual. `Degraded` is a specialized image produced under
/// a budget fallback — still better than generic, but a candidate for
/// polyvariant re-specialization with escalated budgets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Tier {
    Specialized,
    Generic,
    Degraded,
}

/// A finished, cached result.
#[derive(Debug)]
pub(crate) struct Entry {
    pub(crate) outcome: Arc<SpecOutcome>,
    /// Logical access time (global ticket counter), for LRU-ish eviction.
    pub(crate) last_access: u64,
    /// Code-size units this entry charges against the shard budget.
    pub(crate) size: usize,
    /// Which tier produced `outcome`.
    pub(crate) tier: Tier,
    /// Serve-path hits since publication — combined with the image's
    /// execution profile to decide promotion.
    pub(crate) hits: u64,
    /// A promotion candidate for this entry is queued or running; gates
    /// duplicate enqueues.
    pub(crate) queued: bool,
    /// Promotion permanently given up (specializer failed or the entry
    /// exhausted its escalation budget); never re-enqueued.
    pub(crate) dead: bool,
    /// Budget-escalation round for the next re-specialization attempt.
    pub(crate) escalation: u32,
}

impl Entry {
    pub(crate) fn new(
        outcome: Arc<SpecOutcome>,
        last_access: u64,
        size: usize,
        tier: Tier,
    ) -> Self {
        Entry {
            outcome,
            last_access,
            size,
            tier,
            hits: 0,
            queued: false,
            dead: false,
            escalation: 0,
        }
    }
}

#[derive(Debug)]
pub(crate) enum Slot {
    Ready(Entry),
    InFlight(Arc<Flight>),
}

/// One shard: a map plus the code-size total of its `Ready` entries.
#[derive(Debug, Default)]
pub(crate) struct Shard {
    pub(crate) map: HashMap<Key, Slot>,
    pub(crate) code_size: usize,
}

impl Shard {
    fn ready_count(&self) -> usize {
        self.map
            .values()
            .filter(|s| matches!(s, Slot::Ready(_)))
            .count()
    }

    /// Evicts least-recently-used `Ready` entries until the shard is
    /// within `max_entries` and `code_budget`. A single entry larger than
    /// the whole budget is kept (evicting it would make the hit rate zero
    /// without freeing space for anything usable); in-flight slots are
    /// never evicted. Returns the number of entries removed.
    pub(crate) fn evict_to(&mut self, max_entries: usize, code_budget: Option<usize>) -> u64 {
        let mut evicted = 0;
        loop {
            let ready = self.ready_count();
            let over_count = ready > max_entries;
            let over_size = match code_budget {
                Some(b) => self.code_size > b && ready > 1,
                None => false,
            };
            if !over_count && !over_size {
                return evicted;
            }
            let victim = self
                .map
                .iter()
                .filter_map(|(k, s)| match s {
                    Slot::Ready(e) => Some((k.clone(), e.last_access)),
                    Slot::InFlight(_) => None,
                })
                .min_by_key(|(_, t)| *t)
                .map(|(k, _)| k);
            match victim {
                Some(k) => {
                    if let Some(Slot::Ready(e)) = self.map.remove(&k) {
                        self.code_size -= e.size.min(self.code_size);
                    }
                    evicted += 1;
                }
                None => return evicted,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use two4one::SpecStats;
    use two4one::{Image, Symbol};

    fn dummy_outcome() -> Arc<SpecOutcome> {
        Arc::new(SpecOutcome {
            image: Arc::new(Image {
                templates: Vec::new(),
                entry: Symbol::new("e"),
            }),
            stats: SpecStats::default(),
            profile: Arc::new(two4one::ExecProfile::default()),
        })
    }

    fn ready(tick: u64, size: usize) -> Slot {
        Slot::Ready(Entry::new(dummy_outcome(), tick, size, Tier::Specialized))
    }

    #[test]
    fn digest_separates_parts() {
        assert_ne!(digest64(["ab", "c"]), digest64(["a", "bc"]));
        assert_eq!(digest64(["x", "y"]), digest64(["x", "y"]));
    }

    #[test]
    fn equal_digests_do_not_collide_in_a_shard() {
        // Two different programs forced onto the same digest: the map must
        // keep them apart because Key equality compares full contents.
        let a = Key::with_digest(42, "(define (f x) x)", "f", "(1)");
        let b = Key::with_digest(42, "(define (f x) (+ x 1))", "f", "(1)");
        assert_ne!(a, b);
        let mut shard = Shard::default();
        shard.map.insert(a.clone(), ready(0, 1));
        shard.map.insert(b.clone(), ready(1, 1));
        assert_eq!(shard.map.len(), 2);
        assert!(matches!(shard.map.get(&a), Some(Slot::Ready(_))));
        assert!(matches!(shard.map.get(&b), Some(Slot::Ready(_))));
    }

    #[test]
    fn epochs_of_one_program_are_different_keys() {
        let name: Arc<str> = Arc::from("P");
        let a = Key::versioned(&name, Epoch::FIRST, "(define (f x) x)", "f", "(1)");
        let b = Key::versioned(&name, Epoch::FIRST.next(), "(define (f x) x)", "f", "(1)");
        // Identical source under a new epoch must not alias the old
        // generation's slot, by digest or by equality.
        assert_ne!(a, b);
        assert_ne!(a.digest, b.digest);
        // Nor does a versioned key alias the anonymous key for the same
        // content.
        let anon = Key::new("(define (f x) x)", "f", "(1)");
        assert_ne!(a, anon);
    }

    #[test]
    fn same_program_different_statics_are_different_keys() {
        let a = Key::new("(define (f s d) s)", "f", "(1)");
        let b = Key::new("(define (f s d) s)", "f", "(2)");
        assert_ne!(a, b);
    }

    #[test]
    fn eviction_removes_oldest_ready_first() {
        let mut shard = Shard::default();
        shard.map.insert(Key::new("p1", "e", "()"), ready(5, 10));
        shard.map.insert(Key::new("p2", "e", "()"), ready(1, 10));
        shard.map.insert(Key::new("p3", "e", "()"), ready(9, 10));
        shard.code_size = 30;
        let n = shard.evict_to(2, None);
        assert_eq!(n, 1);
        assert!(!shard.map.contains_key(&Key::new("p2", "e", "()")));
        assert_eq!(shard.code_size, 20);
    }

    #[test]
    fn eviction_never_removes_inflight() {
        let mut shard = Shard::default();
        shard
            .map
            .insert(Key::new("p1", "e", "()"), Slot::InFlight(Arc::default()));
        shard.map.insert(Key::new("p2", "e", "()"), ready(1, 10));
        shard.code_size = 10;
        shard.evict_to(0, None);
        assert!(shard.map.contains_key(&Key::new("p1", "e", "()")));
        assert!(!shard.map.contains_key(&Key::new("p2", "e", "()")));
    }

    #[test]
    fn oversized_single_entry_survives() {
        let mut shard = Shard::default();
        shard.map.insert(Key::new("p1", "e", "()"), ready(1, 100));
        shard.code_size = 100;
        assert_eq!(shard.evict_to(8, Some(10)), 0);
        assert_eq!(shard.map.len(), 1);
    }

    #[test]
    fn lock_recovers_from_poisoning() {
        // A panic while holding a shard lock poisons the mutex; `lock`
        // must keep serving (shard mutations are single-critical-section,
        // so the state behind a poisoned lock is still consistent).
        let shard = Arc::new(Mutex::new(Shard::default()));
        let poisoner = shard.clone();
        let panicked = std::thread::spawn(move || {
            let mut guard = poisoner.lock().expect("first lock");
            guard.map.insert(Key::new("p", "e", "()"), ready(0, 1));
            panic!("injected fault: die holding the shard lock");
        })
        .join();
        assert!(panicked.is_err());
        assert!(shard.is_poisoned());
        let guard = lock(&shard);
        assert!(guard.map.contains_key(&Key::new("p", "e", "()")));
    }

    #[test]
    fn flight_wait_until_times_out_and_still_delivers_later() {
        let f = Arc::new(Flight::default());
        // Deadline already passed and nothing published: give up.
        assert!(f.wait_until(Some(Instant::now())).is_none());
        f.complete(Ok(dummy_outcome()));
        // Published: even an expired deadline returns the result.
        assert!(f.wait_until(Some(Instant::now())).is_some());
        assert!(f.wait_until(None).is_some());
    }

    #[test]
    fn cancelled_waiter_detaches_without_touching_leader() {
        // Regression: a network client that disconnects while parked as a
        // coalesced waiter must detach promptly — and the flight (the
        // leader's rendezvous) must stay fully usable for everyone else.
        let f = Arc::new(Flight::default());
        let token = CancelToken::new();
        let (f2, t2) = (f.clone(), token.clone());
        let waiter = std::thread::spawn(move || {
            let far = Some(Instant::now() + Duration::from_secs(30));
            f2.wait_cancellable(far, Some(&t2))
        });
        std::thread::sleep(Duration::from_millis(30));
        token.cancel();
        let got = waiter.join().expect("waiter thread");
        assert!(matches!(got, FlightWait::Detached));
        // The leader publishes afterwards; other waiters still rendezvous.
        f.complete(Ok(dummy_outcome()));
        assert!(matches!(
            f.wait_cancellable(None, Some(&token)),
            // Published result wins even though this token already fired.
            FlightWait::Done(Ok(_))
        ));
        assert!(f.wait().is_ok());
    }

    #[test]
    fn cancellable_wait_without_token_matches_wait_until() {
        let f = Arc::new(Flight::default());
        assert!(matches!(
            f.wait_cancellable(Some(Instant::now()), None),
            FlightWait::TimedOut
        ));
        f.complete(Ok(dummy_outcome()));
        assert!(matches!(
            f.wait_cancellable(Some(Instant::now()), None),
            FlightWait::Done(Ok(_))
        ));
    }

    #[test]
    fn flight_rendezvous_shares_result() {
        let f = Arc::new(Flight::default());
        let f2 = f.clone();
        let waiter = std::thread::spawn(move || f2.wait());
        f.complete(Ok(dummy_outcome()));
        assert!(waiter.join().expect("waiter thread").is_ok());
        // Late arrivals see the published result immediately.
        assert!(f.wait().is_ok());
    }
}
