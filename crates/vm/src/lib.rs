//! A byte-code virtual machine in the style of the Scheme 48 VM.
//!
//! "The output of the compiler is an abstract representation of the byte
//! code for the Scheme 48 virtual machine, essentially a stack machine with
//! direct support for closures and continuations" (Sec. 6.1). This crate
//! provides:
//!
//! * the [`Instr`] instruction set and [`Template`] code objects;
//! * [`Asm`], an assembler exposing exactly the constructor vocabulary the
//!   paper's compilators use — `sequentially` (sequential emission),
//!   `make-label`, `attach-label`, and `instruction-using-label`
//!   (backpatched jumps);
//! * the [`Machine`] byte-code interpreter with flat closures and proper
//!   tail calls;
//! * [`Image`], a linked set of templates forming a runnable program.
//!
//! Closures are *flat*: a closure captures the values of its free
//! variables; the compile-time environment resolves variables to argument
//! slots, `let` slots, captured slots, or globals.

pub mod asm;
pub mod genops;
pub mod machine;
pub mod objfile;
pub mod peephole;

pub use asm::{Asm, AsmError, Label};
pub use genops::{decode_genext, encode_genext, GenDef, GenInstr, GenLam, GenParam, GenProgram};
pub use machine::{init_dispatch_metrics, ExecProfile, Machine, VmError};
pub use objfile::{decode as decode_image, encode as encode_image, ObjError};
pub use peephole::{optimize_image, optimize_template};

use std::fmt;
use std::sync::Arc;
use two4one_syntax::datum::Datum;
use two4one_syntax::prim::Prim;
use two4one_syntax::symbol::Symbol;
use two4one_syntax::value::ProcRepr;

/// A byte-code instruction.
///
/// `val` is the accumulator; `push` moves it to the evaluation stack;
/// `bind` appends it to the current frame's locals (a `let`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instr {
    /// Load `consts[i]` into `val`.
    Const(u16),
    /// Load the value of global `globals[i]` into `val`.
    Global(u16),
    /// Load local slot `i` (arguments first, then `let` bindings).
    Local(u16),
    /// Load captured slot `i` of the running closure.
    Captured(u16),
    /// Push `val` onto the evaluation stack.
    Push,
    /// Append `val` to the current frame's locals (enter a `let`).
    Bind,
    /// Truncate the current frame's locals to `n` slots (leave the scope of
    /// branch-local `let`s; used only by the generic compiler, which must
    /// merge control paths — the ANF compiler never needs it).
    Trim(u16),
    /// Pop `nfree` values into a new closure over `templates[template]`.
    MakeClosure {
        /// Index into the template table.
        template: u16,
        /// Number of captured values to pop.
        nfree: u16,
    },
    /// Call the procedure in `val` with `nargs` stacked arguments.
    Call {
        /// Argument count.
        nargs: u8,
    },
    /// Tail-call: like [`Instr::Call`] but replaces the current frame.
    TailCall {
        /// Argument count.
        nargs: u8,
    },
    /// Return `val` to the caller.
    Return,
    /// Unconditional jump to an absolute code index.
    Jump(u32),
    /// Jump if `val` is `#f`.
    JumpIfFalse(u32),
    /// Apply a primitive to `nargs` stacked arguments, result in `val`.
    Prim {
        /// The primitive.
        prim: Prim,
        /// Argument count.
        nargs: u8,
    },
    /// Fused `Local i; Push` — the hottest pair the compilators emit
    /// (argument loading). Loads local slot `i` into `val` *and* pushes it,
    /// exactly like the two-instruction sequence. Produced only by the
    /// peephole fuser; the compilators never emit it directly.
    LocalPush(u16),
    /// Fused `Const i; Push` (literal-argument loading); same contract as
    /// [`Instr::LocalPush`].
    ConstPush(u16),
    /// Fused `LocalPush i; Prim` — local-load-compare and friends: push
    /// local slot `local` as the final primitive argument and apply the
    /// primitive in one dispatch. The hottest residual-matcher pair
    /// (`(eq? c <char>)` compiles to `local-push; const-push; prim eq?`
    /// and fuses twice). Produced only by the peephole fuser.
    LocalPrim {
        /// Local slot pushed as the last argument.
        local: u16,
        /// The primitive.
        prim: Prim,
        /// Argument count (including the fused push).
        nargs: u8,
    },
    /// Fused `ConstPush i; Prim`; same contract as [`Instr::LocalPrim`]
    /// with a constant-table load instead of a local load.
    ConstPrim {
        /// Constant slot pushed as the last argument.
        konst: u16,
        /// The primitive.
        prim: Prim,
        /// Argument count (including the fused push).
        nargs: u8,
    },
    /// Fused `Prim; JumpIfFalse` — compare-branch: apply the primitive
    /// (result in `val`, exactly as [`Instr::Prim`]) and jump to `target`
    /// if the result is `#f`. Produced only by the peephole fuser.
    PrimBranch {
        /// The primitive.
        prim: Prim,
        /// Argument count.
        nargs: u8,
        /// Branch target when the result is `#f`.
        target: u32,
    },
}

impl Instr {
    /// Number of distinct opcodes (the length of [`OP_NAMES`]).
    pub const N_OPS: usize = 19;

    /// Dense opcode index, for per-opcode dispatch accounting:
    /// `OP_NAMES[i.opcode()]` names the instruction family.
    pub fn opcode(&self) -> usize {
        match self {
            Instr::Const(_) => 0,
            Instr::Global(_) => 1,
            Instr::Local(_) => 2,
            Instr::Captured(_) => 3,
            Instr::Push => 4,
            Instr::Bind => 5,
            Instr::Trim(_) => 6,
            Instr::MakeClosure { .. } => 7,
            Instr::Call { .. } => 8,
            Instr::TailCall { .. } => 9,
            Instr::Return => 10,
            Instr::Jump(_) => 11,
            Instr::JumpIfFalse(_) => 12,
            Instr::Prim { .. } => 13,
            Instr::LocalPush(_) => 14,
            Instr::ConstPush(_) => 15,
            Instr::LocalPrim { .. } => 16,
            Instr::ConstPrim { .. } => 17,
            Instr::PrimBranch { .. } => 18,
        }
    }
}

/// Opcode names indexed by [`Instr::opcode`] — the `op` label values of
/// the `t4o_vm_dispatch_total` counter family.
pub const OP_NAMES: [&str; Instr::N_OPS] = [
    "const",
    "global",
    "local",
    "captured",
    "push",
    "bind",
    "trim",
    "make-closure",
    "call",
    "tail-call",
    "return",
    "jump",
    "jump-if-false",
    "prim",
    "local-push",
    "const-push",
    "local-prim",
    "const-prim",
    "prim-branch",
];

/// A code object: instructions plus the constant, global, and sub-template
/// tables (Scheme 48 keeps these in the template too).
pub struct Template {
    /// Name for diagnostics and disassembly.
    pub name: Symbol,
    /// Number of parameters.
    pub arity: u8,
    /// Number of captured free variables the closure must carry.
    pub nfree: u16,
    /// The code.
    pub code: Vec<Instr>,
    /// Constant table (as data; converted to values at load time).
    pub consts: Vec<Datum>,
    /// Global-name table.
    pub globals: Vec<Symbol>,
    /// Sub-templates for nested lambdas.
    pub templates: Vec<Arc<Template>>,
}

impl fmt::Debug for Template {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#<template {} arity={}>", self.name, self.arity)
    }
}

impl PartialEq for Template {
    /// Structural equality on code and tables — used by the fusion
    /// equivalence tests (compiled residual source vs. directly generated
    /// object code).
    fn eq(&self, other: &Self) -> bool {
        self.arity == other.arity
            && self.nfree == other.nfree
            && self.code == other.code
            && self.consts == other.consts
            && self.globals == other.globals
            && self.templates == other.templates
    }
}

impl Template {
    /// Total instruction count including sub-templates.
    pub fn code_size(&self) -> usize {
        self.code.len() + self.templates.iter().map(|t| t.code_size()).sum::<usize>()
    }

    /// Renders a human-readable listing of this template and its children.
    pub fn disassemble(&self) -> String {
        let mut out = String::new();
        self.dis_into(&mut out, 0);
        out
    }

    fn dis_into(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        out.push_str(&format!(
            "{pad}template {} (arity {}, {} free)\n",
            self.name, self.arity, self.nfree
        ));
        for (i, ins) in self.code.iter().enumerate() {
            let text = match ins {
                Instr::Const(k) => format!("const {}", self.consts[*k as usize]),
                Instr::Global(g) => format!("global {}", self.globals[*g as usize]),
                Instr::Local(i) => format!("local {i}"),
                Instr::Captured(i) => format!("captured {i}"),
                Instr::Push => "push".into(),
                Instr::Bind => "bind".into(),
                Instr::Trim(n) => format!("trim {n}"),
                Instr::MakeClosure { template, nfree } => {
                    format!(
                        "make-closure {} ({} free)",
                        self.templates[*template as usize].name, nfree
                    )
                }
                Instr::Call { nargs } => format!("call {nargs}"),
                Instr::TailCall { nargs } => format!("tail-call {nargs}"),
                Instr::Return => "return".into(),
                Instr::Jump(t) => format!("jump {t}"),
                Instr::JumpIfFalse(t) => format!("jump-if-false {t}"),
                Instr::Prim { prim, nargs } => format!("prim {prim}/{nargs}"),
                Instr::LocalPush(i) => format!("local-push {i}"),
                Instr::ConstPush(k) => format!("const-push {}", self.consts[*k as usize]),
                Instr::LocalPrim { local, prim, nargs } => {
                    format!("local-prim {local} {prim}/{nargs}")
                }
                Instr::ConstPrim { konst, prim, nargs } => {
                    format!("const-prim {} {prim}/{nargs}", self.consts[*konst as usize])
                }
                Instr::PrimBranch {
                    prim,
                    nargs,
                    target,
                } => format!("prim-branch {prim}/{nargs} {target}"),
            };
            out.push_str(&format!("{pad}  {i:4}  {text}\n"));
        }
        for t in &self.templates {
            t.dis_into(out, indent + 1);
        }
    }
}

/// A closure: a template plus the values of its free variables.
pub struct Closure {
    /// The code.
    pub template: Arc<Template>,
    /// Captured values (flat closure representation).
    pub captured: Vec<Value>,
}

/// Procedure representation of the VM.
#[derive(Clone)]
pub struct Proc(pub Arc<Closure>);

impl ProcRepr for Proc {
    fn ptr_eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }

    fn describe(&self) -> String {
        self.0.template.name.to_string()
    }
}

/// VM values.
pub type Value = two4one_syntax::value::Value<Proc>;

/// A linked program: named templates plus an entry point.
///
/// Loading an image into a [`Machine`] instantiates every top-level
/// template as a zero-capture closure in the global table.
#[derive(Debug)]
pub struct Image {
    /// Top-level templates, in definition order (entry first for residual
    /// programs).
    pub templates: Vec<(Symbol, Arc<Template>)>,
    /// Name of the entry definition.
    pub entry: Symbol,
}

impl Image {
    /// Looks up a template by name.
    pub fn template(&self, name: &Symbol) -> Option<&Arc<Template>> {
        self.templates
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, t)| t)
    }

    /// Total code size in instructions.
    pub fn code_size(&self) -> usize {
        self.templates.iter().map(|(_, t)| t.code_size()).sum()
    }

    /// Disassembles the whole image.
    pub fn disassemble(&self) -> String {
        let mut s = String::new();
        for (name, t) in &self.templates {
            s.push_str(&format!(";; {name}\n"));
            s.push_str(&t.disassemble());
            s.push('\n');
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn template_debug_and_eq() {
        let t1 = Template {
            name: Symbol::new("f"),
            arity: 1,
            nfree: 0,
            code: vec![Instr::Local(0), Instr::Return],
            consts: vec![],
            globals: vec![],
            templates: vec![],
        };
        let t2 = Template {
            name: Symbol::new("other-name"),
            arity: 1,
            nfree: 0,
            code: vec![Instr::Local(0), Instr::Return],
            consts: vec![],
            globals: vec![],
            templates: vec![],
        };
        // Equality ignores names (gensym counters may differ).
        assert_eq!(t1, t2);
        assert!(format!("{t1:?}").contains("template"));
        assert_eq!(t1.code_size(), 2);
        assert!(t1.disassemble().contains("local 0"));
    }
}
