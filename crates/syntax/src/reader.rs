//! The s-expression reader: source text → [`Datum`].
//!
//! Supports the syntax the paper's system consumes: proper and dotted lists,
//! exact integers, booleans (`#t`/`#f`), characters (`#\c`, `#\space`,
//! `#\newline`, `#\tab`), strings with escapes, `'`/`` ` ``/`,`/`,@` sugar,
//! line comments (`;`), nested block comments (`#| ... |#`), and datum
//! comments (`#;`).

use crate::datum::Datum;
use crate::limits::{LimitExceeded, LimitKind, Limits};
use crate::symbol::Symbol;
use std::fmt;

/// Position in the source text (1-based line and column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pos {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Errors produced by the reader.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadError {
    /// What went wrong.
    pub kind: ReadErrorKind,
    /// Where it went wrong.
    pub pos: Pos,
}

/// The specific reader failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReadErrorKind {
    /// Input ended inside a datum.
    UnexpectedEof,
    /// A `)` with no matching `(`.
    UnbalancedClose,
    /// `.` used outside a dotted-pair position.
    MisplacedDot,
    /// A `#...` sequence the reader does not know.
    BadHash(String),
    /// A string literal ended without a closing quote.
    UnterminatedString,
    /// An unknown string escape like `\q`.
    BadEscape(char),
    /// An integer literal out of `i64` range.
    IntOverflow(String),
    /// Leftover text after the requested single datum.
    TrailingData,
    /// A resource cap was hit ([`Limits::input_node_cap`] /
    /// [`Limits::input_depth_cap`]).
    Limit(LimitExceeded),
}

impl fmt::Display for ReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match &self.kind {
            ReadErrorKind::UnexpectedEof => "unexpected end of input".to_string(),
            ReadErrorKind::UnbalancedClose => "unbalanced `)`".to_string(),
            ReadErrorKind::MisplacedDot => "misplaced `.`".to_string(),
            ReadErrorKind::BadHash(s) => format!("unknown `#` syntax `#{s}`"),
            ReadErrorKind::UnterminatedString => "unterminated string literal".to_string(),
            ReadErrorKind::BadEscape(c) => format!("unknown string escape `\\{c}`"),
            ReadErrorKind::IntOverflow(s) => format!("integer literal `{s}` overflows"),
            ReadErrorKind::TrailingData => "trailing data after datum".to_string(),
            ReadErrorKind::Limit(l) => l.to_string(),
        };
        write!(f, "read error at {}: {}", self.pos, msg)
    }
}

impl std::error::Error for ReadError {}

/// Reads every datum in `src`.
///
/// # Errors
///
/// Returns a [`ReadError`] on malformed input.
///
/// # Example
///
/// ```
/// use two4one_syntax::reader::read_all;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let ds = read_all("(a b) 42 ; comment\n'x")?;
/// assert_eq!(ds.len(), 3);
/// assert_eq!(ds[2].to_string(), "'x");
/// # Ok(())
/// # }
/// ```
pub fn read_all(src: &str) -> Result<Vec<Datum>, ReadError> {
    read_all_with(src, &Limits::none())
}

/// Like [`read_all`], but enforcing the reader caps of `limits`
/// ([`Limits::input_node_cap`] and [`Limits::input_depth_cap`]) so
/// adversarial input cannot exhaust memory or the Rust stack.
///
/// # Errors
///
/// Returns a [`ReadError`] on malformed or over-limit input.
pub fn read_all_with(src: &str, limits: &Limits) -> Result<Vec<Datum>, ReadError> {
    let mut r = Reader::new(src, limits);
    let mut out = Vec::new();
    loop {
        r.skip_atmosphere()?;
        if r.at_eof() {
            return Ok(out);
        }
        out.push(r.read_datum()?);
    }
}

/// Reads exactly one datum; trailing non-whitespace is an error.
///
/// # Errors
///
/// Returns a [`ReadError`] on malformed input or trailing data.
pub fn read_one(src: &str) -> Result<Datum, ReadError> {
    read_one_with(src, &Limits::none())
}

/// Like [`read_one`], but enforcing the reader caps of `limits`.
///
/// # Errors
///
/// Returns a [`ReadError`] on malformed, trailing, or over-limit input.
pub fn read_one_with(src: &str, limits: &Limits) -> Result<Datum, ReadError> {
    let mut r = Reader::new(src, limits);
    r.skip_atmosphere()?;
    let d = r.read_datum()?;
    r.skip_atmosphere()?;
    if r.at_eof() {
        Ok(d)
    } else {
        Err(r.err(ReadErrorKind::TrailingData))
    }
}

struct Reader<'a> {
    chars: Vec<char>,
    src: &'a str,
    idx: usize,
    line: u32,
    col: u32,
    /// Datum nodes constructed so far.
    nodes: usize,
    /// Current recursion depth of `read_datum`.
    depth: usize,
    node_cap: Option<usize>,
    depth_cap: Option<usize>,
}

impl<'a> Reader<'a> {
    fn new(src: &'a str, limits: &Limits) -> Self {
        Reader {
            chars: src.chars().collect(),
            src,
            idx: 0,
            line: 1,
            col: 1,
            nodes: 0,
            depth: 0,
            node_cap: limits.input_node_cap,
            depth_cap: limits.input_depth_cap,
        }
    }

    fn pos(&self) -> Pos {
        Pos {
            line: self.line,
            col: self.col,
        }
    }

    fn err(&self, kind: ReadErrorKind) -> ReadError {
        ReadError {
            kind,
            pos: self.pos(),
        }
    }

    fn at_eof(&self) -> bool {
        self.idx >= self.chars.len()
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.idx).copied()
    }

    fn peek2(&self) -> Option<char> {
        self.chars.get(self.idx + 1).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.idx += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    /// Skips whitespace and all comment forms.
    fn skip_atmosphere(&mut self) -> Result<(), ReadError> {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some(';') => {
                    while let Some(c) = self.bump() {
                        if c == '\n' {
                            break;
                        }
                    }
                }
                Some('#') if self.peek2() == Some('|') => {
                    self.bump();
                    self.bump();
                    let mut depth = 1usize;
                    loop {
                        match (self.peek(), self.peek2()) {
                            (Some('|'), Some('#')) => {
                                self.bump();
                                self.bump();
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            (Some('#'), Some('|')) => {
                                self.bump();
                                self.bump();
                                depth += 1;
                            }
                            (Some(_), _) => {
                                self.bump();
                            }
                            (None, _) => return Err(self.err(ReadErrorKind::UnexpectedEof)),
                        }
                    }
                }
                Some('#') if self.peek2() == Some(';') => {
                    self.bump();
                    self.bump();
                    self.skip_atmosphere()?;
                    // Read and discard one datum.
                    self.read_datum()?;
                }
                _ => return Ok(()),
            }
        }
    }

    /// Guarded entry: accounts one node and one nesting level, then
    /// dispatches. All recursive descent goes through here, so the caps
    /// bound both total allocation and Rust stack depth.
    fn read_datum(&mut self) -> Result<Datum, ReadError> {
        self.nodes += 1;
        if let Some(cap) = self.node_cap {
            if self.nodes > cap {
                return Err(self.err(ReadErrorKind::Limit(LimitExceeded::new(
                    LimitKind::InputNodes,
                    cap as u64,
                ))));
            }
        }
        self.depth += 1;
        if let Some(cap) = self.depth_cap {
            if self.depth > cap {
                return Err(self.err(ReadErrorKind::Limit(LimitExceeded::new(
                    LimitKind::InputDepth,
                    cap as u64,
                ))));
            }
        }
        let d = self.read_datum_inner();
        self.depth -= 1;
        d
    }

    fn read_datum_inner(&mut self) -> Result<Datum, ReadError> {
        self.skip_atmosphere()?;
        let c = self
            .peek()
            .ok_or_else(|| self.err(ReadErrorKind::UnexpectedEof))?;
        match c {
            '(' | '[' => {
                self.bump();
                self.read_list(if c == '(' { ')' } else { ']' })
            }
            ')' | ']' => Err(self.err(ReadErrorKind::UnbalancedClose)),
            '\'' => {
                self.bump();
                let d = self.read_datum()?;
                Ok(Datum::list([Datum::sym("quote"), d]))
            }
            '`' => {
                self.bump();
                let d = self.read_datum()?;
                Ok(Datum::list([Datum::sym("quasiquote"), d]))
            }
            ',' => {
                self.bump();
                if self.peek() == Some('@') {
                    self.bump();
                    let d = self.read_datum()?;
                    Ok(Datum::list([Datum::sym("unquote-splicing"), d]))
                } else {
                    let d = self.read_datum()?;
                    Ok(Datum::list([Datum::sym("unquote"), d]))
                }
            }
            '"' => self.read_string(),
            '#' => self.read_hash(),
            _ => self.read_atom(),
        }
    }

    fn read_list(&mut self, close: char) -> Result<Datum, ReadError> {
        let mut items: Vec<Datum> = Vec::new();
        let mut tail = Datum::Nil;
        loop {
            self.skip_atmosphere()?;
            match self.peek() {
                None => return Err(self.err(ReadErrorKind::UnexpectedEof)),
                Some(c) if c == close => {
                    self.bump();
                    break;
                }
                Some(')') | Some(']') => return Err(self.err(ReadErrorKind::UnbalancedClose)),
                Some('.') if self.dot_is_standalone() => {
                    if items.is_empty() {
                        return Err(self.err(ReadErrorKind::MisplacedDot));
                    }
                    self.bump();
                    tail = self.read_datum()?;
                    self.skip_atmosphere()?;
                    match self.peek() {
                        Some(c) if c == close => {
                            self.bump();
                            break;
                        }
                        _ => return Err(self.err(ReadErrorKind::MisplacedDot)),
                    }
                }
                Some(_) => items.push(self.read_datum()?),
            }
        }
        Ok(items
            .into_iter()
            .rev()
            .fold(tail, |acc, d| Datum::cons(d, acc)))
    }

    fn dot_is_standalone(&self) -> bool {
        match self.peek2() {
            None => true,
            Some(c) => {
                c.is_whitespace() || c == '(' || c == ')' || c == '[' || c == ']' || c == ';'
            }
        }
    }

    fn read_string(&mut self) -> Result<Datum, ReadError> {
        self.bump(); // opening quote
        let mut s = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err(ReadErrorKind::UnterminatedString)),
                Some('"') => return Ok(Datum::string(&s)),
                Some('\\') => match self.bump() {
                    None => return Err(self.err(ReadErrorKind::UnterminatedString)),
                    Some('n') => s.push('\n'),
                    Some('t') => s.push('\t'),
                    Some('\\') => s.push('\\'),
                    Some('"') => s.push('"'),
                    Some(c) => return Err(self.err(ReadErrorKind::BadEscape(c))),
                },
                Some(c) => s.push(c),
            }
        }
    }

    fn read_hash(&mut self) -> Result<Datum, ReadError> {
        self.bump(); // '#'
        match self.peek() {
            Some('t') => {
                self.bump();
                Ok(Datum::Bool(true))
            }
            Some('f') => {
                self.bump();
                Ok(Datum::Bool(false))
            }
            Some('\\') => {
                self.bump();
                // Named characters or a single char.
                let mut name = String::new();
                match self.bump() {
                    None => return Err(self.err(ReadErrorKind::UnexpectedEof)),
                    Some(c) => name.push(c),
                }
                while let Some(c) = self.peek() {
                    if c.is_alphanumeric() || c == '-' {
                        name.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
                let c = match name.as_str() {
                    "space" => ' ',
                    "newline" => '\n',
                    "tab" => '\t',
                    s => {
                        let mut cs = s.chars();
                        match (cs.next(), cs.next()) {
                            (Some(c), None) => c,
                            _ => return Err(self.err(ReadErrorKind::BadHash(format!("\\{s}")))),
                        }
                    }
                };
                Ok(Datum::Char(c))
            }
            Some(c) => Err(self.err(ReadErrorKind::BadHash(c.to_string()))),
            None => Err(self.err(ReadErrorKind::UnexpectedEof)),
        }
    }

    fn read_atom(&mut self) -> Result<Datum, ReadError> {
        let start = self.idx;
        while let Some(c) = self.peek() {
            if c.is_whitespace() || "()[];\"'`,".contains(c) {
                break;
            }
            self.bump();
        }
        let text: String = self.chars[start..self.idx].iter().collect();
        debug_assert!(!text.is_empty(), "atom at {} in {:?}", start, self.src);
        // Integer?
        let looks_numeric = {
            let mut cs = text.chars();
            match cs.next() {
                Some('+') | Some('-') => cs.clone().next().is_some_and(|c| c.is_ascii_digit()),
                Some(c) => c.is_ascii_digit(),
                None => false,
            }
        };
        if looks_numeric {
            return text
                .parse::<i64>()
                .map(Datum::Int)
                .map_err(|_| self.err(ReadErrorKind::IntOverflow(text.clone())));
        }
        Ok(Datum::Sym(Symbol::new(&text)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok(src: &str) -> Datum {
        read_one(src).expect("read")
    }

    #[test]
    fn atoms() {
        assert_eq!(ok("42"), Datum::Int(42));
        assert_eq!(ok("-7"), Datum::Int(-7));
        assert_eq!(ok("+7"), Datum::Int(7));
        assert_eq!(ok("#t"), Datum::Bool(true));
        assert_eq!(ok("#f"), Datum::Bool(false));
        assert_eq!(ok("foo"), Datum::sym("foo"));
        assert_eq!(ok("+"), Datum::sym("+"));
        assert_eq!(ok("-"), Datum::sym("-"));
        assert_eq!(ok("list->vector"), Datum::sym("list->vector"));
        assert_eq!(ok("#\\a"), Datum::Char('a'));
        assert_eq!(ok("#\\space"), Datum::Char(' '));
        assert_eq!(ok("#\\newline"), Datum::Char('\n'));
        assert_eq!(ok("\"hi\\n\""), Datum::string("hi\n"));
    }

    #[test]
    fn lists_and_dots() {
        assert_eq!(ok("()"), Datum::Nil);
        assert_eq!(ok("(1 2 3)").list_len(), Some(3));
        assert_eq!(ok("(1 . 2)"), Datum::cons(Datum::Int(1), Datum::Int(2)));
        assert_eq!(
            ok("(1 2 . 3)"),
            Datum::cons(Datum::Int(1), Datum::cons(Datum::Int(2), Datum::Int(3)))
        );
        assert_eq!(ok("[a b]").list_len(), Some(2));
    }

    #[test]
    fn sugar() {
        assert_eq!(ok("'x").to_string(), "'x");
        assert_eq!(ok("`(a ,b ,@c)").to_string(), "`(a ,b ,@c)");
    }

    #[test]
    fn comments() {
        assert_eq!(ok("; hi\n 42"), Datum::Int(42));
        assert_eq!(ok("#| block #| nested |# |# 42"), Datum::Int(42));
        assert_eq!(ok("#;(ignored me) 42"), Datum::Int(42));
        let all = read_all("1 ; c\n2").unwrap();
        assert_eq!(all.len(), 2);
    }

    #[test]
    fn errors_have_positions() {
        let e = read_one("(1 2").unwrap_err();
        assert_eq!(e.kind, ReadErrorKind::UnexpectedEof);
        let e = read_one(")").unwrap_err();
        assert_eq!(e.kind, ReadErrorKind::UnbalancedClose);
        let e = read_one("(. 2)").unwrap_err();
        assert_eq!(e.kind, ReadErrorKind::MisplacedDot);
        let e = read_one("\"abc").unwrap_err();
        assert_eq!(e.kind, ReadErrorKind::UnterminatedString);
        let e = read_one("99999999999999999999").unwrap_err();
        assert!(matches!(e.kind, ReadErrorKind::IntOverflow(_)));
        let e = read_one("1 2").unwrap_err();
        assert_eq!(e.kind, ReadErrorKind::TrailingData);
        let e = read_one("(a\nb").unwrap_err();
        assert_eq!(e.pos.line, 2);
    }

    #[test]
    fn node_cap_stops_large_input() {
        let src = "(1 2 3 4 5 6 7 8 9 10)";
        assert!(read_one_with(src, &Limits::none().with_input_node_cap(1000)).is_ok());
        let e = read_one_with(src, &Limits::none().with_input_node_cap(4)).unwrap_err();
        match e.kind {
            ReadErrorKind::Limit(l) => assert_eq!(l.kind, LimitKind::InputNodes),
            k => panic!("expected node-cap limit, got {k:?}"),
        }
    }

    #[test]
    fn depth_cap_stops_deep_nesting() {
        let deep = format!("{}42{}", "(".repeat(200), ")".repeat(200));
        assert!(read_one_with(&deep, &Limits::none().with_input_depth_cap(1000)).is_ok());
        let e = read_one_with(&deep, &Limits::none().with_input_depth_cap(50)).unwrap_err();
        match e.kind {
            ReadErrorKind::Limit(l) => assert_eq!(l.kind, LimitKind::InputDepth),
            k => panic!("expected depth-cap limit, got {k:?}"),
        }
        // Flat width is not depth: a long flat list passes a small depth cap.
        let flat = format!("({})", "x ".repeat(200));
        assert!(read_one_with(&flat, &Limits::none().with_input_depth_cap(50)).is_ok());
    }

    #[test]
    fn dot_in_symbols_is_fine() {
        assert_eq!(ok("a.b"), Datum::sym("a.b"));
        assert_eq!(ok("..."), Datum::sym("..."));
    }

    #[test]
    fn roundtrip_display_then_read() {
        for src in [
            "(define (f x) (+ x 1))",
            "'(1 #t #\\a \"s\" (nested . pair))",
            "`(a ,(+ 1 2) ,@xs)",
        ] {
            let d = ok(src);
            let d2 = ok(&d.to_string());
            assert_eq!(d, d2, "roundtrip failed for {src}");
        }
    }
}
