//! Grammar matching at the three execution tiers: how fast does each
//! configuration push characters through a recognizer?
//!
//! The subjects are the adversarial grammars of the grammar workload
//! family — inputs chosen to hurt: a long run that fails only at the very
//! last character (`long-prefix`), a 10-way decision chain taken on every
//! character (`deep-alt`), and interleaved star loops (`star-nest`). For
//! each, three rows:
//!
//! * `interp/…` — the matcher interpreter walking `(grammar, input)`
//!   directly (tier-0 semantics, no compilation at all);
//! * `generic/…` — the interpreter *generically* compiled to bytecode,
//!   grammar still walked at run time (what tier-0 serving executes);
//! * `spec/…` — the residual recognizer: the interpreter specialized
//!   over the grammar, peephole-optimized, one residual function per
//!   nonterminal (what promotion installs).
//!
//! Results (median seconds per match of a ~2048-character input) land in
//! `BENCH_match.json`; the figure in EXPERIMENTS.md reports chars/s. The
//! CI floor: the specialized recognizer must beat the interpreted matcher
//! by at least 5x on every adversarial input — that factor is the whole
//! point of the subsystem, so losing it is a regression, not noise.

use std::hint::black_box;
use two4one::{
    compile, interpret, optimize_image, run_image, with_stack, Datum, Division, Pgg, BT,
};
use two4one_bench::harness::{self, Criterion};
use two4one_bench::{criterion_group, criterion_main};
use two4one_langs::grammar;

fn bench_match(c: &mut Criterion) {
    let mut group = c.benchmark_group("match");
    group.sample_size(10);

    let pgg = grammar::grammar_policies()
        .iter()
        .fold(Pgg::new(), |p, (name, pol)| p.policy(name, *pol));

    let mut chars: Vec<(String, usize)> = Vec::new();
    for (name, text, accept, reject) in grammar::adversarial_suite() {
        let g = grammar::parse(text).expect("adversarial grammar");
        let src = grammar::workload_source(&g);
        let parsed = pgg.parse(&src).expect("workload parses");
        // The reject input is the adversarial one (it forces the longest
        // walk before failing); its length is the figure's denominator.
        let input = grammar::input_datum(&reject);
        chars.push((name.to_string(), reject.len()));

        // Sanity: all three tiers agree before any of them is timed.
        let accept_d = grammar::input_datum(&accept);
        let generic = compile(&parsed, grammar::WORKLOAD_ENTRY).expect("generic compile");
        let specialized = with_stack({
            let src = src.clone();
            let pgg = pgg.clone();
            move || {
                let genext = pgg
                    .cogen(
                        &pgg.parse(&src).expect("reparse"),
                        grammar::WORKLOAD_ENTRY,
                        &Division::new([BT::Dynamic]),
                    )
                    .expect("cogen");
                optimize_image(&genext.specialize_object(&[]).expect("specialize"))
            }
        });
        for (w, expect) in [(&accept_d, true), (&input, false)] {
            let base = interpret(&parsed, grammar::WORKLOAD_ENTRY, std::slice::from_ref(w))
                .expect("interpret")
                .value;
            assert_eq!(base, Datum::Bool(expect), "{name}");
            for img in [&generic, &specialized] {
                let got = run_image(img, grammar::WORKLOAD_ENTRY, std::slice::from_ref(w))
                    .expect("run")
                    .value;
                assert_eq!(got, base, "{name}");
            }
        }

        // Row 1: the matcher interpreter itself.
        {
            let parsed = parsed.clone();
            let input = input.clone();
            group.bench_function(format!("interp/{name}"), move |b| {
                b.iter(|| {
                    black_box(
                        interpret(
                            &parsed,
                            grammar::WORKLOAD_ENTRY,
                            std::slice::from_ref(&input),
                        )
                        .expect("interpret")
                        .value,
                    )
                })
            });
        }

        // Row 2: the generically compiled interpreter (tier-0 serving).
        {
            let input = input.clone();
            group.bench_function(format!("generic/{name}"), move |b| {
                b.iter(|| {
                    black_box(
                        run_image(
                            &generic,
                            grammar::WORKLOAD_ENTRY,
                            std::slice::from_ref(&input),
                        )
                        .expect("run generic")
                        .value,
                    )
                })
            });
        }

        // Row 3: the residual recognizer (what promotion installs).
        {
            let input = input.clone();
            group.bench_function(format!("spec/{name}"), move |b| {
                b.iter(|| {
                    black_box(
                        run_image(
                            &specialized,
                            grammar::WORKLOAD_ENTRY,
                            std::slice::from_ref(&input),
                        )
                        .expect("run specialized")
                        .value,
                    )
                })
            });
        }
    }

    report(&group, &chars);
}

/// Prints the chars/s figure and enforces the speedup floor.
fn report(group: &harness::Group, chars: &[(String, usize)]) {
    let median = |id: &str| -> f64 {
        group
            .results()
            .iter()
            .find(|r| r.id == id)
            .map(|r| r.median.as_secs_f64())
            .unwrap_or_else(|| panic!("missing row {id}"))
    };
    println!("  grammar matching, adversarial inputs (chars/s, higher is better):");
    println!(
        "    {:<12} {:>12} {:>12} {:>12} {:>9}",
        "grammar", "interp", "generic", "spec", "speedup"
    );
    for (name, n) in chars {
        let interp = median(&format!("interp/{name}"));
        let generic = median(&format!("generic/{name}"));
        let spec = median(&format!("spec/{name}"));
        let rate = |secs: f64| *n as f64 / secs;
        println!(
            "    {:<12} {:>12.0} {:>12.0} {:>12.0} {:>8.1}x",
            name,
            rate(interp),
            rate(generic),
            rate(spec),
            interp / spec
        );
    }

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_match.json");
    harness::write_json(path, group).expect("write BENCH_match.json");
    println!("  wrote BENCH_match.json");

    // The floor: specialization must be worth at least 5x over the
    // interpreted matcher on every adversarial input. The usual margin is
    // far larger (the whole grammar walk and decision-set scan are gone),
    // so 5x holds even at `T4O_BENCH_SAMPLES=1` on loaded CI hardware.
    for (name, _) in chars {
        let interp = median(&format!("interp/{name}"));
        let spec = median(&format!("spec/{name}"));
        assert!(
            interp >= spec * 5.0,
            "specialized recognizer only {:.1}x faster than interpreted on {name}",
            interp / spec
        );
    }
}

criterion_group!(benches, bench_match);
criterion_main!(benches);
