//! Per-tenant auth tokens and fair-share quotas.
//!
//! The tenants file is a whitespace-separated table, one tenant per line
//! (`#` comments and blank lines ignored):
//!
//! ```text
//! # token        tenant   quota
//! sekrit-alpha   alpha    4
//! sekrit-beta    beta     2
//! ```
//!
//! `quota` is the tenant's fair share of concurrent requests: a tenant
//! with quota *q* can have at most *q* requests inside the server at
//! once. Exceeding it is answered with the same `Overloaded`/429 +
//! `Retry-After` shape as the global admission gate — the tenant layer
//! sits *in front of* the gate, so one noisy tenant exhausts its own
//! share and bounces off before it can monopolize the shared queue.
//!
//! When no tenants file is configured the server runs in open mode and
//! skips this layer entirely.

use std::collections::HashMap;
use std::fmt;
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// One configured tenant.
#[derive(Debug)]
pub struct Tenant {
    /// Tenant name (for stats and logs; never the secret).
    pub name: Arc<str>,
    /// Maximum concurrent requests.
    pub quota: usize,
    inflight: AtomicUsize,
    admitted: AtomicU64,
    rejected: AtomicU64,
}

impl Tenant {
    /// Requests currently inside the server for this tenant.
    pub fn inflight(&self) -> usize {
        self.inflight.load(Ordering::Acquire)
    }

    /// Requests admitted so far.
    pub fn admitted(&self) -> u64 {
        self.admitted.load(Ordering::Relaxed)
    }

    /// Requests bounced off the quota so far.
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }
}

/// Why a tenants file failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TenantError {
    /// A line did not have the three `token name quota` columns.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        what: &'static str,
    },
    /// Two lines declared the same token.
    DuplicateToken {
        /// 1-based line number of the duplicate.
        line: usize,
    },
}

impl fmt::Display for TenantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TenantError::BadLine { line, what } => {
                write!(f, "tenants file line {line}: {what}")
            }
            TenantError::DuplicateToken { line } => {
                write!(f, "tenants file line {line}: duplicate token")
            }
        }
    }
}

impl std::error::Error for TenantError {}

/// Why a request was denied at the tenant layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TenantDenied {
    /// The presented token matches no tenant (or is empty while a
    /// tenants table is configured).
    UnknownToken,
    /// The tenant is at its concurrent-request quota.
    OverQuota {
        /// The tenant's name.
        name: Arc<str>,
        /// Backoff hint, scaled by how far over fair share it is.
        retry_after_ms: u64,
    },
}

/// The token → tenant table, with live inflight accounting.
#[derive(Debug, Default)]
pub struct TenantTable {
    tenants: Vec<Arc<Tenant>>,
    by_token: HashMap<String, usize>,
}

impl TenantTable {
    /// Parses the table from its text form.
    ///
    /// # Errors
    ///
    /// [`TenantError`] naming the offending line.
    pub fn parse(text: &str) -> Result<TenantTable, TenantError> {
        let mut table = TenantTable::default();
        for (i, raw) in text.lines().enumerate() {
            let line = i + 1;
            let cleaned = raw.split('#').next().unwrap_or("").trim();
            if cleaned.is_empty() {
                continue;
            }
            let mut cols = cleaned.split_whitespace();
            let (token, name, quota) = match (cols.next(), cols.next(), cols.next()) {
                (Some(t), Some(n), Some(q)) => (t, n, q),
                _ => {
                    return Err(TenantError::BadLine {
                        line,
                        what: "expected `token name quota`",
                    })
                }
            };
            if cols.next().is_some() {
                return Err(TenantError::BadLine {
                    line,
                    what: "unexpected extra column",
                });
            }
            let quota: usize = match quota.parse() {
                Ok(q) if q > 0 => q,
                _ => {
                    return Err(TenantError::BadLine {
                        line,
                        what: "quota must be a positive integer",
                    })
                }
            };
            if table.by_token.contains_key(token) {
                return Err(TenantError::DuplicateToken { line });
            }
            table
                .by_token
                .insert(token.to_string(), table.tenants.len());
            table.tenants.push(Arc::new(Tenant {
                name: Arc::from(name),
                quota,
                inflight: AtomicUsize::new(0),
                admitted: AtomicU64::new(0),
                rejected: AtomicU64::new(0),
            }));
        }
        Ok(table)
    }

    /// Reads and parses a tenants file.
    ///
    /// # Errors
    ///
    /// I/O failures as `Err(Ok(_))`-free `io::Error`; parse failures as a
    /// rendered message in `InvalidData`.
    pub fn load(path: impl AsRef<Path>) -> std::io::Result<TenantTable> {
        let text = std::fs::read_to_string(path)?;
        TenantTable::parse(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Number of configured tenants.
    pub fn len(&self) -> usize {
        self.tenants.len()
    }

    /// True when no tenants are configured.
    pub fn is_empty(&self) -> bool {
        self.tenants.is_empty()
    }

    /// The tenants, in file order.
    pub fn tenants(&self) -> &[Arc<Tenant>] {
        &self.tenants
    }

    /// Admits one request for the tenant owning `token`. The returned
    /// guard holds the quota slot and releases it on drop.
    ///
    /// # Errors
    ///
    /// [`TenantDenied::UnknownToken`] for unrecognized tokens,
    /// [`TenantDenied::OverQuota`] when the tenant is at its share.
    pub fn admit(&self, token: &str) -> Result<TenantGuard, TenantDenied> {
        let tenant = self
            .by_token
            .get(token)
            .and_then(|i| self.tenants.get(*i))
            .ok_or(TenantDenied::UnknownToken)?;
        // Optimistic increment with a bounded retry loop: the slot is
        // taken only if the tenant is under quota.
        loop {
            let cur = tenant.inflight.load(Ordering::Acquire);
            if cur >= tenant.quota {
                tenant.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(TenantDenied::OverQuota {
                    name: tenant.name.clone(),
                    retry_after_ms: 10 * (cur as u64 + 1),
                });
            }
            if tenant
                .inflight
                .compare_exchange(cur, cur + 1, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                tenant.admitted.fetch_add(1, Ordering::Relaxed);
                return Ok(TenantGuard {
                    tenant: tenant.clone(),
                });
            }
        }
    }
}

/// RAII quota slot: releases the tenant's inflight count on drop, so a
/// panicking or error-returning request path can never leak a slot.
#[derive(Debug)]
pub struct TenantGuard {
    tenant: Arc<Tenant>,
}

impl TenantGuard {
    /// The owning tenant's name.
    pub fn name(&self) -> &Arc<str> {
        &self.tenant.name
    }
}

impl Drop for TenantGuard {
    fn drop(&mut self) {
        // Saturating: a stray double-drop must not wrap the counter into
        // a permanently-open quota.
        let _ = self
            .tenant
            .inflight
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |v| v.checked_sub(1));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TABLE: &str = "
# token  name  quota
tok-a    alpha 2
tok-b    beta  1   # inline comment
";

    #[test]
    fn parses_comments_and_blank_lines() {
        let t = TenantTable::parse(TABLE).expect("parse");
        assert_eq!(t.len(), 2);
        assert_eq!(t.tenants()[0].name.as_ref(), "alpha");
        assert_eq!(t.tenants()[1].quota, 1);
    }

    #[test]
    fn rejects_malformed_tables() {
        assert!(matches!(
            TenantTable::parse("just-a-token"),
            Err(TenantError::BadLine { line: 1, .. })
        ));
        assert!(matches!(
            TenantTable::parse("t n 0"),
            Err(TenantError::BadLine { .. })
        ));
        assert!(matches!(
            TenantTable::parse("t n 1 extra"),
            Err(TenantError::BadLine { .. })
        ));
        assert!(matches!(
            TenantTable::parse("t a 1\nt b 2"),
            Err(TenantError::DuplicateToken { line: 2 })
        ));
    }

    #[test]
    fn quota_admits_and_releases() {
        let t = TenantTable::parse(TABLE).expect("parse");
        let g1 = t.admit("tok-a").expect("first");
        let _g2 = t.admit("tok-a").expect("second");
        // Third concurrent request exceeds alpha's quota of 2.
        match t.admit("tok-a") {
            Err(TenantDenied::OverQuota {
                name,
                retry_after_ms,
            }) => {
                assert_eq!(name.as_ref(), "alpha");
                assert!(retry_after_ms > 0);
            }
            other => panic!("expected OverQuota, got {other:?}"),
        }
        // Dropping a guard frees the slot.
        drop(g1);
        assert!(t.admit("tok-a").is_ok());
        assert_eq!(t.tenants()[0].rejected(), 1);
        assert!(t.tenants()[0].admitted() >= 3);
    }

    #[test]
    fn unknown_tokens_are_denied() {
        let t = TenantTable::parse(TABLE).expect("parse");
        assert!(matches!(t.admit("nope"), Err(TenantDenied::UnknownToken)));
        assert!(matches!(t.admit(""), Err(TenantDenied::UnknownToken)));
    }
}
