//! The residual-code construction interface — the fusion seam of the paper.
//!
//! The specializer of Fig. 3 constructs residual code through a fixed
//! vocabulary of constructors (underlined in the paper): make a constant,
//! make a variable, wrap a serious computation in a `let`, build a residual
//! `if`, `lambda`, call, or primitive application. Sec. 6.3 implements that
//! vocabulary twice: once producing *source* syntax and once producing the
//! compiler's *code generation combinators*.
//!
//! [`CodeBuilder`] is that vocabulary as a trait. The specializer
//! (`two4one-pe`) is generic over it; instantiating with:
//!
//! * [`SourceBuilder`] yields the classical source-to-source partial
//!   evaluator (residual ANF syntax, printable as Scheme text);
//! * `ObjectBuilder` (in `two4one-compiler`) yields the *fused* system that
//!   emits byte code directly — the intermediate residual syntax tree is
//!   never constructed, which is precisely the deforestation result of
//!   Sec. 5.4, realized by monomorphization.
//!
//! The `free` parameter of [`CodeBuilder::lambda`] reifies the paper's
//! Sec. 6.4 observation: the compilator for lambdas needs the names of the
//! free variables of the residual body, which the specializer tracks.

use crate::{App, Def, Expr, Lambda, Program, Rhs, Triv};
use std::sync::Arc;
use two4one_syntax::datum::Datum;
use two4one_syntax::prim::Prim;
use two4one_syntax::symbol::Symbol;

/// Constructors for residual programs in A-normal form.
///
/// Every `Code` value is a complete expression *body*: it terminates in
/// [`ret`](CodeBuilder::ret) or [`tail`](CodeBuilder::tail) on every path.
/// `Triv` and `Serious` values are consumed exactly once.
pub trait CodeBuilder {
    /// Trivial residual terms (constants, variables, lambdas).
    type Triv: Clone;
    /// Serious residual terms (calls and primitive applications).
    type Serious;
    /// Residual expression bodies. `Clone` lets a consumer hold a branch
    /// of residual code in a resumable continuation frame (the gen-ext
    /// machine of `two4one-pe` snapshots such frames for fallback
    /// replay); both backends clone by refcount or small-tree copy.
    type Code: Clone;
    /// The finished residual program.
    type Program;

    /// A constant (the paper's `lift` lands here).
    fn const_(&mut self, d: &Datum) -> Self::Triv;

    /// A local (dynamic) variable.
    fn var(&mut self, x: &Symbol) -> Self::Triv;

    /// A reference to a top-level residual function used as a value.
    fn global(&mut self, x: &Symbol) -> Self::Triv;

    /// A residual lambda. `free` lists the free variables of `body` (minus
    /// `params`), which the object-code backend needs to build a flat
    /// closure; the source backend ignores it.
    fn lambda(
        &mut self,
        name: &Symbol,
        params: &[Symbol],
        free: &[Symbol],
        body: Self::Code,
    ) -> Self::Triv;

    /// A call to a computed procedure.
    fn call(&mut self, f: Self::Triv, args: Vec<Self::Triv>) -> Self::Serious;

    /// A call to a top-level residual function by name.
    fn call_global(&mut self, g: &Symbol, args: Vec<Self::Triv>) -> Self::Serious;

    /// A primitive application.
    fn prim(&mut self, p: Prim, args: Vec<Self::Triv>) -> Self::Serious;

    /// Terminates a body by returning a trivial value.
    fn ret(&mut self, t: Self::Triv) -> Self::Code;

    /// Terminates a body with a tail call / tail primitive.
    fn tail(&mut self, s: Self::Serious) -> Self::Code;

    /// `(let (x serious) body)` — the continuation-based specializer wraps
    /// every named serious computation this way (Fig. 3).
    fn let_serious(&mut self, x: &Symbol, rhs: Self::Serious, body: Self::Code) -> Self::Code;

    /// `(let (x triv) body)`.
    fn let_triv(&mut self, x: &Symbol, rhs: Self::Triv, body: Self::Code) -> Self::Code;

    /// A residual conditional with a trivial test; both branches are
    /// complete bodies (the specializer duplicates its continuation).
    fn if_(&mut self, t: Self::Triv, then: Self::Code, els: Self::Code) -> Self::Code;

    /// Adds a top-level residual definition.
    fn define(&mut self, name: &Symbol, params: &[Symbol], body: Self::Code);

    /// Finishes the program; `entry` names the main residual definition.
    fn finish(self, entry: &Symbol) -> Self::Program;

    /// A monotone measure of the residual code built so far, in
    /// backend-specific units (syntax nodes for the source backend,
    /// emitted instructions for the object backend). The specializer
    /// polls this to enforce [`Limits::code_cap`]
    /// (`two4one_syntax::limits::Limits`) — run-time code generation must
    /// not fill memory with residual code before anyone runs it.
    fn code_size(&self) -> usize;
}

/// The source backend: builds residual ANF syntax, printable as Scheme.
///
/// # Example
///
/// ```
/// use two4one_anf::build::{CodeBuilder, SourceBuilder};
/// use two4one_syntax::{Datum, Symbol};
///
/// let mut b = SourceBuilder::new();
/// let x = Symbol::new("x");
/// let one = b.const_(&Datum::Int(1));
/// let xv = b.var(&x);
/// let sum = b.prim(two4one_syntax::Prim::Add, vec![xv, one]);
/// let body = b.tail(sum);
/// b.define(&Symbol::new("inc"), &[x], body);
/// let prog = b.finish(&Symbol::new("inc"));
/// assert_eq!(prog.defs[0].body.to_string(), "(+ x 1)");
/// ```
#[derive(Debug, Default)]
pub struct SourceBuilder {
    defs: Vec<Def>,
    ops: usize,
}

impl SourceBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        SourceBuilder {
            defs: Vec::new(),
            ops: 0,
        }
    }

    fn count(&mut self) {
        self.ops += 1;
    }
}

impl CodeBuilder for SourceBuilder {
    type Triv = Triv;
    type Serious = App;
    type Code = Expr;
    type Program = Program;

    fn const_(&mut self, d: &Datum) -> Triv {
        self.count();
        Triv::Const(d.clone())
    }

    fn var(&mut self, x: &Symbol) -> Triv {
        self.count();
        Triv::Var(*x)
    }

    fn global(&mut self, x: &Symbol) -> Triv {
        self.count();
        Triv::Var(*x)
    }

    fn lambda(&mut self, name: &Symbol, params: &[Symbol], _free: &[Symbol], body: Expr) -> Triv {
        self.count();
        Triv::Lambda(Arc::new(Lambda {
            name: *name,
            params: params.to_vec(),
            body,
        }))
    }

    fn call(&mut self, f: Triv, args: Vec<Triv>) -> App {
        self.count();
        App::Call(f, args)
    }

    fn call_global(&mut self, g: &Symbol, args: Vec<Triv>) -> App {
        self.count();
        App::Call(Triv::Var(*g), args)
    }

    fn prim(&mut self, p: Prim, args: Vec<Triv>) -> App {
        self.count();
        App::Prim(p, args)
    }

    fn ret(&mut self, t: Triv) -> Expr {
        self.count();
        Expr::Ret(t)
    }

    fn tail(&mut self, s: App) -> Expr {
        self.count();
        Expr::Tail(s)
    }

    fn let_serious(&mut self, x: &Symbol, rhs: App, body: Expr) -> Expr {
        self.count();
        Expr::Let(*x, Rhs::App(rhs), Box::new(body))
    }

    fn let_triv(&mut self, x: &Symbol, rhs: Triv, body: Expr) -> Expr {
        self.count();
        Expr::Let(*x, Rhs::Triv(rhs), Box::new(body))
    }

    fn if_(&mut self, t: Triv, then: Expr, els: Expr) -> Expr {
        self.count();
        Expr::If(t, Box::new(then), Box::new(els))
    }

    fn define(&mut self, name: &Symbol, params: &[Symbol], body: Expr) {
        self.count();
        self.defs.push(Def {
            name: *name,
            params: params.to_vec(),
            body,
        });
    }

    fn finish(mut self, entry: &Symbol) -> Program {
        // Put the entry definition first for readability.
        if let Some(pos) = self.defs.iter().position(|d| &d.name == entry) {
            let d = self.defs.remove(pos);
            self.defs.insert(0, d);
        }
        Program { defs: self.defs }
    }

    fn code_size(&self) -> usize {
        self.ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cs_is_anf;

    #[test]
    fn built_programs_are_anf_by_construction() {
        let mut b = SourceBuilder::new();
        let x = Symbol::new("x");
        let t = Symbol::new("t");
        let xv = b.var(&x);
        let one = b.const_(&Datum::Int(1));
        let s = b.prim(Prim::Sub, vec![xv, one]);
        let rec = {
            let tv = b.var(&t);
            b.call_global(&Symbol::new("f"), vec![tv])
        };
        let inner = b.tail(rec);
        let body = b.let_serious(&t, s, inner);
        let xv2 = b.var(&x);
        let zero_test = b.prim(Prim::ZeroP, vec![xv2]);
        let done = {
            let c = b.const_(&Datum::Int(0));
            b.ret(c)
        };
        let tz = Symbol::new("tz");
        let tzv = b.var(&tz);
        let cond = b.if_(tzv, done, body);
        let whole = b.let_serious(&tz, zero_test, cond);
        b.define(&Symbol::new("f"), &[x], whole);
        let p = b.finish(&Symbol::new("f"));
        assert!(cs_is_anf(&p.defs[0].body.to_cs()));
        assert_eq!(p.defs[0].name, Symbol::new("f"));
    }

    #[test]
    fn finish_moves_entry_first() {
        let mut b = SourceBuilder::new();
        let u = b.const_(&Datum::Int(1));
        let code = b.ret(u);
        b.define(&Symbol::new("helper"), &[], code);
        let u2 = b.const_(&Datum::Int(2));
        let code2 = b.ret(u2);
        b.define(&Symbol::new("main"), &[], code2);
        let p = b.finish(&Symbol::new("main"));
        assert_eq!(p.defs[0].name, Symbol::new("main"));
        assert_eq!(p.defs[1].name, Symbol::new("helper"));
    }
}
