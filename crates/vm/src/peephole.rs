//! Peephole optimization on finished templates.
//!
//! The assembler emits exactly what the compilators say; two local
//! cleanups are worthwhile afterwards, especially for the *generic*
//! compiler whose control-flow merges produce jump chains:
//!
//! * **jump threading** — a jump whose target is an unconditional jump is
//!   retargeted to the final destination (cycles are left alone);
//! * **unreachable-code elimination** — instructions that no fall-through
//!   or jump can reach are removed, and every jump target is remapped to
//!   the compacted indices;
//! * **superinstruction fusion** — the hottest pairs the per-opcode
//!   dispatch counts surface become single instructions, applied to a
//!   fixpoint so chains collapse over successive passes:
//!   - `Local i; Push` → `LocalPush i` and `Const i; Push` → `ConstPush i`
//!     (argument loading);
//!   - `LocalPush i; Prim` → `LocalPrim` and `ConstPush i; Prim` →
//!     `ConstPrim` (local-load-compare — the residual matcher's
//!     `(eq? c <char>)` collapses to a single `const-prim`);
//!   - `Prim; JumpIfFalse` → `PrimBranch` (compare-branch — the guard of
//!     every residual character dispatch).
//!
//!   A pair is fused only when nothing jumps *between* the two
//!   instructions, and all jump targets are remapped to the shortened
//!   code.
//!
//! The pass is semantics-preserving byte-code-to-byte-code; correctness is
//! checked by running the cross-engine suite over optimized images and by
//! idempotence tests.

use crate::{Image, Instr, Template};
use std::sync::Arc;

/// Optimizes every template of an image.
pub fn optimize_image(image: &Image) -> Image {
    Image {
        templates: image
            .templates
            .iter()
            .map(|(n, t)| (*n, optimize_template(t)))
            .collect(),
        entry: image.entry,
    }
}

/// Optimizes one template (and its sub-templates) to a fixpoint.
pub fn optimize_template(t: &Arc<Template>) -> Arc<Template> {
    let mut code = t.code.clone();
    loop {
        let threaded = thread_jumps(&code);
        let compacted = drop_unreachable(&threaded);
        let fused = fuse_pairs(&compacted);
        if fused == code {
            break;
        }
        code = fused;
    }
    Arc::new(Template {
        name: t.name,
        arity: t.arity,
        nfree: t.nfree,
        code,
        consts: t.consts.clone(),
        globals: t.globals.clone(),
        templates: t.templates.iter().map(optimize_template).collect(),
    })
}

/// Final destination of a jump chain starting at `target`.
fn chase(code: &[Instr], mut target: u32) -> u32 {
    let mut hops = 0;
    while let Some(Instr::Jump(next)) = code.get(target as usize) {
        if *next == target || hops > code.len() {
            break; // self-loop or pathological chain: leave as is
        }
        target = *next;
        hops += 1;
    }
    target
}

fn thread_jumps(code: &[Instr]) -> Vec<Instr> {
    code.iter()
        .map(|i| match i {
            Instr::Jump(t) => Instr::Jump(chase(code, *t)),
            Instr::JumpIfFalse(t) => Instr::JumpIfFalse(chase(code, *t)),
            Instr::PrimBranch {
                prim,
                nargs,
                target,
            } => Instr::PrimBranch {
                prim: *prim,
                nargs: *nargs,
                target: chase(code, *target),
            },
            other => *other,
        })
        .collect()
}

/// Computes reachability from index 0 and compacts the code, remapping
/// jump targets.
fn drop_unreachable(code: &[Instr]) -> Vec<Instr> {
    let n = code.len();
    let mut reachable = vec![false; n];
    let mut work = vec![0usize];
    while let Some(pc) = work.pop() {
        if pc >= n || reachable[pc] {
            continue;
        }
        reachable[pc] = true;
        match code[pc] {
            Instr::Jump(t) => work.push(t as usize),
            Instr::JumpIfFalse(t) | Instr::PrimBranch { target: t, .. } => {
                work.push(t as usize);
                work.push(pc + 1);
            }
            Instr::Return | Instr::TailCall { .. } => {}
            _ => work.push(pc + 1),
        }
    }
    if reachable.iter().all(|r| *r) {
        return code.to_vec();
    }
    // Old index → new index.
    let mut remap = vec![0u32; n];
    let mut next = 0u32;
    for (i, r) in reachable.iter().enumerate() {
        remap[i] = next;
        if *r {
            next += 1;
        }
    }
    code.iter()
        .enumerate()
        .filter(|(i, _)| reachable[*i])
        .map(|(_, instr)| retarget(instr, |t| remap[t as usize]))
        .collect()
}

/// Rewrites every branch target of `instr` through `map`; non-branching
/// instructions pass through unchanged.
fn retarget(instr: &Instr, map: impl Fn(u32) -> u32) -> Instr {
    match instr {
        Instr::Jump(t) => Instr::Jump(map(*t)),
        Instr::JumpIfFalse(t) => Instr::JumpIfFalse(map(*t)),
        Instr::PrimBranch {
            prim,
            nargs,
            target,
        } => Instr::PrimBranch {
            prim: *prim,
            nargs: *nargs,
            target: map(*target),
        },
        other => *other,
    }
}

/// Fuses hot pairs: `Local i; Push` → `LocalPush i`, `Const i; Push` →
/// `ConstPush i`, `LocalPush i; Prim` → `LocalPrim`, `ConstPush i; Prim`
/// → `ConstPrim`, and `Prim; JumpIfFalse` → `PrimBranch`. The second half
/// must not itself be a jump target (a branch landing between the pair
/// would skip the first half); jump targets are remapped to the shortened
/// indices afterwards. The outer fixpoint collapses chains: `local 0;
/// push; prim eq?/2; jump-if-false L` reaches `local-push 0; prim-branch
/// eq?/2 L` in one pass and `local-push; prim; push` reaches
/// `local-prim; push` over two.
fn fuse_pairs(code: &[Instr]) -> Vec<Instr> {
    let n = code.len();
    let mut is_target = vec![false; n];
    for i in code {
        if let Instr::Jump(t) | Instr::JumpIfFalse(t) | Instr::PrimBranch { target: t, .. } = i {
            if (*t as usize) < n {
                is_target[*t as usize] = true;
            }
        }
    }
    // Old index → new index. Index n maps too: a jump one past the end
    // (never emitted, but cheap to stay total).
    let mut remap = vec![0u32; n + 1];
    let mut out = Vec::with_capacity(n);
    let mut i = 0;
    while i < n {
        remap[i] = out.len() as u32;
        let fused = match (code[i], code.get(i + 1)) {
            (Instr::Local(k), Some(Instr::Push)) if !is_target[i + 1] => Some(Instr::LocalPush(k)),
            (Instr::Const(k), Some(Instr::Push)) if !is_target[i + 1] => Some(Instr::ConstPush(k)),
            (Instr::LocalPush(k), Some(&Instr::Prim { prim, nargs })) if !is_target[i + 1] => {
                Some(Instr::LocalPrim {
                    local: k,
                    prim,
                    nargs,
                })
            }
            (Instr::ConstPush(k), Some(&Instr::Prim { prim, nargs })) if !is_target[i + 1] => {
                Some(Instr::ConstPrim {
                    konst: k,
                    prim,
                    nargs,
                })
            }
            (Instr::Prim { prim, nargs }, Some(&Instr::JumpIfFalse(target)))
                if !is_target[i + 1] =>
            {
                Some(Instr::PrimBranch {
                    prim,
                    nargs,
                    target,
                })
            }
            _ => None,
        };
        if let Some(f) = fused {
            out.push(f);
            remap[i + 1] = out.len() as u32;
            i += 2;
        } else {
            out.push(code[i]);
            i += 1;
        }
    }
    remap[n] = out.len() as u32;
    out.iter()
        .map(|instr| retarget(instr, |t| remap[t as usize]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use crate::{Machine, Value};
    use two4one_syntax::datum::Datum;
    use two4one_syntax::symbol::Symbol;

    /// A template with a jump chain and dead code:
    ///   0: jump 3        (threads through 3 → 5)
    ///   1: const 1       (dead)
    ///   2: return        (dead)
    ///   3: jump 5        (dead after threading)
    ///   4: push          (dead)
    ///   5: const 2
    ///   6: return
    fn chained() -> Arc<Template> {
        let mut a = Asm::new(Symbol::new("t"), 0, 0);
        let l3 = a.make_label();
        let l5 = a.make_label();
        a.emit_jump(l3);
        let one = a.const_index(&Datum::Int(1)).unwrap();
        a.emit(Instr::Const(one));
        a.emit(Instr::Return);
        a.attach_label(l3);
        a.emit_jump(l5);
        a.emit(Instr::Push);
        a.attach_label(l5);
        let two = a.const_index(&Datum::Int(2)).unwrap();
        a.emit(Instr::Const(two));
        a.emit(Instr::Return);
        a.finish().unwrap()
    }

    #[test]
    fn jump_chains_thread_and_dead_code_drops() {
        let t = chained();
        assert_eq!(t.code.len(), 7);
        let o = optimize_template(&t);
        // Only: jump → const 2 → return remain; and the leading jump now
        // points at the compacted const.
        assert_eq!(
            o.code,
            vec![Instr::Jump(1), Instr::Const(1), Instr::Return],
            "{}",
            o.disassemble()
        );
        let mut m = Machine::empty();
        m.define_template(Symbol::new("t"), o);
        let v = m.call_global(&Symbol::new("t"), vec![]).unwrap();
        assert_eq!(v.to_datum(), Some(Datum::Int(2)));
    }

    #[test]
    fn optimization_is_idempotent() {
        let o1 = optimize_template(&chained());
        let o2 = optimize_template(&o1);
        assert_eq!(o1.code, o2.code);
    }

    #[test]
    fn straightline_code_is_untouched() {
        let mut a = Asm::new(Symbol::new("id"), 1, 0);
        a.emit(Instr::Local(0));
        a.emit(Instr::Return);
        let t = a.finish().unwrap();
        let o = optimize_template(&t);
        assert_eq!(o.code, t.code);
    }

    #[test]
    fn conditional_targets_are_remapped() {
        // if x then 1 else 2, with padding dead code between the arms.
        let mut a = Asm::new(Symbol::new("f"), 1, 0);
        let alt = a.make_label();
        let end_pad = a.make_label();
        a.emit(Instr::Local(0));
        a.emit_jump_if_false(alt);
        let one = a.const_index(&Datum::Int(1)).unwrap();
        a.emit(Instr::Const(one));
        a.emit(Instr::Return);
        // dead padding (never branched to)
        a.attach_label(end_pad);
        a.emit(Instr::Push);
        a.emit(Instr::Push);
        a.attach_label(alt);
        let two = a.const_index(&Datum::Int(2)).unwrap();
        a.emit(Instr::Const(two));
        a.emit(Instr::Return);
        let t = a.finish().unwrap();
        let o = optimize_template(&t);
        assert!(o.code.len() < t.code.len(), "{}", o.disassemble());
        let mut m = Machine::empty();
        m.define_template(Symbol::new("f"), o);
        assert_eq!(
            m.call_global(&Symbol::new("f"), vec![Value::Bool(true)])
                .unwrap()
                .to_datum(),
            Some(Datum::Int(1))
        );
        assert_eq!(
            m.call_global(&Symbol::new("f"), vec![Value::Bool(false)])
                .unwrap()
                .to_datum(),
            Some(Datum::Int(2))
        );
    }

    #[test]
    fn argument_loads_fuse_into_superinstructions() {
        use two4one_syntax::prim::Prim;
        // (+ x 1): local 0; push; const 1; push; prim +/2; return
        let mut a = Asm::new(Symbol::new("add1"), 1, 0);
        a.emit(Instr::Local(0));
        a.emit(Instr::Push);
        let one = a.const_index(&Datum::Int(1)).unwrap();
        a.emit(Instr::Const(one));
        a.emit(Instr::Push);
        a.emit(Instr::Prim {
            prim: Prim::Add,
            nargs: 2,
        });
        a.emit(Instr::Return);
        let t = a.finish().unwrap();
        assert_eq!(t.code.len(), 6, "before fusion");
        let o = optimize_template(&t);
        // Two passes: the pushes fuse first, then the trailing
        // `const-push; prim` pair collapses into `const-prim`.
        assert_eq!(
            o.code,
            vec![
                Instr::LocalPush(0),
                Instr::ConstPrim {
                    konst: one,
                    prim: Prim::Add,
                    nargs: 2
                },
                Instr::Return,
            ],
            "{}",
            o.disassemble()
        );
        assert_eq!(o.code.len(), 3, "after fusion");
        let mut m = Machine::empty();
        m.define_template(Symbol::new("add1"), o);
        let v = m
            .call_global(&Symbol::new("add1"), vec![Value::Int(41)])
            .unwrap();
        assert_eq!(v.to_datum(), Some(Datum::Int(42)));
    }

    #[test]
    fn fusion_remaps_branch_targets() {
        use two4one_syntax::prim::Prim;
        // if x then (+ x 1) else (+ x 2): both arms start with fusable
        // pairs, and the else-target index shrinks with the fused code.
        let mut a = Asm::new(Symbol::new("f"), 1, 0);
        let alt = a.make_label();
        a.emit(Instr::Local(0));
        a.emit_jump_if_false(alt);
        a.emit(Instr::Local(0));
        a.emit(Instr::Push);
        let one = a.const_index(&Datum::Int(1)).unwrap();
        a.emit(Instr::Const(one));
        a.emit(Instr::Push);
        a.emit(Instr::Prim {
            prim: Prim::Add,
            nargs: 2,
        });
        a.emit(Instr::Return);
        a.attach_label(alt);
        let two = a.const_index(&Datum::Int(2)).unwrap();
        a.emit(Instr::Const(two));
        a.emit(Instr::Push);
        let forty = a.const_index(&Datum::Int(40)).unwrap();
        a.emit(Instr::Const(forty));
        a.emit(Instr::Push);
        a.emit(Instr::Prim {
            prim: Prim::Add,
            nargs: 2,
        });
        a.emit(Instr::Return);
        let t = a.finish().unwrap();
        assert_eq!(t.code.len(), 14, "before fusion");
        let o = optimize_template(&t);
        assert_eq!(o.code.len(), 8, "after fusion");
        let mut m = Machine::empty();
        m.define_template(Symbol::new("f"), o);
        // Numbers are truthy: then-branch computes x+1.
        assert_eq!(
            m.call_global(&Symbol::new("f"), vec![Value::Int(5)])
                .unwrap()
                .to_datum(),
            Some(Datum::Int(6))
        );
        // #f takes the (remapped) else-branch: 2+40.
        assert_eq!(
            m.call_global(&Symbol::new("f"), vec![Value::Bool(false)])
                .unwrap()
                .to_datum(),
            Some(Datum::Int(42))
        );
    }

    #[test]
    fn push_that_is_a_jump_target_stays_unfused() {
        // `const 1` then a Push that a branch lands on: fusing would skip
        // the load on the branch path, so the pair must survive.
        let mut a = Asm::new(Symbol::new("g"), 1, 0);
        let onto_push = a.make_label();
        a.emit(Instr::Local(0));
        a.emit_jump_if_false(onto_push);
        let one = a.const_index(&Datum::Int(1)).unwrap();
        a.emit(Instr::Const(one));
        a.attach_label(onto_push);
        a.emit(Instr::Push);
        a.emit(Instr::Return);
        let t = a.finish().unwrap();
        let o = optimize_template(&t);
        assert!(
            o.code.contains(&Instr::Push),
            "target Push must not fuse:\n{}",
            o.disassemble()
        );
        assert!(
            !o.code.iter().any(|i| matches!(i, Instr::ConstPush(_))),
            "{}",
            o.disassemble()
        );
    }

    #[test]
    fn fusion_is_idempotent() {
        use two4one_syntax::prim::Prim;
        let mut a = Asm::new(Symbol::new("h"), 1, 0);
        a.emit(Instr::Local(0));
        a.emit(Instr::Push);
        a.emit(Instr::Local(0));
        a.emit(Instr::Push);
        a.emit(Instr::Prim {
            prim: Prim::Add,
            nargs: 2,
        });
        a.emit(Instr::Return);
        let t = a.finish().unwrap();
        let o1 = optimize_template(&t);
        let o2 = optimize_template(&o1);
        assert_eq!(o1.code, o2.code);
        // local-push; local-prim; return — the second argument load fuses
        // into the primitive application.
        assert_eq!(o1.code.len(), 3);
    }

    #[test]
    fn compare_branch_fuses_into_prim_branch() {
        use two4one_syntax::prim::Prim;
        // (if (eq? x 'a) 1 2): the `prim eq?; jump-if-false` pair must
        // become a single `prim-branch`, and both branch paths must still
        // produce the right answer.
        let mut a = Asm::new(Symbol::new("f"), 1, 0);
        let alt = a.make_label();
        a.emit(Instr::Local(0));
        a.emit(Instr::Push);
        let ka = a.const_index(&Datum::sym("a")).unwrap();
        a.emit(Instr::Const(ka));
        a.emit(Instr::Push);
        a.emit(Instr::Prim {
            prim: Prim::EqP,
            nargs: 2,
        });
        a.emit_jump_if_false(alt);
        let one = a.const_index(&Datum::Int(1)).unwrap();
        a.emit(Instr::Const(one));
        a.emit(Instr::Return);
        a.attach_label(alt);
        let two = a.const_index(&Datum::Int(2)).unwrap();
        a.emit(Instr::Const(two));
        a.emit(Instr::Return);
        let t = a.finish().unwrap();
        let o = optimize_template(&t);
        assert!(
            o.code.iter().any(|i| matches!(i, Instr::PrimBranch { .. })),
            "{}",
            o.disassemble()
        );
        assert!(
            !o.code.iter().any(|i| matches!(i, Instr::JumpIfFalse(_))),
            "{}",
            o.disassemble()
        );
        let mut m = Machine::empty();
        m.define_template(Symbol::new("f"), o);
        assert_eq!(
            m.call_global(&Symbol::new("f"), vec![Value::Sym(Symbol::new("a"))])
                .unwrap()
                .to_datum(),
            Some(Datum::Int(1))
        );
        assert_eq!(
            m.call_global(&Symbol::new("f"), vec![Value::Sym(Symbol::new("b"))])
                .unwrap()
                .to_datum(),
            Some(Datum::Int(2))
        );
    }

    #[test]
    fn jump_if_false_that_is_a_target_stays_unfused() {
        use two4one_syntax::prim::Prim;
        // Another branch lands exactly on the `jump-if-false` that
        // follows a prim: fusing the pair would run the primitive on the
        // branch-in path too, so it must survive.
        //
        //   0: local 0
        //   1: jump-if-false 5     ; #f goes straight onto the JIF
        //   2: local 0
        //   3: push
        //   4: prim null?/1
        //   5: jump-if-false 8     ; target of 1 AND fallthrough of 4
        //   6: const 1
        //   7: return
        //   8: const 2
        //   9: return
        let mut a = Asm::new(Symbol::new("g"), 1, 0);
        let onto_jif = a.make_label();
        let alt = a.make_label();
        a.emit(Instr::Local(0));
        a.emit_jump_if_false(onto_jif);
        a.emit(Instr::Local(0));
        a.emit(Instr::Push);
        a.emit(Instr::Prim {
            prim: Prim::NullP,
            nargs: 1,
        });
        a.attach_label(onto_jif);
        a.emit_jump_if_false(alt);
        let one = a.const_index(&Datum::Int(1)).unwrap();
        a.emit(Instr::Const(one));
        a.emit(Instr::Return);
        a.attach_label(alt);
        let two = a.const_index(&Datum::Int(2)).unwrap();
        a.emit(Instr::Const(two));
        a.emit(Instr::Return);
        let t = a.finish().unwrap();
        let o = optimize_template(&t);
        assert!(
            !o.code.iter().any(|i| matches!(i, Instr::PrimBranch { .. })),
            "target JIF must not fuse:\n{}",
            o.disassemble()
        );
        let mut m = Machine::empty();
        m.define_template(Symbol::new("g"), o);
        // nil is truthy and null: falls through 1, prim gives #t → 1.
        assert_eq!(
            m.call_global(&Symbol::new("g"), vec![Value::Nil])
                .unwrap()
                .to_datum(),
            Some(Datum::Int(1))
        );
        // 9 is truthy but not null: prim gives #f → 2.
        assert_eq!(
            m.call_global(&Symbol::new("g"), vec![Value::Int(9)])
                .unwrap()
                .to_datum(),
            Some(Datum::Int(2))
        );
        // #f branches straight onto the JIF with val = #f → 2.
        assert_eq!(
            m.call_global(&Symbol::new("g"), vec![Value::Bool(false)])
                .unwrap()
                .to_datum(),
            Some(Datum::Int(2))
        );
    }

    #[test]
    fn prim_branch_targets_are_remapped_and_threaded() {
        use two4one_syntax::prim::Prim;
        // The false-path of the fused prim-branch goes through a jump
        // chain and dead padding; the fused target must end up threaded
        // and remapped to the compacted index.
        let mut a = Asm::new(Symbol::new("h"), 1, 0);
        let hop = a.make_label();
        let alt = a.make_label();
        a.emit(Instr::Local(0));
        a.emit(Instr::Push);
        a.emit(Instr::Prim {
            prim: Prim::NullP,
            nargs: 1,
        });
        a.emit_jump_if_false(hop);
        let one = a.const_index(&Datum::Int(1)).unwrap();
        a.emit(Instr::Const(one));
        a.emit(Instr::Return);
        a.attach_label(hop);
        a.emit_jump(alt); // chain hop → alt
        a.emit(Instr::Push); // dead
        a.attach_label(alt);
        let two = a.const_index(&Datum::Int(2)).unwrap();
        a.emit(Instr::Const(two));
        a.emit(Instr::Return);
        let t = a.finish().unwrap();
        let o = optimize_template(&t);
        assert!(
            o.code.iter().any(|i| matches!(i, Instr::PrimBranch { .. })),
            "{}",
            o.disassemble()
        );
        let mut m = Machine::empty();
        m.define_template(Symbol::new("h"), o.clone());
        assert_eq!(
            m.call_global(&Symbol::new("h"), vec![Value::Nil])
                .unwrap()
                .to_datum(),
            Some(Datum::Int(1)),
            "{}",
            o.disassemble()
        );
        assert_eq!(
            m.call_global(&Symbol::new("h"), vec![Value::Int(0)])
                .unwrap()
                .to_datum(),
            Some(Datum::Int(2)),
            "{}",
            o.disassemble()
        );
    }

    #[test]
    fn subtemplates_are_optimized_too() {
        let mut inner = Asm::new(Symbol::new("inner"), 0, 0);
        let l = inner.make_label();
        inner.emit_jump(l);
        inner.emit(Instr::Push); // dead
        inner.attach_label(l);
        let k = inner.const_index(&Datum::Int(9)).unwrap();
        inner.emit(Instr::Const(k));
        inner.emit(Instr::Return);
        let inner_t = inner.finish().unwrap();

        let mut outer = Asm::new(Symbol::new("outer"), 0, 0);
        let ti = outer.template_index(inner_t).unwrap();
        outer.emit(Instr::MakeClosure {
            template: ti,
            nfree: 0,
        });
        outer.emit(Instr::Return);
        let t = outer.finish().unwrap();
        let o = optimize_template(&t);
        assert!(o.templates[0].code.len() < 4);
    }
}
