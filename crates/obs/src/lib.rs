//! two4one-obs: zero-dependency observability for the RTCG pipeline.
//!
//! Three pieces, designed to stay on in production:
//!
//! * **Metrics** ([`MetricsRegistry`], [`Counter`], [`Gauge`],
//!   [`Histogram`]) — atomic cells registered by static name (plus an
//!   optional static label), snapshot-able without stopping writers.
//!   Every add saturates instead of wrapping; histograms use fixed
//!   power-of-two latency buckets (256 ns … ≈2.1 s, plus overflow).
//! * **Spans and traces** ([`Span`], [`event`], the per-thread trace
//!   ring) — `Span::enter(Phase::Specialize)` marks a pipeline phase,
//!   records its duration into the global per-phase histogram on drop,
//!   and leaves Enter/Exit breadcrumbs in a bounded per-thread ring
//!   buffer alongside point events (unfold, memo hit, cache hit, breaker
//!   open, …) so a request's trace can be dumped on demand.
//! * **Exposition** ([`MetricsSnapshot::to_prometheus`],
//!   [`MetricsSnapshot::to_json`]) — Prometheus text format and a JSON
//!   snapshot, both hand-rolled (this crate has no dependencies).
//!
//! The whole crate is panic-free (lint-enforced at zero budget) and
//! lock-light: counters/gauges/histograms are lock-free atomics; the
//! registry takes a mutex only at registration and snapshot time; the
//! trace ring is thread-local. A process-wide [`set_enabled`] switch
//! turns span/trace recording into a single relaxed load for overhead
//! measurements.

#![warn(missing_docs)]

mod metrics;
mod span;

pub use metrics::{
    bucket_bound, Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot,
    SeriesId, BUCKETS, BUCKET_SHIFT,
};
pub use span::{
    absorb_trace, clear_trace, event, event_with, now_ns, render_trace, take_trace,
    touch_phase_metrics, trace, EventKind, Phase, Span, TraceEvent, TraceWhat, TRACE_CAP,
};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

/// The process-wide registry used for pipeline-phase histograms and
/// specializer decision counters. Serving layers typically hold their own
/// private registry as well and merge snapshots at exposition time.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

static ENABLED: AtomicBool = AtomicBool::new(true);

/// Whether span/trace recording is on (it is by default). Semantic
/// counters (cache hits, fallbacks, …) are not gated by this switch —
/// only spans, trace events, and latency recording.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns span/trace recording on or off process-wide. Used by the
/// obs-overhead bench row and available to embedders that want the
/// absolute minimum hot-path cost.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}
