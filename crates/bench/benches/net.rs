//! Network front-end latency: request round-trips through a live
//! [`NetServer`] on the loopback interface, reported as p50/p99/p999
//! tails plus requests/sec per row.
//!
//! The serving economics only survive the wire if the front end adds
//! bounded overhead: a warm cache hit must stay a sub-millisecond
//! round-trip, and the tail (p999) is what an adversarial client storm
//! actually degrades. Rows:
//!
//! * `ping` — a binary `REQ_PING` round-trip: pure framing + socket cost.
//! * `bin-cold` — binary `REQ_SPEC` with distinct statics: every request
//!   runs the specializer (the wire cost rides on a real fill).
//! * `bin-warm` — the same request repeated: pure cache traffic over the
//!   binary protocol.
//! * `http-warm` — the same warm hit over keep-alive HTTP/1.1
//!   (`POST /spec`), measuring the text protocol's parsing overhead.
//!
//! Results land in `BENCH_net.json` so successive PRs can compare
//! trajectories; the floors at the bottom are the acceptance gate CI
//! enforces. `T4O_BENCH_SAMPLES` scales the request counts down for
//! smoke runs.

use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};
use two4one::{Division, Pgg, BT};
use two4one_net::{wire, NetConfig, NetServer};
use two4one_server::SpecService;

/// Unfold depth floor for cold fills, matching `serve.rs` so the wire
/// overhead is measured against comparable specializer work.
const DEPTH: i64 = 100;

fn scale() -> usize {
    std::env::var("T4O_BENCH_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(10)
}

struct Row {
    id: &'static str,
    n: usize,
    p50: Duration,
    p99: Duration,
    p999: Duration,
    rps: f64,
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn row(id: &'static str, mut lat: Vec<Duration>) -> Row {
    let total: Duration = lat.iter().sum();
    let n = lat.len();
    lat.sort();
    Row {
        id,
        n,
        p50: percentile(&lat, 0.50),
        p99: percentile(&lat, 0.99),
        p999: percentile(&lat, 0.999),
        rps: n as f64 / total.as_secs_f64().max(f64::EPSILON),
    }
}

fn fmt(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

fn connect(addr: std::net::SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("read timeout");
    stream.set_nodelay(true).expect("nodelay");
    stream
}

/// One binary `REQ_SPEC` round-trip on an established connection.
fn spec_roundtrip(stream: &mut TcpStream, statics: &str, expect: u8) -> Duration {
    let req = wire::SpecWireRequest {
        token: String::new(),
        name: "power".into(),
        statics: statics.into(),
        deadline_ms: 0,
        want: wire::WANT_META,
    };
    let frame = wire::encode_frame(wire::REQ_SPEC, &req.encode());
    let t0 = Instant::now();
    stream.write_all(&frame).expect("send spec");
    let resp = wire::read_frame(stream, 1 << 24)
        .expect("read spec response")
        .expect("spec response frame");
    let elapsed = t0.elapsed();
    assert_eq!(resp.ftype, expect, "unexpected response frame");
    elapsed
}

/// One keep-alive `POST /spec` round-trip: writes the request, reads the
/// head plus `Content-Length` body, and leaves the connection usable.
fn http_roundtrip(stream: &mut TcpStream, body: &str) -> Duration {
    let req = format!(
        "POST /spec HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    let t0 = Instant::now();
    stream.write_all(req.as_bytes()).expect("send http");
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    let body_start = loop {
        let n = stream.read(&mut chunk).expect("read http");
        assert!(n > 0, "server closed a keep-alive connection");
        buf.extend_from_slice(&chunk[..n]);
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos + 4;
        }
    };
    let head = String::from_utf8_lossy(&buf[..body_start]).to_string();
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    let content_length: usize = head
        .lines()
        .find_map(|l| {
            l.to_ascii_lowercase()
                .strip_prefix("content-length:")
                .map(str::trim)
                .map(String::from)
        })
        .expect("content-length header")
        .parse()
        .expect("content-length value");
    while buf.len() < body_start + content_length {
        let n = stream.read(&mut chunk).expect("read http body");
        assert!(n > 0, "short http body");
        buf.extend_from_slice(&chunk[..n]);
    }
    t0.elapsed()
}

fn main() {
    let scale = scale();
    let warm_n = 200 * scale;
    let cold_n = 4 * scale;

    let service = Arc::new(SpecService::new());
    {
        let pgg = Pgg::new();
        let program = pgg
            .parse("(define (power n x) (if (= n 0) 1 (* x (power (- n 1) x))))")
            .expect("parse power");
        let ext = pgg
            .cogen(&program, "power", &Division::new([BT::Static, BT::Dynamic]))
            .expect("cogen power");
        service.register("power", &ext);
    }
    let server = NetServer::bind(
        Arc::clone(&service),
        NetConfig {
            request_deadline: Duration::from_secs(60),
            ..NetConfig::default()
        },
    )
    .expect("bind");
    let addr = server.addr();

    println!("\n== net_latency ==");
    let mut rows = Vec::new();

    // Pure wire cost: framing + loopback round-trip, no service work.
    {
        let mut stream = connect(addr);
        let lat: Vec<Duration> = (0..warm_n)
            .map(|_| {
                let frame = wire::encode_frame(wire::REQ_PING, &[]);
                let t0 = Instant::now();
                stream.write_all(&frame).expect("send ping");
                let resp = wire::read_frame(&mut stream, 1 << 16)
                    .expect("read pong")
                    .expect("pong frame");
                assert_eq!(resp.ftype, wire::RESP_PONG);
                t0.elapsed()
            })
            .collect();
        rows.push(row("ping", lat));
    }

    // Cold fills: each request specializes at a distinct depth.
    {
        let mut stream = connect(addr);
        let lat: Vec<Duration> = (0..cold_n)
            .map(|i| {
                let statics = format!("{}", DEPTH + 1 + i as i64);
                spec_roundtrip(&mut stream, &statics, wire::RESP_META)
            })
            .collect();
        rows.push(row("bin-cold", lat));
    }

    // Warm hits over the binary protocol (first fill untimed).
    {
        let mut stream = connect(addr);
        spec_roundtrip(&mut stream, "7", wire::RESP_META);
        let lat: Vec<Duration> = (0..warm_n)
            .map(|_| spec_roundtrip(&mut stream, "7", wire::RESP_META))
            .collect();
        rows.push(row("bin-warm", lat));
    }

    // The same warm hit over keep-alive HTTP/1.1.
    {
        let mut stream = connect(addr);
        let body = r#"{"name": "power", "statics": "7", "want": "meta"}"#;
        http_roundtrip(&mut stream, body);
        let lat: Vec<Duration> = (0..warm_n)
            .map(|_| http_roundtrip(&mut stream, body))
            .collect();
        rows.push(row("http-warm", lat));
    }

    for r in &rows {
        println!(
            "  {}: p50 {}  p99 {}  p999 {}  ({:.0} req/s over {} requests)",
            r.id,
            fmt(r.p50),
            fmt(r.p99),
            fmt(r.p999),
            r.rps,
            r.n
        );
    }

    let snap = server.shutdown();
    assert_eq!(snap.worker_panics, 0, "handler panicked during the bench");
    assert_eq!(snap.protocol_errors, 0, "bench traffic was malformed");

    // Trajectory file, anchored at the workspace root like the others.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_net.json");
    let mut out = String::from("{\n  \"group\": \"net_latency\",\n  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"id\": \"{}\", \"n\": {}, \"p50_ns\": {}, \"p99_ns\": {}, \
             \"p999_ns\": {}, \"rps\": {:.0}}}{comma}\n",
            r.id,
            r.n,
            r.p50.as_nanos(),
            r.p99.as_nanos(),
            r.p999.as_nanos(),
            r.rps
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out).expect("write BENCH_net.json");
    println!("  wrote BENCH_net.json");

    // Acceptance floors. Relative: a warm hit must beat a cold fill —
    // the cache's entire point — and the binary protocol must not lose
    // to HTTP on the same traffic (it exists to be the cheap path).
    // Absolute: a warm loopback round-trip is socket + framing + a cache
    // probe; 20 ms at p50 would mean the front end itself is the
    // bottleneck even on saturated CI hardware.
    let by_id = |id: &str| rows.iter().find(|r| r.id == id).expect("row");
    let (ping, cold, warm, http) = (
        by_id("ping"),
        by_id("bin-cold"),
        by_id("bin-warm"),
        by_id("http-warm"),
    );
    assert!(
        warm.rps > cold.rps,
        "warm hits no faster than cold fills over the wire: \
         {:.0} vs {:.0} req/s",
        warm.rps,
        cold.rps
    );
    assert!(
        warm.p50 <= http.p50 * 2,
        "binary warm p50 lost badly to HTTP: {} vs {}",
        fmt(warm.p50),
        fmt(http.p50)
    );
    for (id, p50) in [
        ("ping", ping.p50),
        ("bin-warm", warm.p50),
        ("http-warm", http.p50),
    ] {
        assert!(
            p50 < Duration::from_millis(20),
            "{id} p50 over the absolute floor: {}",
            fmt(p50)
        );
    }
}
