//! Specializing the FCL flowchart interpreter — the original `mix`
//! lineage: polyvariant program-point specialization turns a table-driven
//! interpreter into one residual function per program point, here emitted
//! straight to byte code.
//!
//! ```text
//! cargo run --example flowchart
//! ```

use two4one::{interpret, run_image, with_stack, Datum, Division, Pgg, BT};
use two4one_langs as langs;

fn main() -> Result<(), two4one::Error> {
    with_stack(run)
}

fn run() -> Result<(), two4one::Error> {
    let mut pgg = Pgg::new();
    for (name, policy) in langs::fcl_policies() {
        pgg = pgg.policy(name, policy);
    }
    let interp = pgg.parse(langs::FCL_INTERP)?;
    let program = langs::fcl_power();
    println!("FCL program (iterative power):\n{program}\n");

    let args = Datum::list([Datum::Int(3), Datum::Int(5)]);
    let slow = interpret(&interp, "fcl-run", &[program.clone(), args.clone()])?;
    println!("interpreted : 3^5 = {}", slow.value);

    let genext = pgg.cogen(
        &interp,
        "fcl-run",
        &Division::new([BT::Static, BT::Dynamic]),
    )?;
    let residual = genext.specialize_source_optimized(std::slice::from_ref(&program))?;
    println!(
        "\nresidual program — one function per program point:\n{}",
        residual.to_source()
    );

    let image = genext.specialize_object(&[program])?;
    let fast = run_image(&image, "fcl-run", &[args])?;
    println!("compiled    : 3^5 = {}", fast.value);
    assert_eq!(slow.value, fast.value);
    Ok(())
}
