//! Live-socket tests for the network front end: protocol round trips,
//! tenant auth and quotas, client-disconnect cancellation, graceful
//! drain, and the adversarial storm the ISSUE's acceptance criteria
//! demand — many threads of slow-loris, garbage, torn frames, and
//! mid-request disconnects, after which the server must still answer, no
//! worker may have panicked, and no flight may be stranded.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use two4one::{run_image, Division, Pgg, BT};
use two4one_net::tenants::TenantTable;
use two4one_net::wire::{SpecWireRequest, WireError};
use two4one_net::{wire, NetConfig, NetServer};
use two4one_server::{FillHook, ServeConfig, SpecService};
use two4one_testkit::faults::{gen_wire_fault, WireFault};
use two4one_testkit::Rng;

const POWER: &str = "(define (power n x) (if (= n 0) 1 (* x (power (- n 1) x))))";
const SPIN: &str = "(define (spin n) (if (= n 0) 0 (spin (- n 1))))";

fn service_with_power() -> Arc<SpecService> {
    let service = Arc::new(SpecService::new());
    let pgg = Pgg::new();
    let program = pgg.parse(POWER).expect("parse power");
    let ext = pgg
        .cogen(&program, "power", &Division::new([BT::Static, BT::Dynamic]))
        .expect("cogen power");
    service.register("power", &ext);
    service
}

fn register_spin(service: &SpecService) {
    let pgg = Pgg::new();
    let program = pgg.parse(SPIN).expect("parse spin");
    let ext = pgg
        .cogen(&program, "spin", &Division::new([BT::Static]))
        .expect("cogen spin");
    service.register("spin", &ext);
}

/// A fast-reaping config so the timing-sensitive tests stay quick.
fn quick_config() -> NetConfig {
    NetConfig {
        io_tick: Duration::from_millis(10),
        idle_timeout: Duration::from_millis(400),
        request_deadline: Duration::from_millis(600),
        drain_timeout: Duration::from_millis(800),
        ..NetConfig::default()
    }
}

fn connect(server: &NetServer) -> TcpStream {
    let stream = TcpStream::connect(server.addr()).expect("connect");
    // A stuck server must fail a test, not hang it.
    stream
        .set_read_timeout(Some(Duration::from_secs(20)))
        .expect("read timeout");
    stream
}

/// One binary-protocol request/response exchange on an open connection.
fn exchange(stream: &mut TcpStream, ftype: u8, payload: &[u8]) -> wire::Frame {
    stream
        .write_all(&wire::encode_frame(ftype, payload))
        .expect("send frame");
    wire::read_frame(stream, 64 << 20)
        .expect("read response")
        .expect("response frame")
}

fn spec_frame(name: &str, statics: &str, want: u8) -> Vec<u8> {
    SpecWireRequest {
        token: String::new(),
        name: name.into(),
        statics: statics.into(),
        deadline_ms: 0,
        want,
    }
    .encode()
}

/// Sends one HTTP/1.1 request with `Connection: close` and returns the
/// full response text — empty when the server sheds the connection
/// (which the drain test expects and asserts on).
fn http_request(server: &NetServer, method: &str, path: &str, body: &str) -> String {
    let mut stream = connect(server);
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    if stream.write_all(req.as_bytes()).is_err() {
        return String::new();
    }
    let mut out = Vec::new();
    let _ = stream.read_to_end(&mut out);
    String::from_utf8_lossy(&out).into_owned()
}

fn eventually(mut cond: impl FnMut() -> bool) -> bool {
    let give_up = Instant::now() + Duration::from_secs(10);
    while Instant::now() < give_up {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    cond()
}

#[derive(Default)]
struct Latch {
    open: Mutex<bool>,
    cv: Condvar,
}

impl Latch {
    fn wait(&self) {
        let mut open = self.open.lock().expect("latch lock");
        while !*open {
            open = self.cv.wait(open).expect("latch wait");
        }
    }

    fn release(&self) {
        *self.open.lock().expect("latch lock") = true;
        self.cv.notify_all();
    }
}

// ---- protocol round trips ----------------------------------------------

#[test]
fn binary_protocol_round_trips_and_survives_unknown_types() {
    let server = NetServer::bind(service_with_power(), quick_config()).expect("bind");
    let mut conn = connect(&server);

    let pong = exchange(&mut conn, wire::REQ_PING, &[]);
    assert_eq!(pong.ftype, wire::RESP_PONG);

    // Meta answer for a specialization.
    let meta = exchange(
        &mut conn,
        wire::REQ_SPEC,
        &spec_frame("power", "5", wire::WANT_META),
    );
    assert_eq!(meta.ftype, wire::RESP_META);
    let text = String::from_utf8(meta.payload).expect("meta utf8");
    assert!(text.contains("\"name\": \"power\""), "{text}");
    assert!(text.contains("\"degraded\": false"), "{text}");

    // Object bytes stream back and actually load and run.
    let obj = exchange(
        &mut conn,
        wire::REQ_SPEC,
        &spec_frame("power", "5", wire::WANT_OBJECT),
    );
    assert_eq!(obj.ftype, wire::RESP_OBJECT);
    let image = two4one::decode_image(&obj.payload).expect("decode .t4o");
    let out = two4one::run_image(&image, image.entry.as_str(), &[two4one::Datum::Int(2)])
        .expect("run residual");
    assert_eq!(out.value, two4one::Datum::Int(32));

    // Gen-ext bytes come straight from the staged-code cache.
    let genext = exchange(
        &mut conn,
        wire::REQ_SPEC,
        &spec_frame("power", "7", wire::WANT_GENEXT),
    );
    assert_eq!(genext.ftype, wire::RESP_GENEXT);
    assert!(
        two4one::CompiledGenExt::from_bytes(&genext.payload, two4one::SpecOptions::default())
            .is_ok()
    );

    // A well-formed frame of an unknown type gets a typed error and the
    // connection loop stays usable — the live half of the corruption
    // sweep's "still-usable" property.
    let err = exchange(&mut conn, 0x55, b"whatever");
    assert_eq!(err.ftype, wire::RESP_ERROR);
    let err = WireError::decode(&err.payload).expect("decode error");
    assert_eq!(err.code, 400);
    let pong = exchange(&mut conn, wire::REQ_PING, &[]);
    assert_eq!(pong.ftype, wire::RESP_PONG);

    // Unknown program: typed 404, not a dead connection.
    let missing = exchange(
        &mut conn,
        wire::REQ_SPEC,
        &spec_frame("nope", "1", wire::WANT_META),
    );
    let err = WireError::decode(&missing.payload).expect("decode 404");
    assert_eq!(err.code, 404);

    drop(conn);
    let snap = server.shutdown();
    assert_eq!(snap.worker_panics, 0);
}

#[test]
fn register_over_the_wire_then_specialize() {
    let server = NetServer::bind(Arc::new(SpecService::new()), quick_config()).expect("bind");
    let mut conn = connect(&server);
    let reg = wire::RegisterWireRequest {
        token: String::new(),
        name: "power".into(),
        source: POWER.into(),
        entry: "power".into(),
        division: "SD".into(),
    };
    let resp = exchange(&mut conn, wire::REQ_REGISTER, &reg.encode());
    assert_eq!(resp.ftype, wire::RESP_META);
    let text = String::from_utf8(resp.payload).expect("utf8");
    assert!(text.contains("\"epoch\": 1"), "{text}");

    let meta = exchange(
        &mut conn,
        wire::REQ_SPEC,
        &spec_frame("power", "3", wire::WANT_META),
    );
    assert_eq!(meta.ftype, wire::RESP_META);

    // Malformed registrations are typed 400s.
    let bad = wire::RegisterWireRequest {
        division: "SQ".into(),
        ..reg
    };
    let resp = exchange(&mut conn, wire::REQ_REGISTER, &bad.encode());
    let err = WireError::decode(&resp.payload).expect("decode");
    assert_eq!(err.code, 400);

    drop(conn);
    assert_eq!(server.shutdown().worker_panics, 0);
}

#[test]
fn grammar_over_the_wire_registers_serves_and_redefines() {
    use two4one_langs::grammar;

    let server = NetServer::bind(
        Arc::new(SpecService::new()),
        NetConfig {
            // Grammar registration runs cogen inline; give it room in
            // debug builds instead of racing the reaper.
            request_deadline: Duration::from_secs(30),
            ..quick_config()
        },
    )
    .expect("bind");
    let mut conn = connect(&server);

    let grammar_frame = |text: &str| {
        wire::GrammarWireRequest {
            token: String::new(),
            name: "word".into(),
            text: text.into(),
        }
        .encode()
    };
    let fetch_recognizer = |conn: &mut TcpStream| {
        let obj = exchange(
            conn,
            wire::REQ_SPEC,
            &spec_frame("word", "", wire::WANT_OBJECT),
        );
        assert_eq!(obj.ftype, wire::RESP_OBJECT);
        two4one::decode_image(&obj.payload).expect("decode recognizer")
    };
    let accepts = |img: &two4one::Image, word: &str| {
        let out = run_image(img, img.entry.as_str(), &[grammar::input_datum(word)])
            .expect("run recognizer");
        out.value == two4one::Datum::Bool(true)
    };

    // Register a grammar by name: the server parses, checks LL(1),
    // builds the matcher workload, and cogens a recognizer gen-ext.
    let resp = exchange(
        &mut conn,
        wire::REQ_GRAMMAR,
        &grammar_frame("((word (plus letter))\n (letter (alt a b c)))"),
    );
    assert_eq!(resp.ftype, wire::RESP_META);
    let text = String::from_utf8(resp.payload).expect("utf8");
    assert!(text.contains("\"registered\": \"word\""), "{text}");
    assert!(text.contains("\"epoch\": 1"), "{text}");
    assert!(text.contains("\"rules\": 2"), "{text}");

    // The registered grammar serves REQ_SPEC like any named program: an
    // empty statics string specializes the (all-dynamic) matcher and the
    // residual recognizer comes back as a loadable object.
    let v1 = fetch_recognizer(&mut conn);
    assert!(accepts(&v1, "abcba"));
    assert!(!accepts(&v1, "abd"));
    assert!(!accepts(&v1, ""));

    // Redefining the grammar under the same name bumps the epoch and
    // invalidates the cached recognizer...
    let resp = exchange(
        &mut conn,
        wire::REQ_GRAMMAR,
        &grammar_frame("((word (plus letter))\n (letter (alt d e)))"),
    );
    let text = String::from_utf8(resp.payload).expect("utf8");
    assert!(text.contains("\"epoch\": 2"), "{text}");

    // ...so the next fetch serves the *new* language, not the stale one.
    let v2 = fetch_recognizer(&mut conn);
    assert!(accepts(&v2, "dede"));
    assert!(!accepts(&v2, "abcba"));

    // Rejected grammars are typed 400s naming the defect, and the
    // connection stays usable.
    let resp = exchange(
        &mut conn,
        wire::REQ_GRAMMAR,
        &grammar_frame("((word word))"),
    );
    assert_eq!(resp.ftype, wire::RESP_ERROR);
    let err = WireError::decode(&resp.payload).expect("decode 400");
    assert_eq!(err.code, 400);
    assert!(err.message.contains("bad grammar"), "{}", err.message);
    let pong = exchange(&mut conn, wire::REQ_PING, &[]);
    assert_eq!(pong.ftype, wire::RESP_PONG);

    drop(conn);
    let snap = server.shutdown();
    assert_eq!(snap.worker_panics, 0);
    assert_eq!(snap.match_registered, 2, "{snap}");
    assert_eq!(snap.match_rejected, 1, "{snap}");
}

#[test]
fn http_endpoints_serve_health_metrics_stats_and_spec() {
    let server = NetServer::bind(service_with_power(), quick_config()).expect("bind");

    let health = http_request(&server, "GET", "/healthz", "");
    assert!(health.starts_with("HTTP/1.1 200 OK"), "{health}");
    assert!(health.ends_with("ok\n"), "{health}");

    let spec = http_request(
        &server,
        "POST",
        "/spec",
        r#"{"name": "power", "statics": ["5"], "deadline_ms": 5000}"#,
    );
    assert!(spec.starts_with("HTTP/1.1 200 OK"), "{spec}");
    assert!(spec.contains("\"code_size\""), "{spec}");

    // The statics field also accepts a single string.
    let spec = http_request(
        &server,
        "POST",
        "/spec",
        r#"{"name": "power", "statics": "6"}"#,
    );
    assert!(spec.starts_with("HTTP/1.1 200 OK"), "{spec}");

    let metrics = http_request(&server, "GET", "/metrics", "");
    assert!(
        metrics.contains("t4o_net_conns_accepted_total"),
        "missing net family"
    );
    assert!(
        metrics.contains("t4o_net_conns_reaped_total"),
        "missing reaped family"
    );
    assert!(metrics.contains("t4o_serve"), "missing serve families");

    let stats = http_request(&server, "GET", "/stats", "");
    assert!(stats.contains("\"net\""), "{stats}");
    assert!(stats.contains("\"requests_http\""), "{stats}");

    // Typed HTTP failures: bad JSON, missing program, missing endpoint.
    let bad = http_request(&server, "POST", "/spec", "{not json");
    assert!(bad.starts_with("HTTP/1.1 400"), "{bad}");
    let missing = http_request(&server, "POST", "/spec", r#"{"name": "nope"}"#);
    assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");
    let nowhere = http_request(&server, "GET", "/nope", "");
    assert!(nowhere.starts_with("HTTP/1.1 404"), "{nowhere}");
    let method = http_request(&server, "DELETE", "/spec", "");
    assert!(method.starts_with("HTTP/1.1 405"), "{method}");

    let snap = server.shutdown();
    assert_eq!(snap.worker_panics, 0);
    assert!(snap.requests_http >= 8);
}

// ---- tenants -----------------------------------------------------------

#[test]
fn tenant_auth_and_fair_share_quota() {
    let latch = Arc::new(Latch::default());
    let hook_latch = Arc::clone(&latch);
    let service = Arc::new(SpecService::with_config(ServeConfig {
        fill_hook: Some(FillHook::new(move || hook_latch.wait())),
        ..ServeConfig::default()
    }));
    {
        let pgg = Pgg::new();
        let program = pgg.parse(POWER).expect("parse");
        let ext = pgg
            .cogen(&program, "power", &Division::new([BT::Static, BT::Dynamic]))
            .expect("cogen");
        service.register("power", &ext);
    }
    let tenants = TenantTable::parse("tok-a alpha 1\ntok-b beta 2\n").expect("tenants");
    let server = NetServer::bind(
        service,
        NetConfig {
            tenants: Some(tenants),
            // Long enough that the parked fill survives until the latch
            // opens; per-request deadlines below keep the rest snappy.
            request_deadline: Duration::from_secs(30),
            ..quick_config()
        },
    )
    .expect("bind");

    // Unknown and missing tokens: 401 on both protocols.
    let mut conn = connect(&server);
    let req = SpecWireRequest {
        token: "wrong".into(),
        name: "power".into(),
        statics: "5".into(),
        deadline_ms: 0,
        want: wire::WANT_META,
    };
    let resp = exchange(&mut conn, wire::REQ_SPEC, &req.encode());
    assert_eq!(WireError::decode(&resp.payload).expect("401").code, 401);
    let http = http_request(
        &server,
        "POST",
        "/spec",
        r#"{"name": "power", "statics": "5"}"#,
    );
    assert!(http.starts_with("HTTP/1.1 401"), "{http}");

    // Park alpha's one quota slot in a fill, then hit the quota.
    let parked_server_addr = server.addr();
    let parked = std::thread::spawn(move || {
        let mut stream = TcpStream::connect(parked_server_addr).expect("connect parked");
        let req = SpecWireRequest {
            token: "tok-a".into(),
            name: "power".into(),
            statics: "9".into(),
            deadline_ms: 30_000,
            want: wire::WANT_META,
        };
        stream
            .write_all(&wire::encode_frame(wire::REQ_SPEC, &req.encode()))
            .expect("send parked");
        wire::read_frame(&mut stream, 1 << 20)
    });
    assert!(
        eventually(|| server.service().inflight() == 1),
        "fill never started"
    );

    let over = http_request(
        &server,
        "POST",
        "/spec",
        r#"{"name": "power", "statics": "10", "token": "tok-a"}"#,
    );
    assert!(over.starts_with("HTTP/1.1 429"), "{over}");
    assert!(over.contains("Retry-After:"), "{over}");
    assert!(over.contains("retry_after_ms"), "{over}");

    // A different tenant is not starved by alpha's noise: beta passes the
    // tenant layer (its fill may still time out on the latch everyone
    // shares, but it is never 401'd or quota-bounced).
    let beta = http_request(
        &server,
        "POST",
        "/spec",
        r#"{"name": "power", "statics": "5", "token": "tok-b", "want": "meta", "deadline_ms": 300}"#,
    );
    assert!(
        !beta.starts_with("HTTP/1.1 401") && !beta.starts_with("HTTP/1.1 429"),
        "{beta}"
    );

    latch.release();
    let parked_result = parked.join().expect("parked thread");
    assert!(matches!(parked_result, Ok(Some(ref f)) if f.ftype == wire::RESP_META));

    let snap = server.shutdown();
    assert!(snap.auth_failures >= 2, "{snap}");
    assert!(snap.tenant_rejections >= 1, "{snap}");
    assert!(snap.overloaded >= 1, "{snap}");
    assert_eq!(snap.worker_panics, 0);
}

// ---- disconnect cancellation -------------------------------------------

#[test]
fn client_disconnect_cancels_inflight_work() {
    let service = service_with_power();
    register_spin(&service);
    let server = NetServer::bind(
        service,
        NetConfig {
            // Long enough that only cancellation (not the deadline) can
            // end the request within the test's patience.
            request_deadline: Duration::from_secs(30),
            io_tick: Duration::from_millis(10),
            ..NetConfig::default()
        },
    )
    .expect("bind");

    let mut conn = connect(&server);
    conn.write_all(&wire::encode_frame(
        wire::REQ_SPEC,
        &spec_frame("spin", "50000000", wire::WANT_META),
    ))
    .expect("send spin");
    // Give the handler a moment to enter the service, then vanish.
    assert!(
        eventually(|| server.service().inflight() == 1),
        "spin never started"
    );
    drop(conn);

    assert!(
        eventually(|| server.net_snapshot().disconnects >= 1),
        "reaper never noticed the disconnect: {}",
        server.net_snapshot()
    );
    assert!(
        eventually(|| server.service().inflight() == 0),
        "cancelled flight still inflight"
    );
    let snap = server.shutdown();
    assert_eq!(snap.worker_panics, 0);
}

// ---- the storm ---------------------------------------------------------

/// One hostile client connection, driven by a seeded fault plan. Every
/// I/O failure is swallowed: hostile clients losing their sockets is the
/// expected outcome.
fn hostile_client(addr: std::net::SocketAddr, seed: u64) {
    let Ok(mut stream) = TcpStream::connect(addr) else {
        return;
    };
    let _ = stream.set_write_timeout(Some(Duration::from_millis(200)));
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let frame = wire::encode_frame(wire::REQ_SPEC, &spec_frame("power", "6", wire::WANT_META));
    let mut rng = Rng::new(seed);
    match gen_wire_fault(&mut rng, frame.len(), Duration::from_millis(40)) {
        WireFault::TornFrame { keep } => {
            let _ = stream.write_all(&frame[..keep]);
            // Slam shut mid-frame.
        }
        WireFault::GarbageBytes(bytes) => {
            let _ = stream.write_all(&bytes);
            let mut sink = [0u8; 256];
            let _ = stream.read(&mut sink);
        }
        WireFault::StalledWriter { pause } => {
            // Trickle the frame slowly; with 16+ bytes at 40 ms each the
            // server's request deadline trips first and reaps us.
            for b in &frame {
                if stream.write_all(std::slice::from_ref(b)).is_err() {
                    return;
                }
                std::thread::sleep(pause);
            }
        }
        WireFault::MidStreamAbort => {
            let _ = stream.write_all(&frame);
            // Disconnect without reading the answer.
        }
    }
}

#[test]
fn adversarial_storm_leaves_server_healthy() {
    const THREADS: usize = 8;
    const CONNS_PER_THREAD: u64 = 6;

    let server = Arc::new(
        NetServer::bind(
            service_with_power(),
            NetConfig {
                io_tick: Duration::from_millis(10),
                idle_timeout: Duration::from_millis(250),
                request_deadline: Duration::from_millis(300),
                ..NetConfig::default()
            },
        )
        .expect("bind"),
    );
    let addr = server.addr();

    let mut workers = Vec::new();
    for t in 0..THREADS as u64 {
        let server = Arc::clone(&server);
        workers.push(std::thread::spawn(move || {
            for i in 0..CONNS_PER_THREAD {
                hostile_client(addr, t * 1000 + i);
                // Interleave a well-formed request so good traffic runs
                // *during* the storm, not only after it.
                if let Ok(mut good) = TcpStream::connect(addr) {
                    let _ = good.set_read_timeout(Some(Duration::from_secs(5)));
                    let frame = wire::encode_frame(wire::REQ_PING, &[]);
                    if good.write_all(&frame).is_ok() {
                        let _ = wire::read_frame(&mut good, 1 << 20);
                    }
                }
                let _ = &server; // keep the server alive for the whole storm
            }
        }));
    }
    for w in workers {
        w.join().expect("storm worker");
    }

    // The wire is still up: a fresh, polite client gets a real answer.
    let mut conn = connect(&server);
    let meta = exchange(
        &mut conn,
        wire::REQ_SPEC,
        &spec_frame("power", "5", wire::WANT_META),
    );
    assert_eq!(meta.ftype, wire::RESP_META);
    drop(conn);

    // Slow-loris and stalled writers were reaped, garbage produced typed
    // protocol errors, nobody panicked, and nothing is stranded.
    assert!(
        eventually(|| server.net_snapshot().conns_reaped > 0),
        "no connection was ever reaped: {}",
        server.net_snapshot()
    );
    assert!(eventually(|| server.net_snapshot().open_conns == 0));
    assert_eq!(server.service().inflight(), 0, "stranded flights");
    let snap = server.net_snapshot();
    assert_eq!(snap.worker_panics, 0, "{snap}");
    assert!(snap.protocol_errors > 0, "{snap}");
    assert!(snap.disconnects > 0, "{snap}");

    let server = Arc::into_inner(server).expect("sole owner");
    let snap = server.shutdown();
    assert_eq!(snap.worker_panics, 0);
}

// ---- drain -------------------------------------------------------------

#[test]
fn drain_finishes_inflight_work_and_closes_idle_connections() {
    let latch = Arc::new(Latch::default());
    let hook_latch = Arc::clone(&latch);
    let service = Arc::new(SpecService::with_config(ServeConfig {
        fill_hook: Some(FillHook::new(move || hook_latch.wait())),
        ..ServeConfig::default()
    }));
    {
        let pgg = Pgg::new();
        let program = pgg.parse(POWER).expect("parse");
        let ext = pgg
            .cogen(&program, "power", &Division::new([BT::Static, BT::Dynamic]))
            .expect("cogen");
        service.register("power", &ext);
    }
    let server = NetServer::bind(
        service,
        NetConfig {
            io_tick: Duration::from_millis(10),
            drain_timeout: Duration::from_secs(3),
            ..NetConfig::default()
        },
    )
    .expect("bind");
    let addr = server.addr();

    // One request parked inside the service, one idle keep-alive
    // connection doing nothing.
    let inflight = std::thread::spawn(move || {
        let mut stream = TcpStream::connect(addr).expect("connect inflight");
        stream
            .write_all(&wire::encode_frame(
                wire::REQ_SPEC,
                &spec_frame("power", "11", wire::WANT_META),
            ))
            .expect("send");
        wire::read_frame(&mut stream, 1 << 20)
    });
    let idle = connect(&server);
    assert!(
        eventually(|| server.service().inflight() == 1),
        "fill never started"
    );

    server.drain();
    assert!(server.draining());
    // New work is refused while draining; health says so.
    let health = http_request(&server, "GET", "/healthz", "");
    assert!(
        health.is_empty() || health.starts_with("HTTP/1.1 503"),
        "draining health: {health}"
    );

    // The parked request finishes once the latch opens — drain waits for
    // it instead of killing it.
    latch.release();
    let result = inflight.join().expect("inflight thread");
    assert!(
        matches!(result, Ok(Some(ref f)) if f.ftype == wire::RESP_META),
        "in-flight request should complete during drain: {result:?}"
    );

    let snap = server.join();
    assert_eq!(snap.open_conns, 0, "{snap}");
    assert_eq!(snap.drain_events, 1, "{snap}");
    assert_eq!(snap.worker_panics, 0, "{snap}");
    drop(idle);
}
