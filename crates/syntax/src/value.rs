//! The runtime value domain, generic over the procedure representation.
//!
//! The tree-walking interpreter (`two4one-interp`) and the byte-code VM
//! (`two4one-vm`) use different closure representations but identical
//! first-order values and primitive semantics. [`Value`] is therefore
//! parameterized over a [`ProcRepr`], and [`apply_prim`] implements every
//! primitive once, for all engines — including the partial evaluator, which
//! applies pure primitives to static data via [`NoProc`].

use crate::datum::Datum;
use crate::prim::{Arity, Prim};
use crate::symbol::Symbol;
use std::fmt;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Procedure representation used inside a [`Value`].
pub trait ProcRepr: Clone {
    /// Identity comparison, used by `eq?`/`eqv?`.
    fn ptr_eq(&self, other: &Self) -> bool;
    /// Short human-readable description for error messages and `display`.
    fn describe(&self) -> String;
}

/// The uninhabited procedure representation: a value domain with no
/// procedures at all, used when evaluating primitives over pure data
/// (e.g. at specialization time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NoProc {}

impl ProcRepr for NoProc {
    fn ptr_eq(&self, _other: &Self) -> bool {
        match *self {}
    }
    fn describe(&self) -> String {
        match *self {}
    }
}

/// A runtime value.
#[derive(Clone)]
pub enum Value<P> {
    /// An exact integer.
    Int(i64),
    /// A boolean.
    Bool(bool),
    /// A character.
    Char(char),
    /// A symbol.
    Sym(Symbol),
    /// An immutable string.
    Str(Arc<str>),
    /// The empty list.
    Nil,
    /// The unspecified value.
    Unspec,
    /// An immutable pair.
    Pair(Arc<(Value<P>, Value<P>)>),
    /// A mutable cell (the target of assignment elimination).
    Cell(Arc<Mutex<Value<P>>>),
    /// A procedure.
    Proc(P),
}

impl<P> Value<P> {
    /// Constructs a pair.
    pub fn cons(car: Value<P>, cdr: Value<P>) -> Value<P> {
        Value::Pair(Arc::new((car, cdr)))
    }

    /// Constructs a proper list.
    pub fn list<I>(items: I) -> Value<P>
    where
        I: IntoIterator<Item = Value<P>>,
        I::IntoIter: DoubleEndedIterator,
    {
        items
            .into_iter()
            .rev()
            .fold(Value::Nil, |acc, v| Value::cons(v, acc))
    }

    /// Scheme truthiness: everything except `#f` is true.
    pub fn is_truthy(&self) -> bool {
        !matches!(self, Value::Bool(false))
    }

    /// A short type name for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Int(_) => "number",
            Value::Bool(_) => "boolean",
            Value::Char(_) => "char",
            Value::Sym(_) => "symbol",
            Value::Str(_) => "string",
            Value::Nil => "()",
            Value::Unspec => "unspecified",
            Value::Pair(_) => "pair",
            Value::Cell(_) => "cell",
            Value::Proc(_) => "procedure",
        }
    }
}

impl<P: ProcRepr> Value<P> {
    /// Converts first-order data to a [`Datum`]; `None` if the value
    /// contains a procedure or a mutable cell.
    pub fn to_datum(&self) -> Option<Datum> {
        Some(match self {
            Value::Int(n) => Datum::Int(*n),
            Value::Bool(b) => Datum::Bool(*b),
            Value::Char(c) => Datum::Char(*c),
            Value::Sym(s) => Datum::Sym(*s),
            Value::Str(s) => Datum::Str(s.clone()),
            Value::Nil => Datum::Nil,
            Value::Unspec => Datum::Unspec,
            Value::Pair(p) => Datum::cons(p.0.to_datum()?, p.1.to_datum()?),
            Value::Cell(_) | Value::Proc(_) => return None,
        })
    }
}

impl<P> From<&Datum> for Value<P> {
    fn from(d: &Datum) -> Self {
        match d {
            Datum::Nil => Value::Nil,
            Datum::Unspec => Value::Unspec,
            Datum::Bool(b) => Value::Bool(*b),
            Datum::Int(n) => Value::Int(*n),
            Datum::Char(c) => Value::Char(*c),
            Datum::Str(s) => Value::Str(s.clone()),
            Datum::Sym(s) => Value::Sym(*s),
            Datum::Pair(p) => Value::cons(Value::from(&p.car), Value::from(&p.cdr)),
        }
    }
}

impl<P: ProcRepr> fmt::Debug for Value<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&write_string(self))
    }
}

impl<P: ProcRepr> fmt::Display for Value<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&display_string(self))
    }
}

impl<P: ProcRepr> PartialEq for Value<P> {
    /// Structural equality (`equal?` semantics).
    fn eq(&self, other: &Self) -> bool {
        equal(self, other)
    }
}

/// Locks a mutable cell, recovering the guard even if a panicking thread
/// poisoned the lock (cell contents are always in a consistent state: the
/// only writes are whole-value replacement via `set-box!`).
fn lock_cell<P>(c: &Mutex<Value<P>>) -> MutexGuard<'_, Value<P>> {
    c.lock().unwrap_or_else(PoisonError::into_inner)
}

fn fmt_value<P: ProcRepr>(v: &Value<P>, write: bool, out: &mut String) {
    match v {
        Value::Str(s) if !write => out.push_str(s),
        Value::Char(c) if !write => out.push(*c),
        Value::Int(_)
        | Value::Bool(_)
        | Value::Char(_)
        | Value::Sym(_)
        | Value::Str(_)
        | Value::Nil
        | Value::Unspec => {
            let d: Datum = match v {
                Value::Int(n) => Datum::Int(*n),
                Value::Bool(b) => Datum::Bool(*b),
                Value::Char(c) => Datum::Char(*c),
                Value::Sym(s) => Datum::Sym(*s),
                Value::Str(s) => Datum::Str(s.clone()),
                Value::Nil => Datum::Nil,
                _ => Datum::Unspec,
            };
            out.push_str(&d.to_string());
        }
        Value::Pair(_) => {
            out.push('(');
            let mut cur = v;
            let mut first = true;
            loop {
                match cur {
                    Value::Pair(p) => {
                        if !first {
                            out.push(' ');
                        }
                        first = false;
                        fmt_value(&p.0, write, out);
                        cur = &p.1;
                    }
                    Value::Nil => break,
                    other => {
                        out.push_str(" . ");
                        fmt_value(other, write, out);
                        break;
                    }
                }
            }
            out.push(')');
        }
        Value::Cell(c) => {
            out.push_str("#<cell ");
            let inner = lock_cell(c).clone();
            fmt_value(&inner, write, out);
            out.push('>');
        }
        Value::Proc(p) => {
            out.push_str("#<procedure ");
            out.push_str(&p.describe());
            out.push('>');
        }
    }
}

/// `display`-style rendering (strings unquoted).
pub fn display_string<P: ProcRepr>(v: &Value<P>) -> String {
    let mut s = String::new();
    fmt_value(v, false, &mut s);
    s
}

/// `write`-style rendering (strings quoted).
pub fn write_string<P: ProcRepr>(v: &Value<P>) -> String {
    let mut s = String::new();
    fmt_value(v, true, &mut s);
    s
}

/// Errors raised by primitive application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PrimError {
    /// Wrong number of arguments.
    BadArity {
        /// The primitive.
        prim: Prim,
        /// What it wanted.
        expected: Arity,
        /// What it got.
        got: usize,
    },
    /// Wrong argument type.
    TypeError {
        /// The primitive.
        prim: Prim,
        /// Expected type description.
        expected: &'static str,
        /// Rendering of the offending value.
        got: String,
    },
    /// Division or modulus by zero.
    DivisionByZero(Prim),
    /// Arithmetic overflow of `i64`.
    Overflow(Prim),
    /// Index out of range (`list-ref`, `integer->char`).
    OutOfRange(Prim, String),
    /// The `error` primitive was called.
    User(String),
}

impl fmt::Display for PrimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrimError::BadArity {
                prim,
                expected,
                got,
            } => write!(f, "`{prim}` expects {expected} argument(s), got {got}"),
            PrimError::TypeError {
                prim,
                expected,
                got,
            } => write!(f, "`{prim}` expects {expected}, got {got}"),
            PrimError::DivisionByZero(p) => write!(f, "`{p}`: division by zero"),
            PrimError::Overflow(p) => write!(f, "`{p}`: integer overflow"),
            PrimError::OutOfRange(p, s) => write!(f, "`{p}`: out of range: {s}"),
            PrimError::User(msg) => write!(f, "error: {msg}"),
        }
    }
}

impl std::error::Error for PrimError {}

/// Identity (`eq?`/`eqv?`) comparison.
pub fn eqv<P: ProcRepr>(a: &Value<P>, b: &Value<P>) -> bool {
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => x == y,
        (Value::Bool(x), Value::Bool(y)) => x == y,
        (Value::Char(x), Value::Char(y)) => x == y,
        (Value::Sym(x), Value::Sym(y)) => x == y,
        (Value::Nil, Value::Nil) => true,
        (Value::Unspec, Value::Unspec) => true,
        (Value::Str(x), Value::Str(y)) => Arc::ptr_eq(x, y),
        (Value::Pair(x), Value::Pair(y)) => Arc::ptr_eq(x, y),
        (Value::Cell(x), Value::Cell(y)) => Arc::ptr_eq(x, y),
        (Value::Proc(x), Value::Proc(y)) => x.ptr_eq(y),
        _ => false,
    }
}

/// Structural (`equal?`) comparison.
pub fn equal<P: ProcRepr>(a: &Value<P>, b: &Value<P>) -> bool {
    match (a, b) {
        (Value::Str(x), Value::Str(y)) => x == y,
        (Value::Pair(x), Value::Pair(y)) => equal(&x.0, &y.0) && equal(&x.1, &y.1),
        _ => eqv(a, b),
    }
}

fn want_int<P: ProcRepr>(p: Prim, v: &Value<P>) -> Result<i64, PrimError> {
    match v {
        Value::Int(n) => Ok(*n),
        other => Err(PrimError::TypeError {
            prim: p,
            expected: "a number",
            got: write_string(other),
        }),
    }
}

type PairRef<P> = Arc<(Value<P>, Value<P>)>;

fn want_pair<P: ProcRepr>(p: Prim, v: &Value<P>) -> Result<&PairRef<P>, PrimError> {
    match v {
        Value::Pair(pr) => Ok(pr),
        other => Err(PrimError::TypeError {
            prim: p,
            expected: "a pair",
            got: write_string(other),
        }),
    }
}

fn want_str<P: ProcRepr>(p: Prim, v: &Value<P>) -> Result<&Arc<str>, PrimError> {
    match v {
        Value::Str(s) => Ok(s),
        other => Err(PrimError::TypeError {
            prim: p,
            expected: "a string",
            got: write_string(other),
        }),
    }
}

fn bool_chain<P: ProcRepr>(
    p: Prim,
    args: &[Value<P>],
    f: impl Fn(i64, i64) -> bool,
) -> Result<Value<P>, PrimError> {
    for w in args.windows(2) {
        if !f(want_int(p, &w[0])?, want_int(p, &w[1])?) {
            return Ok(Value::Bool(false));
        }
    }
    Ok(Value::Bool(true))
}

fn checked(p: Prim, v: Option<i64>) -> Result<i64, PrimError> {
    v.ok_or(PrimError::Overflow(p))
}

/// Applies a primitive to argument values.
///
/// `out` collects the output of `display`/`write`/`newline` so engines can
/// direct it wherever they like.
///
/// # Errors
///
/// Returns a [`PrimError`] on arity or type mismatches, arithmetic faults,
/// or when the `error` primitive is invoked.
pub fn apply_prim<P: ProcRepr>(
    p: Prim,
    args: &[Value<P>],
    out: &mut String,
) -> Result<Value<P>, PrimError> {
    if !p.arity().admits(args.len()) {
        return Err(PrimError::BadArity {
            prim: p,
            expected: p.arity(),
            got: args.len(),
        });
    }
    let int = |v: &Value<P>| want_int(p, v);
    Ok(match p {
        Prim::Add => {
            let mut acc: i64 = 0;
            for a in args {
                acc = acc.checked_add(int(a)?).ok_or(PrimError::Overflow(p))?;
            }
            Value::Int(acc)
        }
        Prim::Sub => {
            let first = int(&args[0])?;
            if args.len() == 1 {
                Value::Int(first.checked_neg().ok_or(PrimError::Overflow(p))?)
            } else {
                let mut acc = first;
                for a in &args[1..] {
                    acc = acc.checked_sub(int(a)?).ok_or(PrimError::Overflow(p))?;
                }
                Value::Int(acc)
            }
        }
        Prim::Mul => {
            let mut acc: i64 = 1;
            for a in args {
                acc = acc.checked_mul(int(a)?).ok_or(PrimError::Overflow(p))?;
            }
            Value::Int(acc)
        }
        Prim::Quotient | Prim::Remainder | Prim::Modulo => {
            let a = int(&args[0])?;
            let b = int(&args[1])?;
            if b == 0 {
                return Err(PrimError::DivisionByZero(p));
            }
            let r = match p {
                Prim::Quotient => a.checked_div(b),
                Prim::Remainder => a.checked_rem(b),
                Prim::Modulo => a.checked_rem_euclid(b).map(|r| {
                    // `rem_euclid` is always nonnegative; Scheme `modulo`
                    // takes the sign of the divisor.
                    if b < 0 && r != 0 {
                        r + b
                    } else {
                        r
                    }
                }),
                _ => unreachable!(),
            };
            Value::Int(checked(p, r)?)
        }
        Prim::Abs => Value::Int(int(&args[0])?.checked_abs().ok_or(PrimError::Overflow(p))?),
        Prim::Min => {
            let mut acc = int(&args[0])?;
            for a in &args[1..] {
                acc = acc.min(int(a)?);
            }
            Value::Int(acc)
        }
        Prim::Max => {
            let mut acc = int(&args[0])?;
            for a in &args[1..] {
                acc = acc.max(int(a)?);
            }
            Value::Int(acc)
        }
        Prim::NumEq => bool_chain(p, args, |a, b| a == b)?,
        Prim::Lt => bool_chain(p, args, |a, b| a < b)?,
        Prim::Le => bool_chain(p, args, |a, b| a <= b)?,
        Prim::Gt => bool_chain(p, args, |a, b| a > b)?,
        Prim::Ge => bool_chain(p, args, |a, b| a >= b)?,
        Prim::ZeroP => Value::Bool(int(&args[0])? == 0),
        Prim::EqP | Prim::EqvP => Value::Bool(eqv(&args[0], &args[1])),
        Prim::EqualP => Value::Bool(equal(&args[0], &args[1])),
        Prim::Not => Value::Bool(!args[0].is_truthy()),
        Prim::Cons => Value::cons(args[0].clone(), args[1].clone()),
        Prim::Car => want_pair(p, &args[0])?.0.clone(),
        Prim::Cdr => want_pair(p, &args[0])?.1.clone(),
        Prim::PairP => Value::Bool(matches!(args[0], Value::Pair(_))),
        Prim::NullP => Value::Bool(matches!(args[0], Value::Nil)),
        Prim::List => Value::list(args.to_vec()),
        Prim::Append => {
            let mut parts: Vec<Vec<Value<P>>> = Vec::new();
            let last = args.last().cloned().unwrap_or(Value::Nil);
            for a in &args[..args.len().saturating_sub(1)] {
                let mut items = Vec::new();
                let mut cur = a.clone();
                loop {
                    match cur {
                        Value::Nil => break,
                        Value::Pair(pr) => {
                            items.push(pr.0.clone());
                            cur = pr.1.clone();
                        }
                        other => {
                            return Err(PrimError::TypeError {
                                prim: p,
                                expected: "a proper list",
                                got: write_string(&other),
                            })
                        }
                    }
                }
                parts.push(items);
            }
            let mut acc = last;
            for items in parts.into_iter().rev() {
                for v in items.into_iter().rev() {
                    acc = Value::cons(v, acc);
                }
            }
            acc
        }
        Prim::Length => {
            let mut n: i64 = 0;
            let mut cur = args[0].clone();
            loop {
                match cur {
                    Value::Nil => break Value::Int(n),
                    Value::Pair(pr) => {
                        n += 1;
                        cur = pr.1.clone();
                    }
                    other => {
                        return Err(PrimError::TypeError {
                            prim: p,
                            expected: "a proper list",
                            got: write_string(&other),
                        })
                    }
                }
            }
        }
        Prim::Reverse => {
            let mut acc = Value::Nil;
            let mut cur = args[0].clone();
            loop {
                match cur {
                    Value::Nil => break acc,
                    Value::Pair(pr) => {
                        acc = Value::cons(pr.0.clone(), acc);
                        cur = pr.1.clone();
                    }
                    other => {
                        return Err(PrimError::TypeError {
                            prim: p,
                            expected: "a proper list",
                            got: write_string(&other),
                        })
                    }
                }
            }
        }
        Prim::ListRef => {
            let mut k = int(&args[1])?;
            if k < 0 {
                return Err(PrimError::OutOfRange(p, k.to_string()));
            }
            let mut cur = args[0].clone();
            loop {
                match cur {
                    Value::Pair(pr) => {
                        if k == 0 {
                            break pr.0.clone();
                        }
                        k -= 1;
                        cur = pr.1.clone();
                    }
                    other => {
                        return Err(PrimError::OutOfRange(p, write_string(&other)));
                    }
                }
            }
        }
        Prim::Memq | Prim::Member => {
            let same: fn(&Value<P>, &Value<P>) -> bool = if p == Prim::Memq { eqv } else { equal };
            let mut cur = args[1].clone();
            loop {
                match cur {
                    Value::Nil => break Value::Bool(false),
                    Value::Pair(ref pr) => {
                        if same(&args[0], &pr.0) {
                            break cur.clone();
                        }
                        let next = pr.1.clone();
                        cur = next;
                    }
                    other => {
                        return Err(PrimError::TypeError {
                            prim: p,
                            expected: "a proper list",
                            got: write_string(&other),
                        })
                    }
                }
            }
        }
        Prim::Assq | Prim::Assoc => {
            let same: fn(&Value<P>, &Value<P>) -> bool = if p == Prim::Assq { eqv } else { equal };
            let mut cur = args[1].clone();
            loop {
                match cur {
                    Value::Nil => break Value::Bool(false),
                    Value::Pair(pr) => {
                        if let Value::Pair(entry) = &pr.0 {
                            if same(&args[0], &entry.0) {
                                break pr.0.clone();
                            }
                        }
                        cur = pr.1.clone();
                    }
                    other => {
                        return Err(PrimError::TypeError {
                            prim: p,
                            expected: "an association list",
                            got: write_string(&other),
                        })
                    }
                }
            }
        }
        Prim::SymbolP => Value::Bool(matches!(args[0], Value::Sym(_))),
        Prim::NumberP => Value::Bool(matches!(args[0], Value::Int(_))),
        Prim::StringP => Value::Bool(matches!(args[0], Value::Str(_))),
        Prim::BooleanP => Value::Bool(matches!(args[0], Value::Bool(_))),
        Prim::CharP => Value::Bool(matches!(args[0], Value::Char(_))),
        Prim::ProcedureP => Value::Bool(matches!(args[0], Value::Proc(_))),
        Prim::ListP => {
            let mut cur = args[0].clone();
            loop {
                match cur {
                    Value::Nil => break Value::Bool(true),
                    Value::Pair(pr) => cur = pr.1.clone(),
                    _ => break Value::Bool(false),
                }
            }
        }
        Prim::SymbolToString => match &args[0] {
            Value::Sym(s) => Value::Str(Arc::from(s.as_str())),
            other => {
                return Err(PrimError::TypeError {
                    prim: p,
                    expected: "a symbol",
                    got: write_string(other),
                })
            }
        },
        Prim::StringToSymbol => Value::Sym(Symbol::new(want_str(p, &args[0])?)),
        Prim::StringAppend => {
            let mut s = String::new();
            for a in args {
                s.push_str(want_str(p, a)?);
            }
            Value::Str(Arc::from(s.as_str()))
        }
        Prim::StringLength => Value::Int(want_str(p, &args[0])?.chars().count() as i64),
        Prim::NumberToString => Value::Str(Arc::from(int(&args[0])?.to_string().as_str())),
        Prim::StringEqualP => Value::Bool(want_str(p, &args[0])? == want_str(p, &args[1])?),
        Prim::CharToInteger => match &args[0] {
            Value::Char(c) => Value::Int(*c as i64),
            other => {
                return Err(PrimError::TypeError {
                    prim: p,
                    expected: "a char",
                    got: write_string(other),
                })
            }
        },
        Prim::IntegerToChar => {
            let n = int(&args[0])?;
            let c = u32::try_from(n)
                .ok()
                .and_then(char::from_u32)
                .ok_or_else(|| PrimError::OutOfRange(p, n.to_string()))?;
            Value::Char(c)
        }
        Prim::Display => {
            out.push_str(&display_string(&args[0]));
            Value::Unspec
        }
        Prim::Write => {
            out.push_str(&write_string(&args[0]));
            Value::Unspec
        }
        Prim::Newline => {
            out.push('\n');
            Value::Unspec
        }
        Prim::Error => {
            let mut msg = display_string(&args[0]);
            for a in &args[1..] {
                msg.push(' ');
                msg.push_str(&write_string(a));
            }
            return Err(PrimError::User(msg));
        }
        Prim::BoxNew => Value::Cell(Arc::new(Mutex::new(args[0].clone()))),
        Prim::BoxRef => match &args[0] {
            Value::Cell(c) => lock_cell(c).clone(),
            other => {
                return Err(PrimError::TypeError {
                    prim: p,
                    expected: "a cell",
                    got: write_string(other),
                })
            }
        },
        Prim::BoxSet => match &args[0] {
            Value::Cell(c) => {
                *lock_cell(c) = args[1].clone();
                Value::Unspec
            }
            other => {
                return Err(PrimError::TypeError {
                    prim: p,
                    expected: "a cell",
                    got: write_string(other),
                })
            }
        },
    })
}

/// Applies a *pure* primitive to first-order data, as the specializer does
/// with all-static arguments.
///
/// # Errors
///
/// Fails like [`apply_prim`]; additionally returns a `TypeError`-flavored
/// error if called on an impure primitive (callers should check
/// [`Prim::is_pure`] first).
pub fn apply_prim_datum(p: Prim, args: &[Datum]) -> Result<Datum, PrimError> {
    // Fast path: the structural and arithmetic primitives evaluate
    // directly on the refcounted data. Only when it cannot answer —
    // string/char/effect primitives, or a fault whose error message the
    // slow path owns — is the Value round trip taken.
    if let Some(Ok(d)) = apply_prim_datum_direct(p, args) {
        return Ok(d);
    }
    let vals: Vec<Value<NoProc>> = args.iter().map(Value::from).collect();
    let mut out = String::new();
    let v = apply_prim(p, &vals, &mut out)?;
    Ok(v.to_datum().expect("NoProc values are always first-order"))
}

/// `eqv?` over data, exactly as [`apply_prim_datum`]'s slow path observes
/// it: each argument there is converted to a *fresh* [`Value`] tree, so
/// two pairs are never pointer-equal, while string identity survives the
/// round trip (the `Arc<str>` is cloned through both conversions).
fn eqv_datum(a: &Datum, b: &Datum) -> bool {
    match (a, b) {
        (Datum::Int(x), Datum::Int(y)) => x == y,
        (Datum::Bool(x), Datum::Bool(y)) => x == y,
        (Datum::Char(x), Datum::Char(y)) => x == y,
        (Datum::Sym(x), Datum::Sym(y)) => x == y,
        (Datum::Nil, Datum::Nil) => true,
        (Datum::Unspec, Datum::Unspec) => true,
        (Datum::Str(x), Datum::Str(y)) => Arc::ptr_eq(x, y),
        _ => false,
    }
}

/// The allocation-free fast path of [`apply_prim_datum`]: evaluates the
/// hot structural and arithmetic primitives directly on [`Datum`] — a
/// `car` is one refcount bump instead of two deep tree copies. The
/// specializer applies static primitives to static data millions of
/// times per run, which makes this round trip its dominant cost.
///
/// `None` means the primitive is not fast-pathed (strings, characters,
/// effects, boxes); `Some(Err(()))` means the application faults — the
/// caller re-runs the slow path, whose arity/type/overflow errors (and
/// their renderings) stay the single source of truth. Both paths are
/// pure for every primitive handled here, so re-running is observation-
/// equivalent.
#[allow(clippy::too_many_lines)]
fn apply_prim_datum_direct(p: Prim, args: &[Datum]) -> Option<Result<Datum, ()>> {
    match p {
        Prim::SymbolToString
        | Prim::StringToSymbol
        | Prim::StringAppend
        | Prim::StringLength
        | Prim::NumberToString
        | Prim::StringEqualP
        | Prim::CharToInteger
        | Prim::IntegerToChar
        | Prim::Display
        | Prim::Write
        | Prim::Newline
        | Prim::Error
        | Prim::BoxNew
        | Prim::BoxRef
        | Prim::BoxSet => return None,
        _ => {}
    }
    if !p.arity().admits(args.len()) {
        return Some(Err(()));
    }
    fn int(d: &Datum) -> Result<i64, ()> {
        match d {
            Datum::Int(n) => Ok(*n),
            _ => Err(()),
        }
    }
    fn chain(args: &[Datum], f: impl Fn(i64, i64) -> bool) -> Result<Datum, ()> {
        for w in args.windows(2) {
            if !f(int(&w[0])?, int(&w[1])?) {
                return Ok(Datum::Bool(false));
            }
        }
        Ok(Datum::Bool(true))
    }
    Some((|| {
        Ok(match p {
            Prim::Add => {
                let mut acc: i64 = 0;
                for a in args {
                    acc = acc.checked_add(int(a)?).ok_or(())?;
                }
                Datum::Int(acc)
            }
            Prim::Sub => {
                let first = int(&args[0])?;
                if args.len() == 1 {
                    Datum::Int(first.checked_neg().ok_or(())?)
                } else {
                    let mut acc = first;
                    for a in &args[1..] {
                        acc = acc.checked_sub(int(a)?).ok_or(())?;
                    }
                    Datum::Int(acc)
                }
            }
            Prim::Mul => {
                let mut acc: i64 = 1;
                for a in args {
                    acc = acc.checked_mul(int(a)?).ok_or(())?;
                }
                Datum::Int(acc)
            }
            Prim::Quotient | Prim::Remainder | Prim::Modulo => {
                let a = int(&args[0])?;
                let b = int(&args[1])?;
                if b == 0 {
                    return Err(());
                }
                let r = match p {
                    Prim::Quotient => a.checked_div(b),
                    Prim::Remainder => a.checked_rem(b),
                    _ => a.checked_rem_euclid(b).map(|r| {
                        // Scheme `modulo` takes the sign of the divisor.
                        if b < 0 && r != 0 {
                            r + b
                        } else {
                            r
                        }
                    }),
                };
                Datum::Int(r.ok_or(())?)
            }
            Prim::Abs => Datum::Int(int(&args[0])?.checked_abs().ok_or(())?),
            Prim::Min => {
                let mut acc = int(&args[0])?;
                for a in &args[1..] {
                    acc = acc.min(int(a)?);
                }
                Datum::Int(acc)
            }
            Prim::Max => {
                let mut acc = int(&args[0])?;
                for a in &args[1..] {
                    acc = acc.max(int(a)?);
                }
                Datum::Int(acc)
            }
            Prim::NumEq => chain(args, |a, b| a == b)?,
            Prim::Lt => chain(args, |a, b| a < b)?,
            Prim::Le => chain(args, |a, b| a <= b)?,
            Prim::Gt => chain(args, |a, b| a > b)?,
            Prim::Ge => chain(args, |a, b| a >= b)?,
            Prim::ZeroP => Datum::Bool(int(&args[0])? == 0),
            Prim::EqP | Prim::EqvP => Datum::Bool(eqv_datum(&args[0], &args[1])),
            Prim::EqualP => Datum::Bool(args[0] == args[1]),
            Prim::Not => Datum::Bool(!args[0].is_truthy()),
            Prim::Cons => Datum::cons(args[0].clone(), args[1].clone()),
            Prim::Car => match &args[0] {
                Datum::Pair(pr) => pr.car.clone(),
                _ => return Err(()),
            },
            Prim::Cdr => match &args[0] {
                Datum::Pair(pr) => pr.cdr.clone(),
                _ => return Err(()),
            },
            Prim::PairP => Datum::Bool(matches!(args[0], Datum::Pair(_))),
            Prim::NullP => Datum::Bool(matches!(args[0], Datum::Nil)),
            Prim::List => Datum::list(args.iter().cloned()),
            Prim::Append => {
                // Mirrors the slow path: every argument but the last must
                // be a proper list; the last is shared as the tail.
                let last = args.last().cloned().unwrap_or(Datum::Nil);
                let mut parts: Vec<Vec<Datum>> = Vec::new();
                for a in &args[..args.len().saturating_sub(1)] {
                    let mut items = Vec::new();
                    let mut cur = a;
                    loop {
                        match cur {
                            Datum::Nil => break,
                            Datum::Pair(pr) => {
                                items.push(pr.car.clone());
                                cur = &pr.cdr;
                            }
                            _ => return Err(()),
                        }
                    }
                    parts.push(items);
                }
                let mut acc = last;
                for items in parts.into_iter().rev() {
                    for d in items.into_iter().rev() {
                        acc = Datum::cons(d, acc);
                    }
                }
                acc
            }
            Prim::Length => {
                let mut n: i64 = 0;
                let mut cur = &args[0];
                loop {
                    match cur {
                        Datum::Nil => break Datum::Int(n),
                        Datum::Pair(pr) => {
                            n += 1;
                            cur = &pr.cdr;
                        }
                        _ => return Err(()),
                    }
                }
            }
            Prim::Reverse => {
                let mut acc = Datum::Nil;
                let mut cur = &args[0];
                loop {
                    match cur {
                        Datum::Nil => break acc,
                        Datum::Pair(pr) => {
                            acc = Datum::cons(pr.car.clone(), acc);
                            cur = &pr.cdr;
                        }
                        _ => return Err(()),
                    }
                }
            }
            Prim::ListRef => {
                let mut k = int(&args[1])?;
                if k < 0 {
                    return Err(());
                }
                let mut cur = &args[0];
                loop {
                    match cur {
                        Datum::Pair(pr) => {
                            if k == 0 {
                                break pr.car.clone();
                            }
                            k -= 1;
                            cur = &pr.cdr;
                        }
                        _ => return Err(()),
                    }
                }
            }
            Prim::Memq | Prim::Member => {
                let same: fn(&Datum, &Datum) -> bool = if p == Prim::Memq {
                    eqv_datum
                } else {
                    |a, b| a == b
                };
                let mut cur = &args[1];
                loop {
                    match cur {
                        Datum::Nil => break Datum::Bool(false),
                        Datum::Pair(pr) => {
                            if same(&args[0], &pr.car) {
                                break cur.clone();
                            }
                            cur = &pr.cdr;
                        }
                        _ => return Err(()),
                    }
                }
            }
            Prim::Assq | Prim::Assoc => {
                let same: fn(&Datum, &Datum) -> bool = if p == Prim::Assq {
                    eqv_datum
                } else {
                    |a, b| a == b
                };
                let mut cur = &args[1];
                loop {
                    match cur {
                        Datum::Nil => break Datum::Bool(false),
                        Datum::Pair(pr) => {
                            if let Datum::Pair(entry) = &pr.car {
                                if same(&args[0], &entry.car) {
                                    break pr.car.clone();
                                }
                            }
                            cur = &pr.cdr;
                        }
                        _ => return Err(()),
                    }
                }
            }
            Prim::SymbolP => Datum::Bool(matches!(args[0], Datum::Sym(_))),
            Prim::NumberP => Datum::Bool(matches!(args[0], Datum::Int(_))),
            Prim::StringP => Datum::Bool(matches!(args[0], Datum::Str(_))),
            Prim::BooleanP => Datum::Bool(matches!(args[0], Datum::Bool(_))),
            Prim::CharP => Datum::Bool(matches!(args[0], Datum::Char(_))),
            // First-order data never holds a procedure.
            Prim::ProcedureP => Datum::Bool(false),
            Prim::ListP => {
                let mut cur = &args[0];
                loop {
                    match cur {
                        Datum::Nil => break Datum::Bool(true),
                        Datum::Pair(pr) => cur = &pr.cdr,
                        _ => break Datum::Bool(false),
                    }
                }
            }
            // Filtered to the slow path above.
            _ => return Err(()),
        })
    })())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader::read_one;

    type V = Value<NoProc>;

    fn run(p: Prim, args: &[V]) -> V {
        let mut out = String::new();
        apply_prim(p, args, &mut out).expect("prim ok")
    }

    fn run_err(p: Prim, args: &[V]) -> PrimError {
        let mut out = String::new();
        apply_prim(p, args, &mut out).expect_err("prim should fail")
    }

    fn d(src: &str) -> Datum {
        read_one(src).unwrap()
    }

    fn v(src: &str) -> V {
        Value::from(&d(src))
    }

    #[test]
    fn arithmetic() {
        assert_eq!(run(Prim::Add, &[]), Value::Int(0));
        assert_eq!(run(Prim::Add, &[v("1"), v("2"), v("3")]), Value::Int(6));
        assert_eq!(run(Prim::Sub, &[v("5")]), Value::Int(-5));
        assert_eq!(run(Prim::Sub, &[v("5"), v("2"), v("1")]), Value::Int(2));
        assert_eq!(run(Prim::Mul, &[v("4"), v("5")]), Value::Int(20));
        assert_eq!(run(Prim::Quotient, &[v("7"), v("2")]), Value::Int(3));
        assert_eq!(run(Prim::Remainder, &[v("-7"), v("2")]), Value::Int(-1));
        assert_eq!(run(Prim::Modulo, &[v("-7"), v("2")]), Value::Int(1));
        assert_eq!(run(Prim::Modulo, &[v("7"), v("-2")]), Value::Int(-1));
        assert_eq!(run(Prim::Abs, &[v("-3")]), Value::Int(3));
        assert_eq!(run(Prim::Min, &[v("3"), v("1"), v("2")]), Value::Int(1));
        assert_eq!(run(Prim::Max, &[v("3"), v("1"), v("2")]), Value::Int(3));
    }

    #[test]
    fn arithmetic_faults() {
        assert_eq!(
            run_err(Prim::Quotient, &[v("1"), v("0")]),
            PrimError::DivisionByZero(Prim::Quotient)
        );
        assert_eq!(
            run_err(Prim::Add, &[Value::Int(i64::MAX), v("1")]),
            PrimError::Overflow(Prim::Add)
        );
        assert!(matches!(
            run_err(Prim::Add, &[v("x")]),
            PrimError::TypeError { .. }
        ));
        assert!(matches!(
            run_err(Prim::Car, &[v("1"), v("2")]),
            PrimError::BadArity { .. }
        ));
    }

    #[test]
    fn comparisons_chain() {
        assert_eq!(run(Prim::Lt, &[v("1"), v("2"), v("3")]), Value::Bool(true));
        assert_eq!(run(Prim::Lt, &[v("1"), v("3"), v("2")]), Value::Bool(false));
        assert_eq!(
            run(Prim::NumEq, &[v("2"), v("2"), v("2")]),
            Value::Bool(true)
        );
        assert_eq!(run(Prim::ZeroP, &[v("0")]), Value::Bool(true));
    }

    #[test]
    fn pairs_and_lists() {
        assert_eq!(run(Prim::Cons, &[v("1"), v("2")]), v("(1 . 2)"));
        assert_eq!(run(Prim::Car, &[v("(1 2)")]), v("1"));
        assert_eq!(run(Prim::Cdr, &[v("(1 2)")]), v("(2)"));
        assert_eq!(run(Prim::Length, &[v("(a b c)")]), Value::Int(3));
        assert_eq!(run(Prim::Reverse, &[v("(1 2 3)")]), v("(3 2 1)"));
        assert_eq!(
            run(Prim::Append, &[v("(1 2)"), v("(3)"), v("(4)")]),
            v("(1 2 3 4)")
        );
        assert_eq!(run(Prim::Append, &[]), Value::Nil);
        assert_eq!(run(Prim::ListRef, &[v("(a b c)"), v("1")]), v("b"));
        assert_eq!(run(Prim::List, &[v("1"), v("2")]), v("(1 2)"));
        assert!(matches!(
            run_err(Prim::Car, &[v("5")]),
            PrimError::TypeError { .. }
        ));
        assert!(matches!(
            run_err(Prim::ListRef, &[v("(a)"), v("3")]),
            PrimError::OutOfRange(..)
        ));
    }

    #[test]
    fn searching() {
        assert_eq!(run(Prim::Memq, &[v("b"), v("(a b c)")]), v("(b c)"));
        assert_eq!(run(Prim::Memq, &[v("x"), v("(a b)")]), Value::Bool(false));
        assert_eq!(run(Prim::Member, &[v("(1)"), v("((0) (1))")]), v("((1))"));
        assert_eq!(run(Prim::Assq, &[v("b"), v("((a 1) (b 2))")]), v("(b 2)"));
        assert_eq!(run(Prim::Assq, &[v("z"), v("((a 1))")]), Value::Bool(false));
        assert_eq!(run(Prim::Assoc, &[v("(k)"), v("(((k) 1))")]), v("((k) 1)"));
    }

    #[test]
    fn equality_flavours() {
        assert_eq!(run(Prim::EqP, &[v("a"), v("a")]), Value::Bool(true));
        assert_eq!(run(Prim::EqP, &[v("(1)"), v("(1)")]), Value::Bool(false));
        assert_eq!(
            run(Prim::EqualP, &[v("(1 (2))"), v("(1 (2))")]),
            Value::Bool(true)
        );
        let shared = v("(1)");
        assert_eq!(run(Prim::EqP, &[shared.clone(), shared]), Value::Bool(true));
    }

    #[test]
    fn predicates() {
        assert_eq!(run(Prim::SymbolP, &[v("a")]), Value::Bool(true));
        assert_eq!(run(Prim::NumberP, &[v("1")]), Value::Bool(true));
        assert_eq!(run(Prim::StringP, &[v("\"s\"")]), Value::Bool(true));
        assert_eq!(run(Prim::BooleanP, &[v("#f")]), Value::Bool(true));
        assert_eq!(run(Prim::CharP, &[v("#\\a")]), Value::Bool(true));
        assert_eq!(run(Prim::ListP, &[v("(1 2)")]), Value::Bool(true));
        assert_eq!(
            run(Prim::ListP, &[run(Prim::Cons, &[v("1"), v("2")])]),
            Value::Bool(false)
        );
        assert_eq!(run(Prim::NullP, &[v("()")]), Value::Bool(true));
        assert_eq!(run(Prim::Not, &[v("#f")]), Value::Bool(true));
        assert_eq!(run(Prim::Not, &[v("0")]), Value::Bool(false));
    }

    #[test]
    fn strings_and_chars() {
        assert_eq!(
            run(Prim::StringAppend, &[v("\"a\""), v("\"bc\"")]),
            v("\"abc\"")
        );
        assert_eq!(run(Prim::StringLength, &[v("\"abc\"")]), Value::Int(3));
        assert_eq!(run(Prim::SymbolToString, &[v("abc")]), v("\"abc\""));
        assert_eq!(run(Prim::StringToSymbol, &[v("\"abc\"")]), v("abc"));
        assert_eq!(run(Prim::NumberToString, &[v("42")]), v("\"42\""));
        assert_eq!(
            run(Prim::StringEqualP, &[v("\"a\""), v("\"a\"")]),
            Value::Bool(true)
        );
        assert_eq!(run(Prim::CharToInteger, &[v("#\\a")]), Value::Int(97));
        assert_eq!(run(Prim::IntegerToChar, &[v("97")]), v("#\\a"));
        assert!(matches!(
            run_err(Prim::IntegerToChar, &[v("-1")]),
            PrimError::OutOfRange(..)
        ));
    }

    #[test]
    fn io_collects_output() {
        let mut out = String::new();
        apply_prim(Prim::Display, &[v("\"hi\"")], &mut out).unwrap();
        apply_prim(Prim::Newline, &[] as &[V], &mut out).unwrap();
        apply_prim(Prim::Write, &[v("\"hi\"")], &mut out).unwrap();
        assert_eq!(out, "hi\n\"hi\"");
    }

    #[test]
    fn error_prim_raises() {
        let e = run_err(Prim::Error, &[v("\"bad\""), v("7")]);
        assert_eq!(e, PrimError::User("bad 7".to_string()));
    }

    #[test]
    fn boxes() {
        let b = run(Prim::BoxNew, &[v("1")]);
        assert_eq!(run(Prim::BoxRef, std::slice::from_ref(&b)), v("1"));
        run(Prim::BoxSet, &[b.clone(), v("2")]);
        assert_eq!(run(Prim::BoxRef, &[b]), v("2"));
    }

    #[test]
    fn datum_value_roundtrip() {
        for src in ["()", "5", "#t", "#\\x", "\"s\"", "sym", "(1 (2 . 3) #f)"] {
            let dd = d(src);
            let vv: V = Value::from(&dd);
            assert_eq!(vv.to_datum(), Some(dd));
        }
    }

    /// The slow path alone, as the reference for the fast-path oracle.
    fn apply_prim_datum_slow(p: Prim, args: &[Datum]) -> Result<Datum, PrimError> {
        let vals: Vec<Value<NoProc>> = args.iter().map(Value::from).collect();
        let mut out = String::new();
        let v = apply_prim(p, &vals, &mut out)?;
        Ok(v.to_datum().expect("NoProc values are always first-order"))
    }

    #[test]
    fn apply_prim_datum_fast_path_matches_slow_path() {
        use crate::prim::Prim as P;
        let all = [
            P::Add,
            P::Sub,
            P::Mul,
            P::Quotient,
            P::Remainder,
            P::Modulo,
            P::Abs,
            P::Min,
            P::Max,
            P::NumEq,
            P::Lt,
            P::Le,
            P::Gt,
            P::Ge,
            P::ZeroP,
            P::EqP,
            P::EqvP,
            P::EqualP,
            P::Not,
            P::Cons,
            P::Car,
            P::Cdr,
            P::PairP,
            P::NullP,
            P::List,
            P::Append,
            P::Length,
            P::Reverse,
            P::ListRef,
            P::Memq,
            P::Member,
            P::Assq,
            P::Assoc,
            P::SymbolP,
            P::NumberP,
            P::StringP,
            P::BooleanP,
            P::CharP,
            P::ProcedureP,
            P::ListP,
            P::SymbolToString,
            P::StringToSymbol,
            P::StringAppend,
            P::StringLength,
            P::NumberToString,
            P::StringEqualP,
            P::CharToInteger,
            P::IntegerToChar,
        ];
        let pool: Vec<Datum> = [
            "0",
            "1",
            "-7",
            "2",
            "9223372036854775807",
            "#t",
            "#f",
            "x",
            "y",
            "\"s\"",
            "#\\a",
            "()",
            "(1 2 3)",
            "(x y)",
            "((x 1) (y 2))",
            "((1 . 2) (3 . 4))",
            "(1 . 2)",
            "(1 2 . 3)",
        ]
        .iter()
        .map(|s| read_one(s).unwrap())
        .collect();
        // Every prim over every 0-, 1- and 2-argument combination from the
        // pool: results (and error/ok classification) must agree exactly.
        for p in all {
            let check = |args: &[Datum]| {
                let fast = apply_prim_datum(p, args);
                let slow = apply_prim_datum_slow(p, args);
                assert_eq!(fast, slow, "prim {p:?} on {args:?}");
            };
            check(&[]);
            for a in &pool {
                check(std::slice::from_ref(a));
                for b in &pool {
                    check(&[a.clone(), b.clone()]);
                }
            }
        }
        // The shared-argument corner: `(eq? x x)` on a pair is #f in both
        // paths (the slow path converts each argument freshly), and on a
        // string it is #t in both (the Arc survives the conversions).
        let pair = read_one("(1 2)").unwrap();
        let s = read_one("\"shared\"").unwrap();
        for p in [P::EqP, P::EqvP] {
            assert_eq!(
                apply_prim_datum(p, &[pair.clone(), pair.clone()]),
                apply_prim_datum_slow(p, &[pair.clone(), pair.clone()])
            );
            assert_eq!(
                apply_prim_datum(p, &[s.clone(), s.clone()]),
                apply_prim_datum_slow(p, &[s.clone(), s.clone()])
            );
            assert_eq!(
                apply_prim_datum(p, &[s.clone(), s.clone()]),
                Ok(Datum::Bool(true))
            );
        }
        // Memoized-search corner: memq/assq find a shared string by
        // identity through the fast path exactly like the slow path.
        let list = Datum::list([s.clone(), pair.clone()]);
        assert_eq!(
            apply_prim_datum(P::Memq, &[s.clone(), list.clone()]),
            apply_prim_datum_slow(P::Memq, &[s.clone(), list.clone()])
        );
    }

    #[test]
    fn apply_prim_datum_works() {
        let r = apply_prim_datum(Prim::Add, &[d("1"), d("2")]).unwrap();
        assert_eq!(r, d("3"));
    }

    #[test]
    fn display_vs_write() {
        assert_eq!(display_string(&v("\"hi\"")), "hi");
        assert_eq!(write_string(&v("\"hi\"")), "\"hi\"");
        assert_eq!(display_string(&v("(1 \"a\" . 2)")), "(1 a . 2)");
    }
}
