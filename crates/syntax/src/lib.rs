//! Language kernel for the `two4one` system, a reproduction of Sperber &
//! Thiemann, *"Two for the Price of One: Composing Partial Evaluation and
//! Compilation"* (PLDI 1997).
//!
//! This crate hosts everything the rest of the workspace agrees on:
//!
//! * [`Symbol`] — cheap interned-ish identifiers, plus [`Gensym`] for fresh
//!   name generation;
//! * [`Datum`] — s-expression data, with a [`reader`](mod@reader) and both a
//!   plain and a pretty [`printer`](mod@printer);
//! * [`Prim`] — the table of primitive operations shared by the tree-walking
//!   interpreter, the byte-code VM, and the partial evaluator;
//! * [`cs`] — the Core Scheme abstract syntax of the paper's Fig. 1;
//! * [`acs`] — the two-level Annotated Core Scheme of Sec. 4;
//! * [`cata`] — the syntax functor and generic recursion schema (catamorphism)
//!   of Sec. 5.1–5.3;
//! * [`value`] — the runtime value domain, generic over the procedure
//!   representation so that the interpreter (`two4one-interp`) and the VM
//!   (`two4one-vm`) can share primitive semantics.
//!
//! # Example
//!
//! ```
//! use two4one_syntax::reader::read_one;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let d = read_one("(+ 1 (* 2 3))")?;
//! assert_eq!(d.to_string(), "(+ 1 (* 2 3))");
//! # Ok(())
//! # }
//! ```

pub mod acs;
pub mod cata;
pub mod cs;
pub mod datum;
pub mod limits;
pub mod prim;
pub mod printer;
pub mod reader;
pub mod stack;
pub mod symbol;
pub mod symset;
pub mod value;

pub use datum::Datum;
pub use limits::{CancelToken, Deadline, LimitExceeded, LimitKind, Limits};
pub use prim::{Arity, Prim};
pub use symbol::{Gensym, Symbol};
pub use symset::SymSet;
