//! The byte-code interpreter.

use crate::{Closure, Image, Instr, Proc, Template, Value, OP_NAMES};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use two4one_syntax::limits::{Deadline, LimitExceeded, Limits};
use two4one_syntax::symbol::Symbol;
use two4one_syntax::value::{apply_prim, write_string, PrimError};

/// Runtime errors of the VM.
#[derive(Debug, Clone, PartialEq)]
pub enum VmError {
    /// Reference to an undefined global.
    UnknownGlobal(Symbol),
    /// Application of a non-procedure.
    NotAProcedure(String),
    /// Wrong number of arguments.
    BadArity {
        /// Callee name.
        name: Symbol,
        /// Expected parameter count.
        expected: u8,
        /// Actual argument count.
        got: u8,
    },
    /// A primitive failed.
    Prim(PrimError),
    /// Fuel limit reached.
    FuelExhausted,
    /// A resource limit (wall-clock deadline) was hit.
    Limit(LimitExceeded),
    /// Internal invariant violation (a compiler or VM bug, or a damaged
    /// image that slipped past loading).
    Internal(&'static str),
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::UnknownGlobal(g) => write!(f, "undefined global `{g}`"),
            VmError::NotAProcedure(v) => write!(f, "attempt to apply non-procedure {v}"),
            VmError::BadArity {
                name,
                expected,
                got,
            } => write!(f, "`{name}` expects {expected} argument(s), got {got}"),
            VmError::Prim(e) => write!(f, "{e}"),
            VmError::FuelExhausted => write!(f, "fuel exhausted"),
            VmError::Limit(l) => write!(f, "{l}"),
            VmError::Internal(m) => write!(f, "internal VM error: {m}"),
        }
    }
}

impl std::error::Error for VmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            VmError::Prim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PrimError> for VmError {
    fn from(e: PrimError) -> Self {
        VmError::Prim(e)
    }
}

struct Frame {
    closure: Arc<Closure>,
    pc: usize,
    locals: Vec<Value>,
    stack_base: usize,
}

/// The `t4o_vm_dispatch_total{op=...}` counter family, one series per
/// opcode, resolved once per process. The dispatch loop increments a plain
/// per-machine array; [`Machine::flush_profile`] publishes the deltas here,
/// so the registry lock is touched at the amortized stride, never
/// per-instruction.
fn dispatch_counters() -> &'static [two4one_obs::Counter; Instr::N_OPS] {
    static COUNTERS: OnceLock<[two4one_obs::Counter; Instr::N_OPS]> = OnceLock::new();
    COUNTERS.get_or_init(|| {
        std::array::from_fn(|i| {
            two4one_obs::global().counter_with("t4o_vm_dispatch_total", Some(("op", OP_NAMES[i])))
        })
    })
}

/// Forces registration of the per-opcode dispatch counter family so an
/// exposition page shows every series, zero-valued, before any code runs.
pub fn init_dispatch_metrics() {
    let _ = dispatch_counters();
}

/// Shared execution counters for one image, in the mijit style
/// (`Statistics { fetches, retires, visits }`): `fetches` counts
/// instructions dispatched, `retires` counts frames returned, `visits`
/// counts call entries. The machine accumulates plain `u64` deltas and
/// flushes them into these atomics at the existing 4096-instruction
/// deadline stride and at run end, so a profile reader (the tiered-serve
/// promotion worker) sees fresh counts without ever stopping execution
/// and the dispatch loop pays no per-instruction atomic traffic.
#[derive(Debug, Default)]
pub struct ExecProfile {
    fetches: AtomicU64,
    retires: AtomicU64,
    visits: AtomicU64,
}

impl ExecProfile {
    /// A zeroed profile.
    pub fn new() -> Self {
        ExecProfile::default()
    }

    /// Instructions dispatched so far.
    pub fn fetches(&self) -> u64 {
        self.fetches.load(Ordering::Relaxed)
    }

    /// Frames returned so far.
    pub fn retires(&self) -> u64 {
        self.retires.load(Ordering::Relaxed)
    }

    /// Call entries (non-tail and tail) so far.
    pub fn visits(&self) -> u64 {
        self.visits.load(Ordering::Relaxed)
    }

    fn add(&self, fetches: u64, retires: u64, visits: u64) {
        if fetches > 0 {
            self.fetches.fetch_add(fetches, Ordering::Relaxed);
        }
        if retires > 0 {
            self.retires.fetch_add(retires, Ordering::Relaxed);
        }
        if visits > 0 {
            self.visits.fetch_add(visits, Ordering::Relaxed);
        }
    }
}

/// The virtual machine: global table, evaluation stack, frame stack, and
/// the `val` accumulator.
pub struct Machine {
    globals: HashMap<Symbol, Value>,
    stack: Vec<Value>,
    frames: Vec<Frame>,
    val: Value,
    /// Output of `display`/`write`/`newline`.
    pub output: String,
    fuel: Option<u64>,
    deadline: Deadline,
    ticks: u64,
    profile: Option<Arc<ExecProfile>>,
    pf_fetches: u64,
    pf_retires: u64,
    pf_visits: u64,
    /// Per-opcode dispatch deltas, indexed by [`Instr::opcode`]; published
    /// to the `t4o_vm_dispatch_total` family at the profile-flush stride.
    op_counts: [u64; Instr::N_OPS],
}

impl Default for Machine {
    fn default() -> Self {
        Machine::empty()
    }
}

impl Machine {
    /// A machine with an empty global table.
    pub fn empty() -> Self {
        Machine {
            globals: HashMap::new(),
            stack: Vec::new(),
            frames: Vec::new(),
            val: Value::Unspec,
            output: String::new(),
            fuel: None,
            deadline: Deadline::unlimited(),
            ticks: 0,
            profile: None,
            pf_fetches: 0,
            pf_retires: 0,
            pf_visits: 0,
            op_counts: [0; Instr::N_OPS],
        }
    }

    /// Loads an image: every top-level template becomes a zero-capture
    /// closure bound in the global table.
    pub fn load(image: &Image) -> Self {
        let mut m = Machine::empty();
        for (name, t) in &image.templates {
            m.define_template(*name, t.clone());
        }
        m
    }

    /// Limits execution to `fuel` instructions.
    pub fn with_fuel(mut self, fuel: u64) -> Self {
        self.fuel = Some(fuel);
        self
    }

    /// Applies the step fuel and wall-clock budget of `limits`. The
    /// deadline starts now; the clock is consulted every 4096 instructions.
    pub fn with_limits(mut self, limits: &Limits) -> Self {
        if let Some(f) = limits.step_fuel {
            self.fuel = Some(f);
        }
        self.deadline = limits.deadline();
        self
    }

    /// Attaches shared execution counters: every run of this machine
    /// accumulates into `profile` (at the amortized stride, never
    /// per-instruction).
    pub fn with_profile(mut self, profile: Arc<ExecProfile>) -> Self {
        self.profile = Some(profile);
        self
    }

    /// Defines a global variable.
    pub fn define(&mut self, name: Symbol, value: Value) {
        self.globals.insert(name, value);
    }

    /// Defines a global procedure from a top-level (zero-capture) template.
    pub fn define_template(&mut self, name: Symbol, t: Arc<Template>) {
        debug_assert_eq!(t.nfree, 0, "top-level template must capture nothing");
        let clo = Value::Proc(Proc(Arc::new(Closure {
            template: t,
            captured: Vec::new(),
        })));
        self.define(name, clo);
    }

    /// Reads a global.
    pub fn global(&self, name: &Symbol) -> Option<&Value> {
        self.globals.get(name)
    }

    /// Calls the global procedure `name` with `args`.
    ///
    /// # Errors
    ///
    /// Returns a [`VmError`] on any runtime fault.
    pub fn call_global(&mut self, name: &Symbol, args: Vec<Value>) -> Result<Value, VmError> {
        let _span = two4one_obs::Span::enter(two4one_obs::Phase::VmExec);
        let f = self
            .globals
            .get(name)
            .cloned()
            .ok_or(VmError::UnknownGlobal(*name))?;
        self.call_value(f, args)
    }

    /// Calls an arbitrary procedure value.
    ///
    /// # Errors
    ///
    /// Returns a [`VmError`] on any runtime fault.
    pub fn call_value(&mut self, f: Value, args: Vec<Value>) -> Result<Value, VmError> {
        // Catch an already-expired deadline before doing any work (the
        // in-loop check is amortized and may lag by a few thousand steps).
        self.deadline.check().map_err(VmError::Limit)?;
        let depth = self.frames.len();
        let base = self.stack.len();
        self.stack.extend(args);
        self.val = f;
        let nargs = u8::try_from(self.stack.len() - base)
            .map_err(|_| VmError::Internal("too many arguments"))?;
        self.enter_call(nargs, false)?;
        let result = self.run(depth);
        self.flush_profile();
        if result.is_err() {
            // Unwind so the machine stays usable after an error.
            self.frames.truncate(depth);
            self.stack.truncate(base);
        }
        result
    }

    /// Publishes the locally accumulated execution counts into the shared
    /// profile (if one is attached) and zeroes the deltas.
    fn flush_profile(&mut self) {
        if let Some(p) = &self.profile {
            p.add(self.pf_fetches, self.pf_retires, self.pf_visits);
        }
        self.pf_fetches = 0;
        self.pf_retires = 0;
        self.pf_visits = 0;
        if self.op_counts.iter().any(|c| *c > 0) {
            let counters = dispatch_counters();
            for (i, c) in self.op_counts.iter_mut().enumerate() {
                if *c > 0 {
                    counters[i].add(*c);
                    *c = 0;
                }
            }
        }
    }

    fn tick(&mut self) -> Result<(), VmError> {
        if let Some(f) = &mut self.fuel {
            if *f == 0 {
                return Err(VmError::FuelExhausted);
            }
            *f -= 1;
        }
        self.deadline
            .check_every(&mut self.ticks, 4096)
            .map_err(VmError::Limit)?;
        // Piggyback the profile flush on the same amortized stride, so
        // counters stay readable mid-run without stopping execution.
        if self.profile.is_some() && self.ticks.is_multiple_of(4096) {
            self.flush_profile();
        }
        Ok(())
    }

    /// The top `n` stack slots, detached — typed error instead of an
    /// underflow panic on malformed code.
    fn pop_args(&mut self, n: usize) -> Result<Vec<Value>, VmError> {
        let at = self
            .stack
            .len()
            .checked_sub(n)
            .ok_or(VmError::Internal("operand stack underflow"))?;
        Ok(self.stack.split_off(at))
    }

    /// Begins a call: `val` holds the procedure, the top `nargs` stack
    /// slots hold the arguments.
    fn enter_call(&mut self, nargs: u8, tail: bool) -> Result<(), VmError> {
        let proc = match std::mem::replace(&mut self.val, Value::Unspec) {
            Value::Proc(p) => p,
            other => return Err(VmError::NotAProcedure(write_string(&other))),
        };
        let t = &proc.0.template;
        if t.arity != nargs {
            return Err(VmError::BadArity {
                name: t.name,
                expected: t.arity,
                got: nargs,
            });
        }
        self.pf_visits += 1;
        let locals: Vec<Value> = self.pop_args(nargs as usize)?;
        let frame = Frame {
            closure: proc.0,
            pc: 0,
            locals,
            stack_base: self.stack.len(),
        };
        if tail {
            let cur = self
                .frames
                .last_mut()
                .ok_or(VmError::Internal("tail call without frame"))?;
            debug_assert_eq!(
                frame.stack_base, cur.stack_base,
                "unbalanced stack at tail call"
            );
            *cur = frame;
        } else {
            self.frames.push(frame);
        }
        Ok(())
    }

    /// The main loop. Returns when the frame stack drops back to `floor`.
    ///
    /// Dispatch is organized as two nested loops so the straight-line hot
    /// path never touches the frame stack: the outer loop pulls the top
    /// frame's hot state — the closure `Arc`, the program counter, and
    /// the locals vector — into locals of `run` itself, and the inner
    /// loop fetches from a cached `&[Instr]` slice. Only control
    /// transfers (call, tail call, return) write state back and re-enter
    /// the outer loop; everything else runs with no `frames.last_mut()`
    /// per instruction. An error may leave the *top* frame's fields stale
    /// (its locals are taken for the duration of the inner loop), which
    /// is harmless: every error unwinds past it — [`Machine::call_value`]
    /// truncates the frame stack above the floor on error, and frames
    /// below the top had their state written back at their call sites.
    fn run(&mut self, floor: usize) -> Result<Value, VmError> {
        /// What broke dispatch out of the current frame's inner loop.
        enum Ctl {
            Call { nargs: u8, tail: bool },
            Return,
        }
        loop {
            // Enter (or resume) the top frame.
            let (closure, mut pc, mut locals) = {
                let f = self
                    .frames
                    .last_mut()
                    .ok_or(VmError::Internal("no frame"))?;
                (f.closure.clone(), f.pc, std::mem::take(&mut f.locals))
            };
            let code: &[Instr] = &closure.template.code;
            let ctl = loop {
                self.tick()?;
                let instr = *code.get(pc).ok_or(VmError::Internal("pc out of range"))?;
                pc += 1;
                self.pf_fetches += 1;
                self.op_counts[instr.opcode()] += 1;
                match instr {
                    Instr::Const(i) => {
                        let d = closure
                            .template
                            .consts
                            .get(i as usize)
                            .ok_or(VmError::Internal("constant index out of range"))?;
                        self.val = Value::from(d);
                    }
                    Instr::Global(i) => {
                        let name = closure
                            .template
                            .globals
                            .get(i as usize)
                            .cloned()
                            .ok_or(VmError::Internal("global index out of range"))?;
                        self.val = self
                            .globals
                            .get(&name)
                            .cloned()
                            .ok_or(VmError::UnknownGlobal(name))?;
                    }
                    Instr::Local(i) => {
                        self.val = locals
                            .get(i as usize)
                            .cloned()
                            .ok_or(VmError::Internal("local index out of range"))?;
                    }
                    Instr::Captured(i) => {
                        self.val = closure
                            .captured
                            .get(i as usize)
                            .cloned()
                            .ok_or(VmError::Internal("capture index out of range"))?;
                    }
                    Instr::Push => {
                        self.stack.push(self.val.clone());
                    }
                    Instr::LocalPush(i) => {
                        // Fused `Local i; Push`: same observable effect,
                        // including leaving the value in `val`.
                        let v = locals
                            .get(i as usize)
                            .cloned()
                            .ok_or(VmError::Internal("local index out of range"))?;
                        self.val = v.clone();
                        self.stack.push(v);
                    }
                    Instr::ConstPush(i) => {
                        let d = closure
                            .template
                            .consts
                            .get(i as usize)
                            .ok_or(VmError::Internal("constant index out of range"))?;
                        let v = Value::from(d);
                        self.val = v.clone();
                        self.stack.push(v);
                    }
                    Instr::LocalPrim { local, prim, nargs } => {
                        // Fused `LocalPush local; Prim`: the local is the
                        // last argument pushed.
                        let v = locals
                            .get(local as usize)
                            .cloned()
                            .ok_or(VmError::Internal("local index out of range"))?;
                        self.stack.push(v);
                        let args = self.pop_args(nargs as usize)?;
                        self.val = apply_prim(prim, &args, &mut self.output)?;
                    }
                    Instr::ConstPrim { konst, prim, nargs } => {
                        let d = closure
                            .template
                            .consts
                            .get(konst as usize)
                            .ok_or(VmError::Internal("constant index out of range"))?;
                        self.stack.push(Value::from(d));
                        let args = self.pop_args(nargs as usize)?;
                        self.val = apply_prim(prim, &args, &mut self.output)?;
                    }
                    Instr::PrimBranch {
                        prim,
                        nargs,
                        target,
                    } => {
                        // Fused `Prim; JumpIfFalse`: result lands in `val`
                        // exactly as for the unfused pair.
                        let args = self.pop_args(nargs as usize)?;
                        self.val = apply_prim(prim, &args, &mut self.output)?;
                        if !self.val.is_truthy() {
                            pc = target as usize;
                        }
                    }
                    Instr::Bind => {
                        locals.push(self.val.clone());
                    }
                    Instr::Trim(n) => {
                        locals.truncate(n as usize);
                    }
                    Instr::MakeClosure { template, nfree } => {
                        let t = closure
                            .template
                            .templates
                            .get(template as usize)
                            .cloned()
                            .ok_or(VmError::Internal("template index out of range"))?;
                        if t.nfree != nfree {
                            debug_assert_eq!(t.nfree, nfree, "closure capture count mismatch");
                            return Err(VmError::Internal("closure capture count mismatch"));
                        }
                        let captured = self.pop_args(nfree as usize)?;
                        self.val = Value::Proc(Proc(Arc::new(Closure {
                            template: t,
                            captured,
                        })));
                    }
                    Instr::Call { nargs } => break Ctl::Call { nargs, tail: false },
                    Instr::TailCall { nargs } => break Ctl::Call { nargs, tail: true },
                    Instr::Return => break Ctl::Return,
                    Instr::Jump(t) => {
                        pc = t as usize;
                    }
                    Instr::JumpIfFalse(t) => {
                        if !self.val.is_truthy() {
                            pc = t as usize;
                        }
                    }
                    Instr::Prim { prim, nargs } => {
                        let args = self.pop_args(nargs as usize)?;
                        self.val = apply_prim(prim, &args, &mut self.output)?;
                    }
                }
            };
            match ctl {
                Ctl::Call { nargs, tail } => {
                    {
                        let f = self
                            .frames
                            .last_mut()
                            .ok_or(VmError::Internal("no frame"))?;
                        f.pc = pc;
                        f.locals = locals;
                    }
                    self.enter_call(nargs, tail)?;
                }
                Ctl::Return => {
                    self.pf_retires += 1;
                    let f = self.frames.pop().ok_or(VmError::Internal("no frame"))?;
                    debug_assert_eq!(
                        self.stack.len(),
                        f.stack_base,
                        "unbalanced stack at return from {}",
                        f.closure.template.name
                    );
                    if self.frames.len() == floor {
                        return Ok(std::mem::replace(&mut self.val, Value::Unspec));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use two4one_syntax::datum::Datum;
    use two4one_syntax::prim::Prim;

    fn machine_with(name: &str, t: Arc<Template>) -> Machine {
        let mut m = Machine::empty();
        m.define_template(Symbol::new(name), t);
        m
    }

    #[test]
    fn constants_and_return() {
        let mut a = Asm::new(Symbol::new("k"), 0, 0);
        let i = a.const_index(&Datum::Int(42)).unwrap();
        a.emit(Instr::Const(i));
        a.emit(Instr::Return);
        let mut m = machine_with("k", a.finish().unwrap());
        let v = m.call_global(&Symbol::new("k"), vec![]).unwrap();
        assert_eq!(v.to_datum(), Some(Datum::Int(42)));
    }

    #[test]
    fn locals_and_prims() {
        // (define (add1 x) (+ x 1))
        let mut a = Asm::new(Symbol::new("add1"), 1, 0);
        a.emit(Instr::Local(0));
        a.emit(Instr::Push);
        let one = a.const_index(&Datum::Int(1)).unwrap();
        a.emit(Instr::Const(one));
        a.emit(Instr::Push);
        a.emit(Instr::Prim {
            prim: Prim::Add,
            nargs: 2,
        });
        a.emit(Instr::Return);
        let mut m = machine_with("add1", a.finish().unwrap());
        let v = m
            .call_global(&Symbol::new("add1"), vec![Value::Int(41)])
            .unwrap();
        assert_eq!(v.to_datum(), Some(Datum::Int(42)));
    }

    #[test]
    fn conditional_with_labels() {
        // (define (f b) (if b 1 2))
        let mut a = Asm::new(Symbol::new("f"), 1, 0);
        let alt = a.make_label();
        a.emit(Instr::Local(0));
        a.emit_jump_if_false(alt);
        let one = a.const_index(&Datum::Int(1)).unwrap();
        a.emit(Instr::Const(one));
        a.emit(Instr::Return);
        a.attach_label(alt);
        let two = a.const_index(&Datum::Int(2)).unwrap();
        a.emit(Instr::Const(two));
        a.emit(Instr::Return);
        let mut m = machine_with("f", a.finish().unwrap());
        assert_eq!(
            m.call_global(&Symbol::new("f"), vec![Value::Bool(true)])
                .unwrap()
                .to_datum(),
            Some(Datum::Int(1))
        );
        assert_eq!(
            m.call_global(&Symbol::new("f"), vec![Value::Bool(false)])
                .unwrap()
                .to_datum(),
            Some(Datum::Int(2))
        );
    }

    #[test]
    fn closures_capture_values() {
        // inner template: (lambda (x) (+ x n))  with n captured
        let mut inner = Asm::new(Symbol::new("inner"), 1, 1);
        inner.emit(Instr::Local(0));
        inner.emit(Instr::Push);
        inner.emit(Instr::Captured(0));
        inner.emit(Instr::Push);
        inner.emit(Instr::Prim {
            prim: Prim::Add,
            nargs: 2,
        });
        inner.emit(Instr::Return);
        let inner_t = inner.finish().unwrap();

        // (define (adder n) (lambda (x) (+ x n)))
        let mut outer = Asm::new(Symbol::new("adder"), 1, 0);
        let ti = outer.template_index(inner_t).unwrap();
        outer.emit(Instr::Local(0));
        outer.emit(Instr::Push);
        outer.emit(Instr::MakeClosure {
            template: ti,
            nfree: 1,
        });
        outer.emit(Instr::Return);
        let mut m = machine_with("adder", outer.finish().unwrap());
        let add3 = m
            .call_global(&Symbol::new("adder"), vec![Value::Int(3)])
            .unwrap();
        let v = m.call_value(add3, vec![Value::Int(4)]).unwrap();
        assert_eq!(v.to_datum(), Some(Datum::Int(7)));
    }

    #[test]
    fn tail_calls_run_in_constant_frames() {
        // (define (loop i) (if (= i 0) 'done (loop (- i 1))))
        let mut a = Asm::new(Symbol::new("loop"), 1, 0);
        let alt = a.make_label();
        let zero = a.const_index(&Datum::Int(0)).unwrap();
        a.emit(Instr::Local(0));
        a.emit(Instr::Push);
        a.emit(Instr::Const(zero));
        a.emit(Instr::Push);
        a.emit(Instr::Prim {
            prim: Prim::NumEq,
            nargs: 2,
        });
        a.emit_jump_if_false(alt);
        let done = a.const_index(&Datum::sym("done")).unwrap();
        a.emit(Instr::Const(done));
        a.emit(Instr::Return);
        a.attach_label(alt);
        let one = a.const_index(&Datum::Int(1)).unwrap();
        a.emit(Instr::Local(0));
        a.emit(Instr::Push);
        a.emit(Instr::Const(one));
        a.emit(Instr::Push);
        a.emit(Instr::Prim {
            prim: Prim::Sub,
            nargs: 2,
        });
        a.emit(Instr::Push);
        let g = a.global_index(&Symbol::new("loop")).unwrap();
        a.emit(Instr::Global(g));
        a.emit(Instr::TailCall { nargs: 1 });
        let mut m = machine_with("loop", a.finish().unwrap());
        let v = m
            .call_global(&Symbol::new("loop"), vec![Value::Int(1_000_000)])
            .unwrap();
        assert_eq!(v.to_datum(), Some(Datum::sym("done")));
    }

    #[test]
    fn errors_unwind_cleanly() {
        let mut a = Asm::new(Symbol::new("boom"), 0, 0);
        let k = a.const_index(&Datum::Int(1)).unwrap();
        a.emit(Instr::Const(k));
        a.emit(Instr::Push);
        a.emit(Instr::Prim {
            prim: Prim::Car,
            nargs: 1,
        });
        a.emit(Instr::Return);
        let mut m = machine_with("boom", a.finish().unwrap());
        let e = m.call_global(&Symbol::new("boom"), vec![]).unwrap_err();
        assert!(matches!(e, VmError::Prim(_)));
        // Machine remains usable.
        let e2 = m.call_global(&Symbol::new("boom"), vec![]).unwrap_err();
        assert!(matches!(e2, VmError::Prim(_)));
    }

    #[test]
    fn arity_and_unknown_global_errors() {
        let mut a = Asm::new(Symbol::new("id"), 1, 0);
        a.emit(Instr::Local(0));
        a.emit(Instr::Return);
        let mut m = machine_with("id", a.finish().unwrap());
        assert!(matches!(
            m.call_global(&Symbol::new("id"), vec![]).unwrap_err(),
            VmError::BadArity { .. }
        ));
        assert!(matches!(
            m.call_global(&Symbol::new("zzz"), vec![]).unwrap_err(),
            VmError::UnknownGlobal(_)
        ));
        m.define(Symbol::new("n"), Value::Int(5));
        let e = m.call_global(&Symbol::new("n"), vec![]).unwrap_err();
        assert!(matches!(e, VmError::NotAProcedure(_)));
    }

    #[test]
    fn trim_truncates_locals() {
        // f(x): bind two extra locals, trim back to 1, then read local 0.
        let mut a = Asm::new(Symbol::new("f"), 1, 0);
        let k = a.const_index(&Datum::Int(7)).unwrap();
        a.emit(Instr::Const(k));
        a.emit(Instr::Bind);
        a.emit(Instr::Const(k));
        a.emit(Instr::Bind);
        a.emit(Instr::Trim(1));
        a.emit(Instr::Local(0));
        a.emit(Instr::Return);
        let mut m = machine_with("f", a.finish().unwrap());
        let v = m
            .call_global(&Symbol::new("f"), vec![Value::Int(3)])
            .unwrap();
        assert_eq!(v.to_datum(), Some(Datum::Int(3)));
    }

    #[test]
    fn exec_profile_counts_fetches_retires_and_visits() {
        // (define (add1 x) (+ x 1)) — 5 instructions fetched per call
        // (local-ish pair unfused here), 1 visit, 1 retire.
        let mut a = Asm::new(Symbol::new("add1"), 1, 0);
        a.emit(Instr::Local(0));
        a.emit(Instr::Push);
        let one = a.const_index(&Datum::Int(1)).unwrap();
        a.emit(Instr::Const(one));
        a.emit(Instr::Push);
        a.emit(Instr::Prim {
            prim: Prim::Add,
            nargs: 2,
        });
        a.emit(Instr::Return);
        let profile = Arc::new(ExecProfile::new());
        let mut m = machine_with("add1", a.finish().unwrap()).with_profile(profile.clone());
        for i in 0..3 {
            let v = m
                .call_global(&Symbol::new("add1"), vec![Value::Int(i)])
                .unwrap();
            assert_eq!(v.to_datum(), Some(Datum::Int(i + 1)));
        }
        // Flushed at run end: every call's instructions are visible.
        assert_eq!(profile.fetches(), 3 * 6);
        assert_eq!(profile.visits(), 3);
        assert_eq!(profile.retires(), 3);
    }

    #[test]
    fn exec_profile_flushes_mid_run_at_the_stride() {
        // A long self-tail-call loop: the profile must show progress
        // while well below the run's total, i.e. flushes happen at the
        // amortized stride, not only at run end. We can't observe
        // mid-run from one thread, but we can check the stride math:
        // after the run, fetches equals instructions executed exactly.
        let mut a = Asm::new(Symbol::new("spin"), 1, 0);
        let alt = a.make_label();
        let zero = a.const_index(&Datum::Int(0)).unwrap();
        a.emit(Instr::Local(0));
        a.emit(Instr::Push);
        a.emit(Instr::Const(zero));
        a.emit(Instr::Push);
        a.emit(Instr::Prim {
            prim: Prim::NumEq,
            nargs: 2,
        });
        a.emit_jump_if_false(alt);
        a.emit(Instr::Const(zero));
        a.emit(Instr::Return);
        a.attach_label(alt);
        let one = a.const_index(&Datum::Int(1)).unwrap();
        a.emit(Instr::Local(0));
        a.emit(Instr::Push);
        a.emit(Instr::Const(one));
        a.emit(Instr::Push);
        a.emit(Instr::Prim {
            prim: Prim::Sub,
            nargs: 2,
        });
        a.emit(Instr::Push);
        let g = a.global_index(&Symbol::new("spin")).unwrap();
        a.emit(Instr::Global(g));
        a.emit(Instr::TailCall { nargs: 1 });
        let profile = Arc::new(ExecProfile::new());
        let mut m = machine_with("spin", a.finish().unwrap()).with_profile(profile.clone());
        let n = 10_000i64;
        m.call_global(&Symbol::new("spin"), vec![Value::Int(n)])
            .unwrap();
        // n tail iterations of 14 instructions + the final 8-instruction
        // exit path; every visit is a call entry (initial + n tail calls).
        assert_eq!(profile.fetches(), 14 * n as u64 + 8);
        assert_eq!(profile.visits(), n as u64 + 1);
        assert_eq!(profile.retires(), 1);
    }

    #[test]
    fn fuel_limits_execution() {
        let mut a = Asm::new(Symbol::new("spin"), 0, 0);
        let top = a.make_label();
        a.attach_label(top);
        let g = a.global_index(&Symbol::new("spin")).unwrap();
        a.emit(Instr::Global(g));
        a.emit(Instr::TailCall { nargs: 0 });
        let mut m = machine_with("spin", a.finish().unwrap()).with_fuel(10_000);
        let e = m.call_global(&Symbol::new("spin"), vec![]).unwrap_err();
        assert_eq!(e, VmError::FuelExhausted);
    }
}
