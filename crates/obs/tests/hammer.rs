//! Concurrency hammer for the metrics registry: eight writer threads
//! pounding the same families must lose no increments, and snapshots
//! taken mid-flight must stay internally consistent. Run it the way CI
//! does — `cargo test -p two4one-obs --test hammer -- --test-threads=8`
//! — though the test spawns its own threads and passes at any setting.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use two4one_obs::MetricsRegistry;

const THREADS: usize = 8;
const ROUNDS: u64 = 25_000;

#[test]
fn eight_threads_of_counter_traffic_count_exactly() {
    let registry = Arc::new(MetricsRegistry::new());
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let registry = Arc::clone(&registry);
            scope.spawn(move || {
                // Every thread re-requests the handles by name: the
                // registry must dedup to one cell per family.
                let shared = registry.counter("hammer_shared_total");
                let labeled = registry.counter_with("hammer_labeled_total", Some(("kind", "x")));
                let gauge = registry.gauge("hammer_gauge");
                let histo = registry.histogram("hammer_nanos");
                for i in 0..ROUNDS {
                    shared.inc();
                    labeled.add(2);
                    gauge.add(1);
                    gauge.add(-1);
                    // Spread across buckets; (t, i) keeps values varied.
                    histo.record((t as u64 + 1) << (i % 20));
                }
            });
        }
    });
    let snap = registry.snapshot();
    let total = THREADS as u64 * ROUNDS;
    assert_eq!(snap.counter_value("hammer_shared_total", None), Some(total));
    assert_eq!(
        snap.counter_value("hammer_labeled_total", Some("x")),
        Some(2 * total)
    );
    // Every +1 was paired with a -1.
    let prom = snap.to_prometheus();
    assert!(prom.contains("hammer_gauge 0\n"), "gauge drifted:\n{prom}");
    // The histogram saw exactly one record per loop iteration.
    assert!(prom.contains(&format!("hammer_nanos_count {total}\n")));
}

#[test]
fn snapshots_under_fire_are_internally_consistent() {
    let registry = Arc::new(MetricsRegistry::new());
    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let registry = Arc::clone(&registry);
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let histo = registry.histogram("fire_nanos");
                while !stop.load(Ordering::Relaxed) {
                    histo.record(1024);
                }
            });
        }
        // Snapshot repeatedly while the writers run: bucket sums must
        // never exceed the count recorded in the same snapshot by more
        // than the writers could have added between the two reads — we
        // assert the weaker, race-free property that the rendered page
        // parses into monotonically non-decreasing cumulative buckets.
        for _ in 0..50 {
            let prom = registry.snapshot().to_prometheus();
            let mut last = 0u64;
            for line in prom.lines().filter(|l| l.contains("fire_nanos_bucket")) {
                let v: u64 = line
                    .rsplit(' ')
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("bucket line ends with a number");
                assert!(v >= last, "cumulative buckets regressed:\n{prom}");
                last = v;
            }
        }
        stop.store(true, Ordering::Relaxed);
    });
}
