//! The corruption sweep, extended to the binary wire framing: every
//! torn, bit-flipped, zeroed, or garbage-extended frame must decode to a
//! typed [`ProtocolError`] — never a panic — and the decoder must remain
//! fully usable afterwards (it is stateless; a pristine frame still
//! decodes). This is the same 80-seed discipline the `.t4o`/`.t4os`
//! containers are held to.

use std::io::Cursor;
use std::time::Duration;

use two4one_net::wire::{
    self, encode_frame, read_frame, Frame, ProtocolError, RegisterWireRequest, SpecWireRequest,
    WireError,
};
use two4one_testkit::faults::{corrupt, gen_wire_fault, Corruption, WireFault};
use two4one_testkit::Rng;

const MAX_PAYLOAD: usize = 1 << 20;

/// A representative set of valid frames: every request type, every
/// response type with a payload, and both tiny and multi-kilobyte
/// payloads.
fn sample_frames() -> Vec<Vec<u8>> {
    let spec = SpecWireRequest {
        token: "tok-alpha".into(),
        name: "pow".into(),
        statics: "5 (a b c)".into(),
        deadline_ms: 250,
        want: wire::WANT_OBJECT,
    };
    let register = RegisterWireRequest {
        token: "tok-alpha".into(),
        name: "pow".into(),
        source: "(define (pow n x) (if (= n 0) 1 (* x (pow (- n 1) x))))".into(),
        entry: "pow".into(),
        division: "SD".into(),
    };
    let error = WireError {
        code: 429,
        retry_after_ms: 120,
        message: "overloaded".into(),
    };
    let big_payload = vec![0xa5u8; 8 * 1024];
    vec![
        encode_frame(wire::REQ_PING, &[]),
        encode_frame(wire::REQ_SPEC, &spec.encode()),
        encode_frame(wire::REQ_REGISTER, &register.encode()),
        encode_frame(wire::RESP_ERROR, &error.encode()),
        encode_frame(wire::RESP_OBJECT, &big_payload),
    ]
}

fn decode_all(bytes: &[u8]) -> Vec<Result<Option<Frame>, ProtocolError>> {
    let mut cursor = Cursor::new(bytes);
    let mut out = Vec::new();
    loop {
        match read_frame(&mut cursor, MAX_PAYLOAD) {
            Ok(None) => break,
            other => {
                let done = other.is_err();
                out.push(other);
                if done {
                    break;
                }
            }
        }
    }
    out
}

#[test]
fn corruption_sweep_over_wire_frames() {
    let frames = sample_frames();
    for seed in 0..80u64 {
        let mut rng = Rng::new(seed);
        for (i, pristine) in frames.iter().enumerate() {
            let (damaged, kind) = corrupt(pristine, &mut rng.fork());
            let results = decode_all(&damaged);
            match kind {
                // Appending garbage leaves the first frame intact: it
                // must decode byte-identically, and the garbage tail must
                // then fail with a typed error (short of the one-in-2^32
                // chance of aliasing a valid frame, which the fixed seeds
                // below never hit).
                Corruption::Append => {
                    let first = results
                        .first()
                        .unwrap_or_else(|| panic!("seed {seed} frame {i}: append yielded nothing"));
                    match first {
                        Ok(Some(frame)) => {
                            let reencoded = encode_frame(frame.ftype, &frame.payload);
                            assert_eq!(
                                &reencoded, pristine,
                                "seed {seed} frame {i}: appended garbage altered the first frame"
                            );
                        }
                        other => panic!(
                            "seed {seed} frame {i}: first frame should survive append, got {other:?}"
                        ),
                    }
                    assert!(
                        results.len() >= 2 && results[1].is_err(),
                        "seed {seed} frame {i}: garbage tail must be a typed error, got {results:?}"
                    );
                }
                // Damage to the frame itself must never be silently
                // swallowed: either framing breaks with a typed error, or
                // the decode visibly differs from the original (e.g. a
                // flipped frame-type byte yields a well-formed frame of
                // another type — which the server's dispatch then answers
                // with a typed error of its own). A byte-identical decode
                // of the original from damaged bytes would mean the CRC
                // and reserved-byte checks have holes.
                Corruption::BitFlip | Corruption::Truncate | Corruption::ZeroSpan => {
                    if damaged == *pristine {
                        // The span zeroed bytes that were already zero —
                        // no corruption actually happened; the decode
                        // must succeed and match.
                        assert!(matches!(results.first(), Some(Ok(Some(_)))));
                        continue;
                    }
                    if damaged.is_empty() {
                        // Truncated to nothing: a clean close at the
                        // frame boundary, by design.
                        assert!(results.is_empty());
                        continue;
                    }
                    let errored = results.iter().any(Result::is_err);
                    let reencoded: Vec<u8> = results
                        .iter()
                        .filter_map(|r| match r {
                            Ok(Some(f)) => Some(encode_frame(f.ftype, &f.payload)),
                            _ => None,
                        })
                        .flatten()
                        .collect();
                    assert!(
                        errored || reencoded != *pristine,
                        "seed {seed} frame {i} ({kind:?}): damaged bytes decoded \
                         silently back to the original frame"
                    );
                }
            }
            // The decoder is stateless: after swallowing garbage it must
            // still decode a pristine frame — the "still-usable loop"
            // property the live server builds on.
            let redecoded = read_frame(&mut Cursor::new(pristine), MAX_PAYLOAD)
                .unwrap_or_else(|e| panic!("seed {seed} frame {i}: pristine frame broke: {e}"))
                .unwrap_or_else(|| panic!("seed {seed} frame {i}: pristine frame was EOF"));
            let reencoded = encode_frame(redecoded.ftype, &redecoded.payload);
            assert_eq!(&reencoded, pristine);
        }
    }
}

#[test]
fn wire_fault_shapes_decode_to_typed_errors() {
    // The storm test drives these faults over real sockets; here the same
    // byte shapes are pushed through the decoder directly so a regression
    // is caught even without a listener.
    let frame = encode_frame(
        wire::REQ_SPEC,
        &SpecWireRequest {
            token: String::new(),
            name: "pow".into(),
            statics: "3".into(),
            deadline_ms: 0,
            want: wire::WANT_META,
        }
        .encode(),
    );
    for seed in 0..80u64 {
        let mut rng = Rng::new(seed);
        match gen_wire_fault(&mut rng, frame.len(), Duration::ZERO) {
            WireFault::TornFrame { keep } => {
                let result = read_frame(&mut Cursor::new(&frame[..keep]), MAX_PAYLOAD);
                if keep == 0 {
                    assert!(matches!(result, Ok(None)), "keep=0 is a clean close");
                } else {
                    assert!(
                        matches!(result, Err(ProtocolError::Torn { .. })),
                        "seed {seed}: torn at {keep} gave {result:?}"
                    );
                }
            }
            WireFault::GarbageBytes(bytes) => {
                let result = read_frame(&mut Cursor::new(&bytes), MAX_PAYLOAD);
                assert!(
                    matches!(
                        result,
                        Err(ProtocolError::BadMagic(_)) | Err(ProtocolError::Torn { .. })
                    ),
                    "seed {seed}: garbage gave {result:?}"
                );
            }
            // Socket-timing faults have no in-memory decoding shape; the
            // live-server storm test owns them.
            WireFault::StalledWriter { .. } | WireFault::MidStreamAbort => {}
        }
    }
}
