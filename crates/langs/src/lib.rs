//! The paper's benchmark subjects (Sec. 7): interpreters for MIXWELL and
//! LAZY, written in the Scheme subset this system accepts, plus the input
//! programs they are specialized over.
//!
//! "For our benchmarks, we used two standard examples for compilation by
//! partial evaluation: an interpreter for a small first-order functional
//! language called MIXWELL, and one for a small lazy functional language
//! called LAZY." The originals came with the Similix distribution; these
//! are faithful re-creations at the same scale (the paper's MIXWELL
//! interpreter was 93 lines on a 62-line input, LAZY was 127 lines on a
//! 26-line input).
//!
//! Both interpreters follow the standard binding-time discipline for
//! compilation by partial evaluation: the environment is split into a
//! *static* list of names and a *dynamic* list of values (or thunks), so
//! variable lookup unfolds into direct accesses, and the only memoization
//! point is the function-call handler — one residual definition per
//! interpreted function.

use two4one_syntax::acs::CallPolicy;
use two4one_syntax::datum::Datum;
use two4one_syntax::reader::read_one;

pub mod grammar;

/// The MIXWELL interpreter (first-order functional language).
///
/// A MIXWELL program is `((fname (param ...) body) ...)`, the first
/// function is the entry. Expressions: numbers, variables (symbols),
/// `(quote c)`, `(if t c a)`, `(call f e ...)`, and `(op e ...)` for the
/// operators handled by `mw-apply-op`.
pub const MIXWELL_INTERP: &str = r#"
;; --- MIXWELL: an interpreter for a small first-order functional language.

(define (mixwell-run program args)
  (mw-call (mw-def-name (car program)) args program))

(define (mw-def-name d) (car d))
(define (mw-def-params d) (cadr d))
(define (mw-def-body d) (caddr d))

(define (mw-lookup-fn name program)
  (cond ((null? program) (error "mixwell: undefined function" name))
        ((eq? name (mw-def-name (car program))) (car program))
        (else (mw-lookup-fn name (cdr program)))))

;; names is static, vals is a dynamic list: the lookup unfolds into a
;; car/cdr chain on the runtime argument list.
(define (mw-lookup-var x names vals)
  (cond ((null? names) (error "mixwell: unbound variable" x))
        ((eq? x (car names)) (car vals))
        (else (mw-lookup-var x (cdr names) (cdr vals)))))

;; The specialization point: one residual function per MIXWELL function.
(define (mw-call fname args program)
  (let ((def (mw-lookup-fn fname program)))
    (mw-eval (mw-def-body def) (mw-def-params def) args program)))

(define (mw-eval e names vals program)
  (cond ((number? e) e)
        ((symbol? e) (mw-lookup-var e names vals))
        ((eq? (car e) 'quote) (cadr e))
        ((eq? (car e) 'if)
         (if (mw-eval (cadr e) names vals program)
             (mw-eval (caddr e) names vals program)
             (mw-eval (cadddr e) names vals program)))
        ((eq? (car e) 'call)
         (mw-call (cadr e) (mw-evlist (cddr e) names vals program) program))
        (else
         (mw-apply-op (car e) (mw-evlist (cdr e) names vals program)))))

(define (mw-evlist es names vals program)
  (if (null? es)
      '()
      (cons (mw-eval (car es) names vals program)
            (mw-evlist (cdr es) names vals program))))

(define (mw-apply-op op args)
  (cond ((eq? op 'car) (car (car args)))
        ((eq? op 'cdr) (cdr (car args)))
        ((eq? op 'cons) (cons (car args) (cadr args)))
        ((eq? op 'null?) (null? (car args)))
        ((eq? op 'pair?) (pair? (car args)))
        ((eq? op 'eq?) (eq? (car args) (cadr args)))
        ((eq? op 'equal?) (equal? (car args) (cadr args)))
        ((eq? op 'not) (not (car args)))
        ((eq? op '+) (+ (car args) (cadr args)))
        ((eq? op '-) (- (car args) (cadr args)))
        ((eq? op '*) (* (car args) (cadr args)))
        ((eq? op 'quotient) (quotient (car args) (cadr args)))
        ((eq? op 'remainder) (remainder (car args) (cadr args)))
        ((eq? op '=) (= (car args) (cadr args)))
        ((eq? op '<) (< (car args) (cadr args)))
        ((eq? op '>) (> (car args) (cadr args)))
        ((eq? op '<=) (<= (car args) (cadr args)))
        (else (error "mixwell: unknown operator" op))))
"#;

/// Unfold/memoize policy for the MIXWELL interpreter: `mw-call` is the
/// specialization point, everything else unfolds.
pub fn mixwell_policies() -> Vec<(&'static str, CallPolicy)> {
    vec![
        ("mw-call", CallPolicy::Memoize),
        ("mw-eval", CallPolicy::Unfold),
        ("mw-evlist", CallPolicy::Unfold),
        ("mw-lookup-var", CallPolicy::Unfold),
        ("mw-lookup-fn", CallPolicy::Unfold),
        ("mw-apply-op", CallPolicy::Unfold),
    ]
}

/// The medium-sized MIXWELL input program the interpreter is specialized
/// over (cf. the paper's 62-line input): list utilities plus a prime
/// filter, exercising recursion, data construction, and arithmetic.
pub const MIXWELL_PROGRAM: &str = r#"
((main (n)
   (call pair-up (call primes-upto n) (call squares-upto n)))

 (primes-upto (n)
   (call primes-loop 2 n (quote ())))

 (primes-loop (i n acc)
   (if (< n i)
       (call reverse-onto acc (quote ()))
       (if (call prime? i)
           (call primes-loop (+ i 1) n (cons i acc))
           (call primes-loop (+ i 1) n acc))))

 (prime? (i)
   (call has-no-divisor 2 i))

 (has-no-divisor (j i)
   (if (= j i)
       (quote #t)
       (if (= (remainder i j) 0)
           (quote #f)
           (call has-no-divisor (+ j 1) i))))

 (squares-upto (n)
   (call squares-loop 1 n))

 (squares-loop (i n)
   (if (< n i)
       (quote ())
       (cons (* i i) (call squares-loop (+ i 1) n))))

 (reverse-onto (xs acc)
   (if (null? xs)
       acc
       (call reverse-onto (cdr xs) (cons (car xs) acc))))

 (pair-up (xs ys)
   (if (null? xs)
       (quote ())
       (if (null? ys)
           (quote ())
           (cons (cons (car xs) (car ys))
                 (call pair-up (cdr xs) (cdr ys))))))

 (length (xs)
   (if (null? xs) 0 (+ 1 (call length (cdr xs)))))

 (append (xs ys)
   (if (null? xs) ys (cons (car xs) (call append (cdr xs) ys)))))
"#;

/// The LAZY interpreter (small lazy functional language).
///
/// A LAZY program is `((fname (param ...) body) ...)`; calls are
/// call-by-name (arguments are passed as thunks) and `cons` is lazy in
/// both positions, so programs can build infinite structures. Expressions:
/// numbers, variables, `(quote c)`, `(if t c a)`, `(cons e e)`,
/// `(call f e ...)`, and strict operators `(op e ...)`.
pub const LAZY_INTERP: &str = r#"
;; --- LAZY: an interpreter for a small lazy (call-by-name) language.
;; Environments map static names to dynamic thunks; lazy pairs are host
;; pairs of thunks.

(define (lazy-run program args)
  (lz-call (lz-def-name (car program)) (lz-wrap-args args) program))

(define (lz-def-name d) (car d))
(define (lz-def-params d) (cadr d))
(define (lz-def-body d) (caddr d))

;; The program's (already evaluated, dynamic) top-level arguments become
;; constant thunks.
(define (lz-wrap-args vals)
  (if (null? vals)
      '()
      (cons (lz-const-thunk (car vals)) (lz-wrap-args (cdr vals)))))

(define (lz-const-thunk v)
  (lambda () v))

(define (lz-force th) (th))

(define (lz-lookup-fn name program)
  (cond ((null? program) (error "lazy: undefined function" name))
        ((eq? name (lz-def-name (car program))) (car program))
        (else (lz-lookup-fn name (cdr program)))))

(define (lz-lookup-var x names thunks)
  (cond ((null? names) (error "lazy: unbound variable" x))
        ((eq? x (car names)) (car thunks))
        (else (lz-lookup-var x (cdr names) (cdr thunks)))))

;; The specialization point: one residual function per LAZY function.
(define (lz-call fname thunks program)
  (let ((def (lz-lookup-fn fname program)))
    (lz-eval (lz-def-body def) (lz-def-params def) thunks program)))

(define (lz-eval e names thunks program)
  (cond ((number? e) e)
        ((symbol? e) (lz-force (lz-lookup-var e names thunks)))
        ((eq? (car e) 'quote) (cadr e))
        ((eq? (car e) 'if)
         (if (lz-eval (cadr e) names thunks program)
             (lz-eval (caddr e) names thunks program)
             (lz-eval (cadddr e) names thunks program)))
        ((eq? (car e) 'cons)
         (cons (lz-make-thunk (cadr e) names thunks program)
               (lz-make-thunk (caddr e) names thunks program)))
        ((eq? (car e) 'call)
         (lz-call (cadr e)
                  (lz-thunkify (cddr e) names thunks program)
                  program))
        (else
         (lz-apply-op (car e) (lz-evlist (cdr e) names thunks program)))))

;; Build one thunk per argument: laziness itself.
(define (lz-make-thunk e names thunks program)
  (lambda () (lz-eval e names thunks program)))

(define (lz-thunkify es names thunks program)
  (if (null? es)
      '()
      (cons (lz-make-thunk (car es) names thunks program)
            (lz-thunkify (cdr es) names thunks program))))

(define (lz-evlist es names thunks program)
  (if (null? es)
      '()
      (cons (lz-eval (car es) names thunks program)
            (lz-evlist (cdr es) names thunks program))))

(define (lz-apply-op op args)
  (cond ((eq? op 'car) (lz-force (car (car args))))
        ((eq? op 'cdr) (lz-force (cdr (car args))))
        ((eq? op 'null?) (null? (car args)))
        ((eq? op 'pair?) (pair? (car args)))
        ((eq? op 'eq?) (eq? (car args) (cadr args)))
        ((eq? op 'not) (not (car args)))
        ((eq? op '+) (+ (car args) (cadr args)))
        ((eq? op '-) (- (car args) (cadr args)))
        ((eq? op '*) (* (car args) (cadr args)))
        ((eq? op '=) (= (car args) (cadr args)))
        ((eq? op '<) (< (car args) (cadr args)))
        ((eq? op '>) (> (car args) (cadr args)))
        (else (error "lazy: unknown operator" op))))
"#;

/// Unfold/memoize policy for the LAZY interpreter.
pub fn lazy_policies() -> Vec<(&'static str, CallPolicy)> {
    vec![
        ("lz-call", CallPolicy::Memoize),
        ("lz-eval", CallPolicy::Unfold),
        ("lz-evlist", CallPolicy::Unfold),
        ("lz-thunkify", CallPolicy::Unfold),
        ("lz-make-thunk", CallPolicy::Unfold),
        ("lz-lookup-var", CallPolicy::Unfold),
        ("lz-lookup-fn", CallPolicy::Unfold),
        ("lz-apply-op", CallPolicy::Unfold),
        ("lz-force", CallPolicy::Unfold),
        ("lz-const-thunk", CallPolicy::Unfold),
    ]
}

/// The LAZY input program (cf. the paper's 26-line input): the classic
/// infinite-stream pipeline — naturals from `n`, map square, take `k`,
/// sum — which only terminates because evaluation is lazy.
pub const LAZY_PROGRAM: &str = r#"
((main (n k)
   (call sum (call take k (call map-square (call nats-from n)))))

 (nats-from (n)
   (cons n (call nats-from (+ n 1))))

 (map-square (s)
   (cons (* (car s) (car s)) (call map-square (cdr s))))

 (take (k s)
   (if (= k 0)
       (quote ())
       (cons (car s) (call take (- k 1) (cdr s)))))

 (sum (s)
   (if (null? s)
       0
       (+ (car s) (call sum (cdr s))))))
"#;

/// Parses the MIXWELL input program to a datum.
///
/// The embedded source is well-formed by construction; a malformed
/// constant (a bug in this crate, caught by tests) yields `()`.
pub fn mixwell_program() -> Datum {
    read_one(MIXWELL_PROGRAM).unwrap_or(Datum::Nil)
}

/// Parses the LAZY input program to a datum.
///
/// The embedded source is well-formed by construction; a malformed
/// constant (a bug in this crate, caught by tests) yields `()`.
pub fn lazy_program() -> Datum {
    read_one(LAZY_PROGRAM).unwrap_or(Datum::Nil)
}

/// A tiny MIXWELL program (Ackermann) for quick tests.
pub const MIXWELL_ACKERMANN: &str = r#"
((main (m n) (call ack m n))
 (ack (m n)
   (if (= m 0)
       (+ n 1)
       (if (= n 0)
           (call ack (- m 1) 1)
           (call ack (- m 1) (call ack m (- n 1)))))))
"#;

/// Classic specialization subjects used across examples and benches.
pub mod classics {
    /// Power: the canonical partial-evaluation example.
    pub const POWER: &str = "(define (power x n) (if (= n 0) 1 (* x (power x (- n 1)))))";

    /// A naive string/list matcher; specializing it to a fixed pattern
    /// yields a hard-coded matcher (the KMP-by-PE tradition).
    pub const MATCHER: &str = r#"
(define (match pattern text)
  (match-loop pattern text))

(define (match-loop p t)
  (cond ((null? p) #t)
        ((null? t) #f)
        ((equal? (car p) (car t)) (match-here (cdr p) (cdr t) p t))
        (else (match-loop p (cdr t)))))

(define (match-here p t p0 t0)
  (cond ((null? p) #t)
        ((null? t) #f)
        ((equal? (car p) (car t)) (match-here (cdr p) (cdr t) p0 t0))
        (else (match-loop p0 (cdr t0)))))
"#;

    /// Dot product with a static weight vector: zero weights vanish at
    /// specialization time.
    pub const DOT: &str = r#"
(define (dot ws xs)
  (if (null? ws)
      0
      (+ (* (car ws) (car xs)) (dot (cdr ws) (cdr xs)))))
"#;
}

/// An interpreter for FCL, the flowchart language of the classic
/// partial-evaluation literature (Jones/Gomard/Sestoft's `mix`). A program
/// is
///
/// ```text
/// ((param ...) (local ...) init-label
///  (label (assign x e) ... (goto l | if e l1 l2 | return e)) ...)
/// ```
///
/// Expressions are numbers, variables, `(quote c)`, and strict operators.
/// The store follows the standard discipline: variable *names* are static,
/// their *values* live in a parallel dynamic list, and assignment rebuilds
/// the value list at a statically known position. Specializing the
/// interpreter over a static program yields one residual function per
/// program point — polyvariant program-point specialization, the original
/// `mix` result.
pub const FCL_INTERP: &str = r#"
;; --- FCL: the flowchart language of the partial-evaluation classics.

(define (fcl-run prog args)
  (fcl-block (fcl-init prog)
             (append (fcl-locals prog) (fcl-params prog))
             (fcl-zeros (fcl-locals prog) args)
             prog))

;; Locals sit in front of the parameters so the store can be built by
;; consing static zeros onto the dynamic argument list.
(define (fcl-zeros locals args)
  (if (null? locals) args (cons 0 (fcl-zeros (cdr locals) args))))

(define (fcl-params prog) (car prog))
(define (fcl-locals prog) (cadr prog))
(define (fcl-init prog) (caddr prog))
(define (fcl-blocks prog) (cdddr prog))

(define (fcl-find-block label blocks)
  (cond ((null? blocks) (error "fcl: no such block" label))
        ((eq? label (car (car blocks))) (cdr (car blocks)))
        (else (fcl-find-block label (cdr blocks)))))

;; The specialization point: one residual function per program point.
(define (fcl-block label names store prog)
  (fcl-body (fcl-find-block label (fcl-blocks prog)) names store prog))

(define (fcl-body stmts names store prog)
  (if (null? (cdr stmts))
      (fcl-jump (car stmts) names store prog)
      (fcl-body (cdr stmts)
                names
                (fcl-assign (car stmts) names store prog)
                prog)))

;; (assign x e): rebuild the dynamic store with slot x replaced.
(define (fcl-assign stmt names store prog)
  (fcl-update (cadr stmt) names store (fcl-eval (caddr stmt) names store)))

(define (fcl-update x names store v)
  (if (eq? x (car names))
      (cons v (cdr store))
      (cons (car store) (fcl-update x (cdr names) (cdr store) v))))

(define (fcl-jump stmt names store prog)
  (cond ((eq? (car stmt) 'goto)
         (fcl-block (cadr stmt) names store prog))
        ((eq? (car stmt) 'if)
         (if (fcl-eval (cadr stmt) names store)
             (fcl-block (caddr stmt) names store prog)
             (fcl-block (cadddr stmt) names store prog)))
        ((eq? (car stmt) 'return)
         (fcl-eval (cadr stmt) names store))
        (else (error "fcl: bad jump" stmt))))

(define (fcl-eval e names store)
  (cond ((number? e) e)
        ((symbol? e) (fcl-lookup e names store))
        ((eq? (car e) 'quote) (cadr e))
        ((eq? (car e) '+) (+ (fcl-eval (cadr e) names store)
                             (fcl-eval (caddr e) names store)))
        ((eq? (car e) '-) (- (fcl-eval (cadr e) names store)
                             (fcl-eval (caddr e) names store)))
        ((eq? (car e) '*) (* (fcl-eval (cadr e) names store)
                             (fcl-eval (caddr e) names store)))
        ((eq? (car e) '=) (= (fcl-eval (cadr e) names store)
                             (fcl-eval (caddr e) names store)))
        ((eq? (car e) '<) (< (fcl-eval (cadr e) names store)
                             (fcl-eval (caddr e) names store)))
        ((eq? (car e) '>) (> (fcl-eval (cadr e) names store)
                             (fcl-eval (caddr e) names store)))
        (else (error "fcl: bad expression" e))))

(define (fcl-lookup x names store)
  (cond ((null? names) (error "fcl: unbound" x))
        ((eq? x (car names)) (car store))
        (else (fcl-lookup x (cdr names) (cdr store)))))
"#;

/// Policies for the FCL interpreter: program points are the memoization
/// unit; everything else unfolds.
pub fn fcl_policies() -> Vec<(&'static str, CallPolicy)> {
    vec![
        ("fcl-block", CallPolicy::Memoize),
        ("fcl-body", CallPolicy::Unfold),
        ("fcl-assign", CallPolicy::Unfold),
        ("fcl-update", CallPolicy::Unfold),
        ("fcl-jump", CallPolicy::Unfold),
        ("fcl-eval", CallPolicy::Unfold),
        ("fcl-lookup", CallPolicy::Unfold),
        ("fcl-find-block", CallPolicy::Unfold),
        ("fcl-params", CallPolicy::Unfold),
        ("fcl-init", CallPolicy::Unfold),
        ("fcl-blocks", CallPolicy::Unfold),
        ("fcl-locals", CallPolicy::Unfold),
        ("fcl-zeros", CallPolicy::Unfold),
    ]
}

/// An FCL program: iterative exponentiation with an accumulator —
/// flowchart `power`, the `mix` classic.
pub const FCL_POWER: &str = r#"
((x n) (acc) start
 (start (assign acc 1) (goto test))
 (test (if (= n 0) done loop))
 (loop (assign acc (* acc x)) (assign n (- n 1)) (goto test))
 (done (return acc)))
"#;

/// Parses the FCL power program.
///
/// The embedded source is well-formed by construction; a malformed
/// constant (a bug in this crate, caught by tests) yields `()`.
pub fn fcl_power() -> Datum {
    read_one(FCL_POWER).unwrap_or(Datum::Nil)
}

/// A deterministic finite automaton interpreter, written with the
/// transition table static and the input word dynamic. Specializing it
/// over a concrete DFA compiles the table away: the residual program is a
/// family of mutually recursive state functions — a hard-coded matcher,
/// generated at run time.
///
/// A DFA is `(start (accepting ...) ((state symbol next) ...))`; the input
/// is a list of symbols. Missing transitions reject.
pub const DFA_INTERP: &str = r#"
;; --- DFA: a table-driven automaton interpreter.

(define (dfa-run dfa word)
  (dfa-state (dfa-start dfa) word dfa))

(define (dfa-start dfa) (car dfa))
(define (dfa-accepting dfa) (cadr dfa))
(define (dfa-table dfa) (caddr dfa))

;; The specialization point: one residual function per automaton state.
(define (dfa-state q word dfa)
  (if (null? word)
      (dfa-member q (dfa-accepting dfa))
      (dfa-step q (car word) (cdr word) dfa)))

(define (dfa-step q sym rest dfa)
  (dfa-dispatch q sym rest (dfa-table dfa) dfa))

(define (dfa-dispatch q sym rest table dfa)
  (cond ((null? table) #f)
        ((eq? q (car (car table)))
         (if (eq? sym (cadr (car table)))
             (dfa-state (caddr (car table)) rest dfa)
             (dfa-dispatch q sym rest (cdr table) dfa)))
        (else (dfa-dispatch q sym rest (cdr table) dfa))))

(define (dfa-member x xs)
  (cond ((null? xs) #f)
        ((eq? x (car xs)) #t)
        (else (dfa-member x (cdr xs)))))
"#;

/// Policies for the DFA interpreter: each *state* becomes a residual
/// function; the table walk unfolds away.
pub fn dfa_policies() -> Vec<(&'static str, CallPolicy)> {
    vec![
        ("dfa-state", CallPolicy::Memoize),
        ("dfa-step", CallPolicy::Unfold),
        ("dfa-dispatch", CallPolicy::Unfold),
        ("dfa-member", CallPolicy::Unfold),
        ("dfa-start", CallPolicy::Unfold),
        ("dfa-accepting", CallPolicy::Unfold),
        ("dfa-table", CallPolicy::Unfold),
    ]
}

/// An example DFA: accepts words over {a, b} containing the substring
/// `a b a`.
pub const DFA_ABA: &str = r#"
(s0 (s3)
    ((s0 a s1) (s0 b s0)
     (s1 a s1) (s1 b s2)
     (s2 a s3) (s2 b s0)
     (s3 a s3) (s3 b s3)))
"#;

/// Parses the example DFA.
///
/// The embedded source is well-formed by construction; a malformed
/// constant (a bug in this crate, caught by tests) yields `()`.
pub fn dfa_aba() -> Datum {
    read_one(DFA_ABA).unwrap_or(Datum::Nil)
}

#[cfg(test)]
mod tests {
    use super::*;
    use two4one_syntax::reader::read_all;

    #[test]
    fn embedded_sources_parse() {
        assert!(read_all(MIXWELL_INTERP).unwrap().len() >= 8);
        assert!(read_all(LAZY_INTERP).unwrap().len() >= 12);
        assert_eq!(mixwell_program().list_len(), Some(11));
        assert_eq!(lazy_program().list_len(), Some(5));
        assert!(read_all(classics::MATCHER).unwrap().len() == 3);
    }

    #[test]
    fn dfa_sources_parse() {
        assert!(read_all(DFA_INTERP).unwrap().len() >= 7);
        assert_eq!(dfa_aba().list_len(), Some(3));
    }

    #[test]
    fn interpreter_sizes_match_paper_scale() {
        let lines = |s: &str| s.lines().filter(|l| !l.trim().is_empty()).count();
        // Paper: MIXWELL 93 lines, LAZY 127 lines, inputs 62 and 26. Our
        // re-creations are denser (cond instead of nested ifs, no module
        // headers) but the same order of magnitude.
        assert!(lines(MIXWELL_INTERP) >= 50, "{}", lines(MIXWELL_INTERP));
        assert!(lines(LAZY_INTERP) >= 65, "{}", lines(LAZY_INTERP));
        assert!(lines(MIXWELL_PROGRAM) >= 35, "{}", lines(MIXWELL_PROGRAM));
        assert!(lines(LAZY_PROGRAM) >= 13, "{}", lines(LAZY_PROGRAM));
    }
}
