//! The socket front end: accept loops, per-connection handlers, the
//! reaper, and graceful drain.
//!
//! # Threading model
//!
//! A small pool of accept threads shares one non-blocking listener
//! (thread-per-core, capped); each accepted connection gets its own named
//! handler thread whose top frame is a `catch_unwind` barrier — a bug in
//! one connection can never take down the process or any other
//! connection. A single reaper thread owns deadline enforcement and
//! disconnect detection for connections that are busy specializing.
//!
//! # Failure domains
//!
//! Every read and write runs under a deadline (`SO_RCVTIMEO`-style ticks
//! against an absolute budget), so slow-loris peers, stalled writers, and
//! half-open connections are *reaped*, never waited on. Protocol garbage
//! is answered with a typed error and a close; the accept loop — and
//! every other connection — keeps serving. Client disconnects noticed
//! mid-request fire the request's [`CancelToken`] child so the
//! specializer stops burning fuel for an answer nobody will read.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread;
use std::time::{Duration, Instant};

use two4one::{encode_image, obs, reader, CancelToken, Division, Limits, Pgg, BT};
use two4one_langs::grammar as langs_grammar;
use two4one_server::{ServeError, SpecRequest, SpecService};

use crate::http;
use crate::json::{self, Json};
use crate::stats::{NetSnapshot, NetStats};
use crate::tenants::{TenantDenied, TenantGuard, TenantTable};
use crate::wire::{self, ProtocolError, WireError};

/// Tuning for a [`NetServer`]. The defaults are production-shaped:
/// bounded everywhere, generous nowhere.
#[derive(Debug)]
pub struct NetConfig {
    /// Listen address, e.g. `"127.0.0.1:4174"`; port `0` picks a free one.
    pub listen: String,
    /// Accept threads; `0` means `min(available cores, 8)`.
    pub accept_threads: usize,
    /// Global open-connection budget; connections beyond it are refused
    /// at accept (before any handler thread is spawned).
    pub max_conns: usize,
    /// Socket poll granularity: how often blocked reads/writes re-check
    /// their deadline, and how often the reaper sweeps.
    pub io_tick: Duration,
    /// How long a keep-alive connection may sit idle between requests
    /// before it is reaped.
    pub idle_timeout: Duration,
    /// Budget for reading one request once its first byte arrived, for
    /// serving it, and (separately) for writing its response. This is the
    /// slow-loris bound: a peer trickling one byte per tick still hits it.
    pub request_deadline: Duration,
    /// How long drain waits for in-flight connections before shedding
    /// the stragglers.
    pub drain_timeout: Duration,
    /// Largest accepted binary-protocol payload.
    pub max_frame: usize,
    /// Largest accepted HTTP request head.
    pub max_http_head: usize,
    /// Largest accepted HTTP request body.
    pub max_http_body: usize,
    /// Tenant table; `None` runs the server in open (unauthenticated)
    /// mode.
    pub tenants: Option<TenantTable>,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            listen: "127.0.0.1:0".to_string(),
            accept_threads: 0,
            max_conns: 256,
            io_tick: Duration::from_millis(25),
            idle_timeout: Duration::from_secs(30),
            request_deadline: Duration::from_secs(10),
            drain_timeout: Duration::from_secs(5),
            max_frame: 16 << 20,
            max_http_head: 16 << 10,
            max_http_body: 1 << 20,
            tenants: None,
        }
    }
}

/// Connection lifecycle states (for the reaper's benefit).
const READING: u8 = 0;
/// The handler is inside the service — doing no socket I/O — so the
/// reaper may probe the socket for a client disconnect.
const SERVING: u8 = 1;
const WRITING: u8 = 2;

/// What the reaper knows about one live connection.
struct ConnWatch {
    /// A `try_clone` of the connection socket (shares the fd).
    stream: TcpStream,
    /// Current lifecycle state (`READING` / `SERVING` / `WRITING`).
    state: AtomicU8,
    /// Connection-scoped cancel token; requests derive children from it,
    /// so firing it stops whatever the connection is working on.
    cancel: CancelToken,
    /// Set once a disconnect has been counted (the reaper sweeps every
    /// tick; the counter must move once per connection, not per tick).
    disconnect_noted: AtomicBool,
}

struct ServerInner {
    service: Arc<SpecService>,
    config: NetConfig,
    listener: TcpListener,
    addr: SocketAddr,
    draining: AtomicBool,
    drain_deadline: Mutex<Option<Instant>>,
    accept_stop: AtomicBool,
    reaper_stop: AtomicBool,
    next_conn_id: AtomicU64,
    active_conns: AtomicUsize,
    conns: Mutex<HashMap<u64, Arc<ConnWatch>>>,
    stats: NetStats,
    registry: obs::MetricsRegistry,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl ServerInner {
    fn draining(&self) -> bool {
        self.draining.load(Ordering::Acquire)
    }
}

/// A running network front end over one [`SpecService`].
///
/// Bind with [`NetServer::bind`]; stop with [`NetServer::drain`] +
/// [`NetServer::join`] (or [`NetServer::shutdown`] for both at once).
pub struct NetServer {
    inner: Arc<ServerInner>,
    accept_handles: Vec<thread::JoinHandle<()>>,
    reaper_handle: Option<thread::JoinHandle<()>>,
}

impl NetServer {
    /// Binds the listener and starts the accept pool and reaper.
    ///
    /// # Errors
    ///
    /// Socket-level failures from binding or configuring the listener.
    pub fn bind(service: Arc<SpecService>, config: NetConfig) -> io::Result<NetServer> {
        let listener = TcpListener::bind(&config.listen)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let registry = obs::MetricsRegistry::new();
        let stats = NetStats::register(&registry);
        let threads = if config.accept_threads == 0 {
            thread::available_parallelism()
                .map_or(2, usize::from)
                .min(8)
        } else {
            config.accept_threads
        };
        let inner = Arc::new(ServerInner {
            service,
            config,
            listener,
            addr,
            draining: AtomicBool::new(false),
            drain_deadline: Mutex::new(None),
            accept_stop: AtomicBool::new(false),
            reaper_stop: AtomicBool::new(false),
            next_conn_id: AtomicU64::new(1),
            active_conns: AtomicUsize::new(0),
            conns: Mutex::new(HashMap::new()),
            stats,
            registry,
        });
        let mut accept_handles = Vec::with_capacity(threads);
        for i in 0..threads {
            let inner = Arc::clone(&inner);
            let handle = thread::Builder::new()
                .name(format!("t4o-net-accept-{i}"))
                .spawn(move || accept_loop(&inner))
                .map_err(|e| io::Error::other(format!("cannot spawn accept thread: {e}")))?;
            accept_handles.push(handle);
        }
        let reaper_inner = Arc::clone(&inner);
        let reaper_handle = thread::Builder::new()
            .name("t4o-net-reaper".to_string())
            .spawn(move || reaper_loop(&reaper_inner))
            .map_err(|e| io::Error::other(format!("cannot spawn reaper thread: {e}")))?;
        Ok(NetServer {
            inner,
            accept_handles,
            reaper_handle: Some(reaper_handle),
        })
    }

    /// The bound address (useful with port `0`).
    pub fn addr(&self) -> SocketAddr {
        self.inner.addr
    }

    /// The service this front end exposes.
    pub fn service(&self) -> &Arc<SpecService> {
        &self.inner.service
    }

    /// True once [`drain`](NetServer::drain) has been called.
    pub fn draining(&self) -> bool {
        self.inner.draining()
    }

    /// A point-in-time copy of the network counters.
    pub fn net_snapshot(&self) -> NetSnapshot {
        self.inner.stats.snapshot()
    }

    /// The network-layer metrics merged with the service's (which already
    /// include the process-global families) — the exact content of the
    /// `/metrics` endpoint.
    pub fn metrics(&self) -> obs::MetricsSnapshot {
        self.inner
            .registry
            .snapshot()
            .merge(self.inner.service.metrics())
    }

    /// Begins a graceful drain: stop accepting, let in-flight work finish
    /// within the drain timeout, shed whatever remains. Idempotent.
    pub fn drain(&self) {
        if !self.inner.draining.swap(true, Ordering::AcqRel) {
            self.inner.stats.drain_events.inc();
            *lock(&self.inner.drain_deadline) =
                Some(Instant::now() + self.inner.config.drain_timeout);
        }
    }

    /// Waits for the drain to complete (all accept threads exited, all
    /// connections closed or shed, reaper stopped) and returns the final
    /// counters. Call [`drain`](NetServer::drain) first.
    pub fn join(mut self) -> NetSnapshot {
        self.drain();
        // In-flight connections get the drain timeout plus a grace period
        // for the reaper's forced shed to take effect. The accept threads
        // stay alive through this window, fast-closing any new arrivals.
        let give_up = Instant::now() + self.inner.config.drain_timeout + Duration::from_secs(2);
        while self.inner.active_conns.load(Ordering::Acquire) > 0 && Instant::now() < give_up {
            thread::sleep(Duration::from_millis(5));
        }
        self.inner.accept_stop.store(true, Ordering::Release);
        for handle in self.accept_handles.drain(..) {
            let _ = handle.join();
        }
        self.inner.reaper_stop.store(true, Ordering::Release);
        if let Some(handle) = self.reaper_handle.take() {
            let _ = handle.join();
        }
        self.inner.stats.snapshot()
    }

    /// [`drain`](NetServer::drain) + [`join`](NetServer::join).
    pub fn shutdown(self) -> NetSnapshot {
        self.drain();
        self.join()
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        // A dropped (not joined) server must not leave threads spinning.
        self.drain();
        self.inner.accept_stop.store(true, Ordering::Release);
        self.inner.reaper_stop.store(true, Ordering::Release);
    }
}

// ---- accept ------------------------------------------------------------

fn accept_loop(inner: &Arc<ServerInner>) {
    loop {
        if inner.accept_stop.load(Ordering::Acquire) {
            return;
        }
        match inner.listener.accept() {
            // While draining, keep accepting but shed immediately: a new
            // client gets a fast close instead of rotting in the TCP
            // backlog until the process exits.
            Ok((stream, _peer)) if inner.draining() => {
                inner.stats.conns_rejected.inc();
                let _ = stream.shutdown(Shutdown::Both);
            }
            Ok((stream, _peer)) => handle_accept(inner, stream),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(5));
            }
            Err(_) => {
                // Transient accept failures (EMFILE, ECONNABORTED, …)
                // must not kill the accept loop — back off and retry.
                thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

fn handle_accept(inner: &Arc<ServerInner>, stream: TcpStream) {
    inner.stats.conns_accepted.inc();
    let prev = inner.active_conns.fetch_add(1, Ordering::AcqRel);
    if prev >= inner.config.max_conns || inner.draining() {
        inner.active_conns.fetch_sub(1, Ordering::AcqRel);
        inner.stats.conns_rejected.inc();
        let _ = stream.shutdown(Shutdown::Both);
        return;
    }
    let watch_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => {
            inner.active_conns.fetch_sub(1, Ordering::AcqRel);
            inner.stats.conns_rejected.inc();
            let _ = stream.shutdown(Shutdown::Both);
            return;
        }
    };
    let id = inner.next_conn_id.fetch_add(1, Ordering::Relaxed);
    let watch = Arc::new(ConnWatch {
        stream: watch_stream,
        state: AtomicU8::new(READING),
        cancel: CancelToken::new(),
        disconnect_noted: AtomicBool::new(false),
    });
    lock(&inner.conns).insert(id, Arc::clone(&watch));
    let spawn_inner = Arc::clone(inner);
    let spawned = thread::Builder::new()
        .name(format!("t4o-net-conn-{id}"))
        .spawn(move || {
            spawn_inner.stats.open_conns.add(1);
            // The catch_unwind barrier is the crate's last line of
            // defense: handler code is written panic-free, and the storm
            // tests assert this counter stays at zero.
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                serve_conn(&spawn_inner, &stream, &watch);
            }));
            if outcome.is_err() {
                spawn_inner.stats.worker_panics.inc();
            }
            let _ = stream.shutdown(Shutdown::Both);
            lock(&spawn_inner.conns).remove(&id);
            spawn_inner.stats.open_conns.add(-1);
            spawn_inner.active_conns.fetch_sub(1, Ordering::AcqRel);
        });
    if spawned.is_err() {
        lock(&inner.conns).remove(&id);
        inner.active_conns.fetch_sub(1, Ordering::AcqRel);
        inner.stats.conns_rejected.inc();
    }
}

// ---- reaper ------------------------------------------------------------

fn reaper_loop(inner: &Arc<ServerInner>) {
    loop {
        if inner.reaper_stop.load(Ordering::Acquire) {
            return;
        }
        let watches: Vec<Arc<ConnWatch>> = lock(&inner.conns).values().cloned().collect();
        for watch in &watches {
            if watch.state.load(Ordering::Acquire) != SERVING {
                continue;
            }
            // The handler does no socket I/O while SERVING, so the reaper
            // may briefly flip the shared fd non-blocking to probe for a
            // client disconnect. (All handler I/O loops tolerate a stray
            // `WouldBlock` anyway, so the race on the flag is benign.)
            let mut probe = [0u8; 1];
            let _ = watch.stream.set_nonblocking(true);
            let gone = match watch.stream.peek(&mut probe) {
                Ok(0) => true,
                Ok(_) => false,
                Err(e) => e.kind() != io::ErrorKind::WouldBlock,
            };
            let _ = watch.stream.set_nonblocking(false);
            if gone && !watch.disconnect_noted.swap(true, Ordering::AcqRel) {
                watch.cancel.cancel();
                inner.stats.disconnects.inc();
            }
        }
        // Past the drain deadline, shed everything still open: cancel the
        // work and sever the sockets so blocked reads/writes fail fast.
        let past_drain =
            inner.draining() && lock(&inner.drain_deadline).is_some_and(|d| Instant::now() >= d);
        if past_drain {
            for watch in &watches {
                watch.cancel.cancel();
                if !watch.disconnect_noted.swap(true, Ordering::AcqRel) {
                    inner.stats.conns_reaped.inc();
                }
                let _ = watch.stream.shutdown(Shutdown::Both);
            }
        }
        thread::sleep(inner.config.io_tick);
    }
}

// ---- deadline-bounded socket I/O ---------------------------------------

/// An [`io::Read`] adapter that turns a ticking socket into
/// deadline-bounded reads: waiting for the *first* byte is governed by
/// the idle budget (and cut short by drain), while finishing a started
/// request is governed by the much tighter request budget — which is
/// exactly the slow-loris bound.
struct TickReader<'a> {
    stream: &'a TcpStream,
    draining: &'a AtomicBool,
    idle_until: Instant,
    budget: Duration,
    hard_deadline: Option<Instant>,
}

impl<'a> TickReader<'a> {
    fn new(
        stream: &'a TcpStream,
        draining: &'a AtomicBool,
        idle_until: Instant,
        budget: Duration,
    ) -> Self {
        TickReader {
            stream,
            draining,
            idle_until,
            budget,
            hard_deadline: None,
        }
    }
}

impl Read for TickReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        loop {
            match self.stream.read(buf) {
                Ok(0) => return Ok(0),
                Ok(n) => {
                    if self.hard_deadline.is_none() {
                        self.hard_deadline = Some(Instant::now() + self.budget);
                    }
                    return Ok(n);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    let now = Instant::now();
                    match self.hard_deadline {
                        // Mid-request: the peer has the request budget to
                        // deliver the rest, trickling or not.
                        Some(hard) if now >= hard => {
                            return Err(io::Error::new(
                                io::ErrorKind::TimedOut,
                                "request read deadline exceeded",
                            ))
                        }
                        Some(_) => {}
                        // Between requests: drain closes the connection
                        // cleanly; idle expiry reaps it.
                        None if self.draining.load(Ordering::Acquire) => return Ok(0),
                        None if now >= self.idle_until => {
                            return Err(io::Error::new(
                                io::ErrorKind::TimedOut,
                                "idle deadline exceeded",
                            ))
                        }
                        None => {}
                    }
                    // SO_RCVTIMEO already blocked for a tick; the sleep
                    // only bounds the spin if the fd is momentarily
                    // non-blocking (reaper probe).
                    thread::sleep(Duration::from_millis(1));
                }
                Err(e) => return Err(e),
            }
        }
    }
}

/// Writes all of `bytes`, retrying `WouldBlock`/`TimedOut` ticks until
/// `deadline` — the stalled-writer bound.
fn write_all_deadline(stream: &TcpStream, bytes: &[u8], deadline: Instant) -> io::Result<()> {
    let mut stream = stream;
    let mut at = 0;
    while at < bytes.len() {
        match stream.write(&bytes[at..]) {
            Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
            Ok(n) => at += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if Instant::now() >= deadline {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "response write deadline exceeded",
                    ));
                }
                thread::sleep(Duration::from_millis(1));
            }
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

// ---- connection handling -----------------------------------------------

fn serve_conn(inner: &Arc<ServerInner>, stream: &TcpStream, watch: &Arc<ConnWatch>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(inner.config.io_tick));
    let _ = stream.set_write_timeout(Some(inner.config.io_tick));
    // Protocol sniff: a binary-protocol client's first bytes are the
    // frame magic; anything else is treated as HTTP.
    let idle_until = Instant::now() + inner.config.idle_timeout;
    let mut first = [0u8; 4];
    let is_binary = loop {
        match stream.peek(&mut first) {
            Ok(0) => return,
            Ok(n) => {
                if first[..n] != wire::MAGIC[..n] {
                    break false;
                }
                if n == 4 {
                    break true;
                }
                // A true prefix of the magic: wait for more bytes (the
                // idle deadline still applies below).
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
            }
            Err(_) => return,
        }
        if inner.draining() {
            return;
        }
        if Instant::now() >= idle_until {
            inner.stats.conns_reaped.inc();
            return;
        }
        thread::sleep(Duration::from_millis(1));
    };
    if is_binary {
        serve_binary(inner, stream, watch);
    } else {
        serve_http(inner, stream, watch);
    }
}

/// What a successful request produced, carried without copying: gen-ext
/// payloads stay behind their cache `Arc` until the socket write.
enum Payload {
    Empty,
    Bytes(Vec<u8>),
    GenExt(Arc<two4one::CompiledGenExt>),
}

impl Payload {
    fn as_slice(&self) -> &[u8] {
        match self {
            Payload::Empty => &[],
            Payload::Bytes(b) => b,
            Payload::GenExt(g) => g.to_bytes(),
        }
    }
}

fn serve_binary(inner: &Arc<ServerInner>, stream: &TcpStream, watch: &Arc<ConnWatch>) {
    loop {
        watch.state.store(READING, Ordering::Release);
        if watch.cancel.is_cancelled() {
            return;
        }
        let idle_until = Instant::now() + inner.config.idle_timeout;
        let mut reader = TickReader::new(
            stream,
            &inner.draining,
            idle_until,
            inner.config.request_deadline,
        );
        let frame = match wire::read_frame(&mut reader, inner.config.max_frame) {
            Ok(None) => return, // clean close (or drain boundary)
            Ok(Some(frame)) => frame,
            Err(ProtocolError::Io(e)) => {
                if e.kind() == io::ErrorKind::TimedOut {
                    inner.stats.conns_reaped.inc();
                } else {
                    inner.stats.disconnects.inc();
                }
                return;
            }
            Err(e) => {
                // Framing is unrecoverable — the stream has lost sync.
                // Report the typed error (best effort) and close; the
                // accept loop and every other connection keep going.
                inner.stats.protocol_errors.inc();
                let err = WireError {
                    code: 400,
                    retry_after_ms: 0,
                    message: e.to_string(),
                };
                let _ = write_bin_frame(inner, stream, watch, wire::RESP_ERROR, &err.encode());
                return;
            }
        };
        inner.stats.requests_bin.inc();
        let answer = dispatch_frame(inner, watch, &frame);
        let write_ok = match answer {
            Ok((ftype, payload)) => {
                let ok = write_bin_frame(inner, stream, watch, ftype, payload.as_slice());
                if ok {
                    inner.stats.responses_ok.inc();
                }
                ok
            }
            Err(err) => write_bin_frame(inner, stream, watch, wire::RESP_ERROR, &err.encode()),
        };
        if !write_ok || inner.draining() {
            return;
        }
    }
}

/// Writes one response frame under the write deadline; `false` means the
/// connection is no longer usable.
fn write_bin_frame(
    inner: &ServerInner,
    stream: &TcpStream,
    watch: &ConnWatch,
    ftype: u8,
    payload: &[u8],
) -> bool {
    watch.state.store(WRITING, Ordering::Release);
    let deadline = Instant::now() + inner.config.request_deadline;
    let head = wire::header_bytes(ftype, payload);
    let ok = write_all_deadline(stream, &head, deadline)
        .and_then(|()| write_all_deadline(stream, payload, deadline));
    match ok {
        Ok(()) => true,
        Err(e) => {
            if e.kind() == io::ErrorKind::TimedOut {
                inner.stats.conns_reaped.inc();
            } else {
                inner.stats.disconnects.inc();
            }
            false
        }
    }
}

fn dispatch_frame(
    inner: &Arc<ServerInner>,
    watch: &Arc<ConnWatch>,
    frame: &wire::Frame,
) -> Result<(u8, Payload), WireError> {
    match frame.ftype {
        wire::REQ_PING => Ok((wire::RESP_PONG, Payload::Empty)),
        wire::REQ_SPEC => {
            let req = SpecWire::decode(&frame.payload).map_err(|e| {
                inner.stats.protocol_errors.inc();
                WireError {
                    code: 400,
                    retry_after_ms: 0,
                    message: e.to_string(),
                }
            })?;
            spec_call(
                inner,
                watch,
                &req.token,
                &req.name,
                &req.statics,
                u64::from(req.deadline_ms),
                req.want,
            )
        }
        wire::REQ_REGISTER => {
            let req = wire::RegisterWireRequest::decode(&frame.payload).map_err(|e| {
                inner.stats.protocol_errors.inc();
                WireError {
                    code: 400,
                    retry_after_ms: 0,
                    message: e.to_string(),
                }
            })?;
            register_call(inner, watch, &req)
        }
        wire::REQ_GRAMMAR => {
            let req = wire::GrammarWireRequest::decode(&frame.payload).map_err(|e| {
                inner.stats.protocol_errors.inc();
                WireError {
                    code: 400,
                    retry_after_ms: 0,
                    message: e.to_string(),
                }
            })?;
            grammar_call(inner, watch, &req)
        }
        other => {
            // A well-formed frame of an unexpected type: sync is intact,
            // so answer the typed error and keep the connection.
            inner.stats.protocol_errors.inc();
            Err(WireError {
                code: 400,
                retry_after_ms: 0,
                message: ProtocolError::UnknownType(other).to_string(),
            })
        }
    }
}

// Local alias so the decode call sites stay short.
use wire::SpecWireRequest as SpecWire;

/// Admits the request at the tenant layer (when one is configured).
fn admit_tenant(inner: &ServerInner, token: &str) -> Result<Option<TenantGuard>, WireError> {
    let Some(table) = &inner.config.tenants else {
        return Ok(None);
    };
    match table.admit(token) {
        Ok(guard) => Ok(Some(guard)),
        Err(TenantDenied::UnknownToken) => {
            inner.stats.auth_failures.inc();
            Err(WireError {
                code: 401,
                retry_after_ms: 0,
                message: "unknown tenant token".to_string(),
            })
        }
        Err(TenantDenied::OverQuota {
            name,
            retry_after_ms,
        }) => {
            inner.stats.tenant_rejections.inc();
            inner.stats.overloaded.inc();
            Err(WireError {
                code: 429,
                retry_after_ms,
                message: format!("tenant `{name}` is over its fair-share quota"),
            })
        }
    }
}

/// The shared specialize path behind both protocols: tenant admission,
/// static parsing, a per-request cancel child, the service call, and the
/// error mapping.
fn spec_call(
    inner: &Arc<ServerInner>,
    watch: &Arc<ConnWatch>,
    token: &str,
    name: &str,
    statics_text: &str,
    deadline_ms: u64,
    want: u8,
) -> Result<(u8, Payload), WireError> {
    // The guard holds the tenant's quota slot for the whole call.
    let _tenant = admit_tenant(inner, token)?;
    let statics =
        reader::read_all_with(statics_text, &Limits::default()).map_err(|e| WireError {
            code: 400,
            retry_after_ms: 0,
            message: format!("bad statics: {e}"),
        })?;
    // The service arms the deadline on the token it is handed, and a
    // token's expiry is first-call-wins — so every request gets a fresh
    // child of the connection token: client disconnect (parent) still
    // cancels it, but its deadline is its own.
    let cancel = watch.cancel.child();
    let deadline = if deadline_ms > 0 {
        inner
            .config
            .request_deadline
            .min(Duration::from_millis(deadline_ms))
    } else {
        inner.config.request_deadline
    };
    let request = SpecRequest::named(name, statics)
        .with_deadline(deadline)
        .with_cancel(cancel);
    watch.state.store(SERVING, Ordering::Release);
    let started = Instant::now();
    let outcome = inner.service.specialize_request(&request);
    inner
        .stats
        .request_latency
        .record_duration(started.elapsed());
    watch.state.store(READING, Ordering::Release);
    let outcome = outcome.map_err(|e| serve_error_to_wire(inner, &e))?;
    match want {
        wire::WANT_OBJECT => Ok((
            wire::RESP_OBJECT,
            Payload::Bytes(encode_image(&outcome.image)),
        )),
        wire::WANT_GENEXT => match inner.service.genext_of(name) {
            Some(genext) => Ok((wire::RESP_GENEXT, Payload::GenExt(genext))),
            None => Err(WireError {
                code: 404,
                retry_after_ms: 0,
                message: format!("no compiled generating extension for `{name}`"),
            }),
        },
        _ => Ok((
            wire::RESP_META,
            Payload::Bytes(meta_json(name, &outcome).into_bytes()),
        )),
    }
}

fn register_call(
    inner: &Arc<ServerInner>,
    watch: &Arc<ConnWatch>,
    req: &wire::RegisterWireRequest,
) -> Result<(u8, Payload), WireError> {
    let _tenant = admit_tenant(inner, &req.token)?;
    let bad = |message: String| WireError {
        code: 400,
        retry_after_ms: 0,
        message,
    };
    let mut division = Vec::new();
    for c in req.division.chars() {
        match c.to_ascii_uppercase() {
            'S' => division.push(BT::Static),
            'D' => division.push(BT::Dynamic),
            other => return Err(bad(format!("bad division letter `{other}` (use S/D)"))),
        }
    }
    watch.state.store(SERVING, Ordering::Release);
    let built = (|| {
        let pgg = Pgg::new();
        let program = pgg.parse(&req.source).map_err(|e| bad(e.to_string()))?;
        pgg.cogen(&program, &req.entry, &Division::new(division))
            .map_err(|e| bad(e.to_string()))
    })();
    watch.state.store(READING, Ordering::Release);
    let genext = built?;
    let epoch = inner.service.register(&req.name, &genext);
    let body = format!(
        "{{\"registered\": {}, \"epoch\": {}}}",
        json::escape(&req.name),
        epoch.get()
    );
    Ok((wire::RESP_META, Payload::Bytes(body.into_bytes())))
}

/// The [`wire::REQ_GRAMMAR`] path: validate the grammar text, splice it
/// into the matcher interpreter (grammar static, input word dynamic),
/// build the generating extension under the matcher's unfold/memoize
/// policies, and register it like any other named program — so redefining
/// a grammar bumps its epoch and invalidates every cached recognizer, and
/// [`wire::REQ_SPEC`] with no statics serves the compiled recognizer.
fn grammar_call(
    inner: &Arc<ServerInner>,
    watch: &Arc<ConnWatch>,
    req: &wire::GrammarWireRequest,
) -> Result<(u8, Payload), WireError> {
    let _tenant = admit_tenant(inner, &req.token)?;
    let grammar = match langs_grammar::parse(&req.text) {
        Ok(g) => g,
        Err(e) => {
            // A grammar outside the LL(1) subset is a client error with a
            // typed explanation, never a server fault.
            inner.stats.match_rejected.inc();
            return Err(WireError {
                code: 400,
                retry_after_ms: 0,
                message: format!("bad grammar: {e}"),
            });
        }
    };
    watch.state.store(SERVING, Ordering::Release);
    let built = (|| {
        let pgg = langs_grammar::grammar_policies()
            .iter()
            .fold(Pgg::new(), |p, (name, pol)| p.policy(name, *pol));
        let source = langs_grammar::workload_source(&grammar);
        let program = pgg.parse(&source).map_err(|e| WireError {
            code: 500,
            retry_after_ms: 0,
            message: format!("matcher workload does not parse: {e}"),
        })?;
        pgg.cogen(
            &program,
            langs_grammar::WORKLOAD_ENTRY,
            &Division::new(vec![BT::Dynamic]),
        )
        .map_err(|e| WireError {
            code: 500,
            retry_after_ms: 0,
            message: format!("matcher workload does not analyze: {e}"),
        })
    })();
    watch.state.store(READING, Ordering::Release);
    let genext = built?;
    let epoch = inner.service.register(&req.name, &genext);
    inner.stats.match_registered.inc();
    let body = format!(
        "{{\"registered\": {}, \"epoch\": {}, \"start\": {}, \"rules\": {}}}",
        json::escape(&req.name),
        epoch.get(),
        json::escape(grammar.start()),
        grammar.rule_names().len(),
    );
    Ok((wire::RESP_META, Payload::Bytes(body.into_bytes())))
}

/// Maps a [`ServeError`] onto the shared HTTP-style code table (see
/// [`WireError`]).
fn serve_error_to_wire(inner: &ServerInner, e: &ServeError) -> WireError {
    let (code, retry_after_ms) = match e {
        ServeError::Overloaded { retry_after_ms, .. } => {
            inner.stats.overloaded.inc();
            (429, *retry_after_ms)
        }
        ServeError::DeadlineExceeded => (408, 0),
        ServeError::Cancelled => (499, 0),
        ServeError::UnknownProgram(_) => (404, 0),
        ServeError::BreakerOpen(_) => (503, 0),
        _ => (500, 0),
    };
    WireError {
        code,
        retry_after_ms,
        message: e.to_string(),
    }
}

/// The RESP_META / `POST /spec` success body.
fn meta_json(name: &str, outcome: &two4one_server::SpecOutcome) -> String {
    format!(
        concat!(
            "{{\"name\": {name}, \"entry\": {entry}, \"code_size\": {code}, ",
            "\"templates\": {templates}, \"degraded\": {degraded}, ",
            "\"unfolds\": {unfolds}, \"memo_hits\": {hits}}}"
        ),
        name = json::escape(name),
        entry = json::escape(outcome.image.entry.as_str()),
        code = outcome.code_size(),
        templates = outcome.image.templates.len(),
        degraded = outcome.stats.degraded(),
        unfolds = outcome.stats.unfolds,
        hits = outcome.stats.memo_hits,
    )
}

// ---- HTTP --------------------------------------------------------------

enum HeadRead {
    Closed,
    Reaped,
    TooLarge,
    Ok { head: String, leftover: Vec<u8> },
}

/// Reads one HTTP request head (everything through `\r\n\r\n`) under the
/// idle/request deadlines, returning any body bytes read past the
/// terminator.
fn read_http_head(inner: &ServerInner, stream: &TcpStream) -> HeadRead {
    let idle_until = Instant::now() + inner.config.idle_timeout;
    let mut reader = TickReader::new(
        stream,
        &inner.draining,
        idle_until,
        inner.config.request_deadline,
    );
    let mut buf = Vec::new();
    let mut chunk = [0u8; 1024];
    loop {
        match reader.read(&mut chunk) {
            Ok(0) => return HeadRead::Closed,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if let Some(end) = find_terminator(&buf) {
                    let leftover = buf.split_off(end + 4);
                    buf.truncate(end);
                    // Lossy decoding keeps hostile bytes from wedging the
                    // parser; the parse itself will reject what matters.
                    let head = String::from_utf8_lossy(&buf).into_owned();
                    return HeadRead::Ok { head, leftover };
                }
                if buf.len() > inner.config.max_http_head {
                    return HeadRead::TooLarge;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::TimedOut => return HeadRead::Reaped,
            Err(_) => return HeadRead::Closed,
        }
    }
}

fn find_terminator(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn serve_http(inner: &Arc<ServerInner>, stream: &TcpStream, watch: &Arc<ConnWatch>) {
    loop {
        watch.state.store(READING, Ordering::Release);
        if watch.cancel.is_cancelled() {
            return;
        }
        let (head_text, leftover) = match read_http_head(inner, stream) {
            HeadRead::Closed => return,
            HeadRead::Reaped => {
                inner.stats.conns_reaped.inc();
                return;
            }
            HeadRead::TooLarge => {
                inner.stats.protocol_errors.inc();
                let body = b"{\"error\": \"request head too large\"}";
                let resp = http::response(431, "application/json", 0, body, false);
                let _ = write_http(inner, stream, watch, &resp);
                return;
            }
            HeadRead::Ok { head, leftover } => (head, leftover),
        };
        inner.stats.requests_http.inc();
        let head = match http::parse_head(&head_text) {
            Ok(head) => head,
            Err(e) => {
                inner.stats.protocol_errors.inc();
                let body = format!("{{\"error\": {}}}", json::escape(&e.to_string()));
                let resp = http::response(400, "application/json", 0, body.as_bytes(), false);
                let _ = write_http(inner, stream, watch, &resp);
                return;
            }
        };
        if head.content_length > inner.config.max_http_body {
            inner.stats.protocol_errors.inc();
            let body = b"{\"error\": \"request body too large\"}";
            let resp = http::response(413, "application/json", 0, body, false);
            let _ = write_http(inner, stream, watch, &resp);
            return;
        }
        let mut body = leftover;
        if body.len() < head.content_length {
            let mut reader = TickReader::new(
                stream,
                &inner.draining,
                Instant::now() + inner.config.request_deadline,
                inner.config.request_deadline,
            );
            let mut at = body.len();
            body.resize(head.content_length, 0);
            while at < body.len() {
                match reader.read(&mut body[at..]) {
                    Ok(0) => {
                        inner.stats.disconnects.inc();
                        return;
                    }
                    Ok(n) => at += n,
                    Err(e) if e.kind() == io::ErrorKind::TimedOut => {
                        inner.stats.conns_reaped.inc();
                        return;
                    }
                    Err(_) => return,
                }
            }
        } else {
            body.truncate(head.content_length);
        }
        let keep_alive = head.keep_alive && !inner.draining();
        let resp = route_http(inner, watch, &head, &body, keep_alive);
        if !write_http(inner, stream, watch, &resp) || !keep_alive {
            return;
        }
    }
}

fn write_http(inner: &ServerInner, stream: &TcpStream, watch: &ConnWatch, bytes: &[u8]) -> bool {
    watch.state.store(WRITING, Ordering::Release);
    match write_all_deadline(
        stream,
        bytes,
        Instant::now() + inner.config.request_deadline,
    ) {
        Ok(()) => true,
        Err(e) => {
            if e.kind() == io::ErrorKind::TimedOut {
                inner.stats.conns_reaped.inc();
            } else {
                inner.stats.disconnects.inc();
            }
            false
        }
    }
}

fn route_http(
    inner: &Arc<ServerInner>,
    watch: &Arc<ConnWatch>,
    head: &http::Head,
    body: &[u8],
    keep_alive: bool,
) -> Vec<u8> {
    let path = head.path.split('?').next().unwrap_or("");
    match (head.method.as_str(), path) {
        ("GET", "/healthz") => {
            if inner.draining() {
                http::response(
                    503,
                    "text/plain; charset=utf-8",
                    0,
                    b"draining\n",
                    keep_alive,
                )
            } else {
                http::response(200, "text/plain; charset=utf-8", 0, b"ok\n", keep_alive)
            }
        }
        ("GET", "/metrics") => {
            let page = inner
                .registry
                .snapshot()
                .merge(inner.service.metrics())
                .to_prometheus();
            http::response(
                200,
                "text/plain; version=0.0.4; charset=utf-8",
                0,
                page.as_bytes(),
                keep_alive,
            )
        }
        ("GET", "/stats") => {
            let page = format!(
                "{{\"net\": {}, \"metrics\": {}}}",
                inner.stats.snapshot().to_json(),
                inner
                    .registry
                    .snapshot()
                    .merge(inner.service.metrics())
                    .to_json()
            );
            http::response(200, "application/json", 0, page.as_bytes(), keep_alive)
        }
        ("POST", "/spec") => http_spec(inner, watch, head, body, keep_alive),
        ("GET" | "POST", _) => http::response(
            404,
            "application/json",
            0,
            b"{\"error\": \"no such endpoint\"}",
            keep_alive,
        ),
        _ => http::response(
            405,
            "application/json",
            0,
            b"{\"error\": \"method not allowed\"}",
            keep_alive,
        ),
    }
}

/// `POST /spec`: the JSON shape is
/// `{"name": "...", "statics": "..." | ["...", ...], "deadline_ms": N,
///   "want": "meta"|"object"|"genext", "token": "..."}` — the token may
/// instead arrive as `Authorization: Bearer`.
fn http_spec(
    inner: &Arc<ServerInner>,
    watch: &Arc<ConnWatch>,
    head: &http::Head,
    body: &[u8],
    keep_alive: bool,
) -> Vec<u8> {
    let error = |status: u16, retry_ms: u64, msg: &str| {
        let body = format!(
            "{{\"error\": {}, \"retry_after_ms\": {retry_ms}}}",
            json::escape(msg)
        );
        http::response(
            status,
            "application/json",
            retry_ms,
            body.as_bytes(),
            keep_alive,
        )
    };
    let text = match std::str::from_utf8(body) {
        Ok(t) => t,
        Err(_) => return error(400, 0, "body is not UTF-8"),
    };
    let doc = match json::parse(text) {
        Ok(d) => d,
        Err(e) => return error(400, 0, &e.to_string()),
    };
    let Some(name) = doc.get("name").and_then(Json::as_str) else {
        return error(400, 0, "missing \"name\"");
    };
    let statics = match doc.get("statics") {
        None => String::new(),
        Some(Json::Str(s)) => s.clone(),
        Some(Json::Arr(items)) => {
            let mut parts = Vec::with_capacity(items.len());
            for item in items {
                match item.as_str() {
                    Some(s) => parts.push(s),
                    None => return error(400, 0, "\"statics\" array must hold strings"),
                }
            }
            parts.join(" ")
        }
        Some(_) => return error(400, 0, "\"statics\" must be a string or array"),
    };
    let deadline_ms = doc
        .get("deadline_ms")
        .and_then(Json::as_int)
        .map_or(0, |n| n.max(0) as u64);
    let want = match doc.get("want").and_then(Json::as_str) {
        None | Some("meta") => wire::WANT_META,
        Some("object") => wire::WANT_OBJECT,
        Some("genext") => wire::WANT_GENEXT,
        Some(other) => return error(400, 0, &format!("unknown \"want\": {other}")),
    };
    let token = doc
        .get("token")
        .and_then(Json::as_str)
        .or_else(|| head.bearer_token())
        .unwrap_or("");
    match spec_call(inner, watch, token, name, &statics, deadline_ms, want) {
        Ok((ftype, payload)) => {
            inner.stats.responses_ok.inc();
            let content_type = if ftype == wire::RESP_META {
                "application/json"
            } else {
                "application/octet-stream"
            };
            http::response(200, content_type, 0, payload.as_slice(), keep_alive)
        }
        Err(e) => error(e.code, e.retry_after_ms, &e.message),
    }
}
