//! The compilators: one code generator per residual construct.
//!
//! These are the `ev-X_C` functions of Sec. 5.3 — the compiler with the
//! syntax dispatch already performed. Both the recursive-descent compiler
//! ([`crate::compile_body`]) and the fused combinators
//! ([`crate::ObjectBuilder`]) call exactly these functions, which is what
//! makes "compile the residual source" and "generate object code directly"
//! produce identical templates (the fusion equivalence).

use crate::cenv::Loc;
use crate::CompileError;
use std::sync::Arc;
use two4one_syntax::datum::Datum;
use two4one_syntax::prim::Prim;
use two4one_syntax::symbol::Symbol;
use two4one_vm::{Asm, Instr, Label, Template};

/// Loads a constant into `val`.
pub fn emit_const(asm: &mut Asm, d: &Datum) -> Result<(), CompileError> {
    let i = asm.const_index(d)?;
    asm.emit(Instr::Const(i));
    Ok(())
}

/// Loads a local or captured variable into `val`.
pub fn emit_var(asm: &mut Asm, loc: Loc) {
    match loc {
        Loc::Local(i) => asm.emit(Instr::Local(i)),
        Loc::Captured(i) => asm.emit(Instr::Captured(i)),
    }
}

/// Loads a global into `val`.
pub fn emit_global(asm: &mut Asm, name: &Symbol) -> Result<(), CompileError> {
    let i = asm.global_index(name)?;
    asm.emit(Instr::Global(i));
    Ok(())
}

/// Pushes `val` onto the argument stack.
pub fn emit_push(asm: &mut Asm) {
    asm.emit(Instr::Push);
}

/// Binds `val` as the next `let` local.
pub fn emit_bind(asm: &mut Asm) {
    asm.emit(Instr::Bind);
}

/// Returns `val` to the caller.
pub fn emit_return(asm: &mut Asm) {
    asm.emit(Instr::Return);
}

/// Non-tail call with `nargs` stacked arguments and the callee in `val`.
pub fn emit_call(asm: &mut Asm, nargs: u8) {
    asm.emit(Instr::Call { nargs });
}

/// Tail call — a jump, in the paper's phrasing.
pub fn emit_tail_call(asm: &mut Asm, nargs: u8) {
    asm.emit(Instr::TailCall { nargs });
}

/// Applies a primitive to `nargs` stacked arguments.
pub fn emit_prim(asm: &mut Asm, p: Prim, nargs: u8) {
    asm.emit(Instr::Prim { prim: p, nargs });
}

/// The conditional compilator's first half: branch on `val` being false.
/// Returns the label to attach where the alternative starts (the paper's
/// `make-label` + `instruction-using-label` pair).
pub fn emit_branch_false(asm: &mut Asm) -> Label {
    let alt = asm.make_label();
    asm.emit_jump_if_false(alt);
    alt
}

/// Attaches a label at the current position (`attach-label`).
pub fn attach(asm: &mut Asm, l: Label) {
    asm.attach_label(l);
}

/// Closure construction: loads each free variable (via `load_var`), pushes
/// it, and emits `make-closure` over `template`.
pub fn emit_make_closure(
    asm: &mut Asm,
    template: Arc<Template>,
    free: &[Symbol],
    mut load_var: impl FnMut(&mut Asm, &Symbol) -> Result<(), CompileError>,
) -> Result<(), CompileError> {
    for v in free {
        load_var(asm, v)?;
        emit_push(asm);
    }
    let nfree = u16::try_from(free.len()).map_err(|_| CompileError::TooManyArgs(free.len()))?;
    let ti = asm.template_index(template)?;
    asm.emit(Instr::MakeClosure {
        template: ti,
        nfree,
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compilators_compose_into_valid_code() {
        // (define (f x) (if x 'yes 'no)) by hand through the compilators.
        let mut asm = Asm::new(Symbol::new("f"), 1, 0);
        emit_var(&mut asm, Loc::Local(0));
        let alt = emit_branch_false(&mut asm);
        emit_const(&mut asm, &Datum::sym("yes")).unwrap();
        emit_return(&mut asm);
        attach(&mut asm, alt);
        emit_const(&mut asm, &Datum::sym("no")).unwrap();
        emit_return(&mut asm);
        let t = asm.finish().unwrap();
        assert_eq!(t.code.len(), 6);
        assert!(matches!(t.code[1], Instr::JumpIfFalse(4)));
    }
}
