//! Integration tests for the concurrent specialization service: cache
//! correctness (keying, eviction, error paths), single-flight dedup, and
//! the zero-work warm path.

use std::sync::Arc;

use two4one::{Datum, Division, Limits, Pgg, BT};
use two4one_server::{ServeConfig, ServeError, SpecRequest, SpecService};
use two4one_testkit::rng::Rng;

const POWER: &str = "(define (power n x) (if (= n 0) 1 (* x (power (- n 1) x))))";

fn power_ext(pgg: &Pgg) -> two4one::GenExt {
    let program = pgg.parse(POWER).expect("parse power");
    pgg.cogen(&program, "power", &Division::new([BT::Static, BT::Dynamic]))
        .expect("cogen power")
}

fn int(n: i64) -> Vec<Datum> {
    vec![Datum::Int(n)]
}

#[test]
fn warm_hit_runs_zero_specializer_work() {
    let service = SpecService::new();
    let ext = power_ext(&Pgg::new());

    let cold = service.specialize(&ext, &int(5)).expect("cold");
    let after_cold = service.stats();
    assert_eq!(after_cold.misses, 1);
    assert_eq!(after_cold.spec_runs, 1);
    assert_eq!(after_cold.hits, 0);

    let warm = service.specialize(&ext, &int(5)).expect("warm");
    let after_warm = service.stats();
    // Zero specializer work: the run counter did not move, and the handle
    // is the very same image (templates shared via Arc, no deep copy).
    assert_eq!(after_warm.spec_runs, 1);
    assert_eq!(after_warm.misses, 1);
    assert_eq!(after_warm.hits, 1);
    assert!(Arc::ptr_eq(&cold.image, &warm.image));

    // The cached residual code actually works.
    let out =
        two4one::run_image(&warm.image, warm.image.entry.as_str(), &int(2)).expect("run residual");
    assert_eq!(out.value, Datum::Int(32));
}

#[test]
fn differing_static_args_miss() {
    let service = SpecService::new();
    let ext = power_ext(&Pgg::new());
    let a = service.specialize(&ext, &int(3)).expect("n=3");
    let b = service.specialize(&ext, &int(4)).expect("n=4");
    assert!(!Arc::ptr_eq(&a.image, &b.image));
    let stats = service.stats();
    assert_eq!(stats.misses, 2);
    assert_eq!(stats.hits, 0);
    assert_eq!(stats.spec_runs, 2);
}

/// Renders a random near-miss sibling of `POWER`: same shape, one token
/// nudged. Textually different programs must never share cache entries,
/// however similar they look — even inside a single shard, where any
/// digest collision would land.
fn near_miss_program(rng: &mut Rng) -> String {
    let base = 1 + rng.range_i64(1, 9);
    let op = *rng.pick(&["*", "+"]);
    format!("(define (power n x) (if (= n 0) {base} ({op} x (power (- n 1) x))))")
}

#[test]
fn near_miss_programs_do_not_collide() {
    // One shard: every key routes to the same map, so this exercises the
    // full-key comparison rather than shard separation.
    let service = SpecService::with_config(ServeConfig {
        shards: 1,
        ..ServeConfig::default()
    });
    let pgg = Pgg::new();
    let mut rng = Rng::new(0x5e1f_c0de);

    let mut programs: Vec<String> = vec![POWER.to_string()];
    while programs.len() < 8 {
        let candidate = near_miss_program(&mut rng);
        if !programs.contains(&candidate) {
            programs.push(candidate);
        }
    }

    let mut images = Vec::new();
    for src in &programs {
        let program = pgg.parse(src).expect("parse near-miss");
        let ext = pgg
            .cogen(&program, "power", &Division::new([BT::Static, BT::Dynamic]))
            .expect("cogen near-miss");
        images.push(service.specialize(&ext, &int(4)).expect("specialize"));
    }

    // Every program got its own entry and its own specializer run.
    let stats = service.stats();
    assert_eq!(stats.misses, programs.len() as u64);
    assert_eq!(stats.spec_runs, programs.len() as u64);
    assert_eq!(stats.hits, 0);
    assert_eq!(service.len(), programs.len());
    for (i, a) in images.iter().enumerate() {
        for b in &images[i + 1..] {
            assert!(!Arc::ptr_eq(&a.image, &b.image));
        }
    }

    // And the variants compute what their source says, not what a cache
    // collision would have handed them: (power 4 x) with `+` and base b
    // is b + 4x; with `*` it is b * x^4.
    for (src, outcome) in programs.iter().zip(&images) {
        let result = two4one::run_image(&outcome.image, outcome.image.entry.as_str(), &int(3))
            .expect("run variant")
            .value;
        let expected = expected_power4(src);
        assert_eq!(result, Datum::Int(expected), "program: {src}");
    }
}

/// Ground truth for `(power 4 3)` under the near-miss grammar.
fn expected_power4(src: &str) -> i64 {
    let base: i64 = src
        .split("(= n 0) ")
        .nth(1)
        .and_then(|s| s.split_whitespace().next())
        .and_then(|s| s.parse().ok())
        .expect("parse base from source");
    if src.contains("(+ x (power") {
        base + 3 * 4
    } else {
        base * 3_i64.pow(4)
    }
}

#[test]
fn concurrent_same_key_specializes_once() {
    let service = SpecService::new();
    let ext = power_ext(&Pgg::new());
    const THREADS: usize = 8;

    let images: Vec<Arc<two4one::Image>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let ext = &ext;
                let service = &service;
                s.spawn(move || {
                    service
                        .specialize(ext, &int(6))
                        .expect("specialize")
                        .image
                        .clone()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("requester thread"))
            .collect()
    });

    let stats = service.stats();
    // Single-flight: exactly one specializer run however the threads
    // interleave; everyone else hit the cache or joined the flight.
    assert_eq!(stats.spec_runs, 1);
    assert_eq!(stats.misses, 1);
    assert_eq!(stats.hits, THREADS as u64 - 1);
    for img in &images[1..] {
        assert!(Arc::ptr_eq(&images[0], img));
    }
}

#[test]
fn batch_api_dedups_and_preserves_order() {
    let service = SpecService::new();
    let ext = power_ext(&Pgg::new());
    let requests: Vec<SpecRequest> = [2, 3, 2, 4, 3, 2]
        .into_iter()
        .map(|n| SpecRequest::new(ext.clone(), int(n)))
        .collect();

    let results = service.specialize_many(&requests, 4);
    assert_eq!(results.len(), requests.len());
    let outcomes: Vec<_> = results
        .into_iter()
        .map(|r| r.expect("batch result"))
        .collect();

    // Three distinct keys → exactly three specializer runs.
    assert_eq!(service.stats().spec_runs, 3);
    // Order is preserved: duplicates share the same image.
    assert!(Arc::ptr_eq(&outcomes[0].image, &outcomes[2].image));
    assert!(Arc::ptr_eq(&outcomes[0].image, &outcomes[5].image));
    assert!(Arc::ptr_eq(&outcomes[1].image, &outcomes[4].image));
    assert!(!Arc::ptr_eq(&outcomes[0].image, &outcomes[1].image));
    assert!(!Arc::ptr_eq(&outcomes[0].image, &outcomes[3].image));

    // Warm batch: all hits, no new runs.
    let again = service.specialize_many(&requests, 2);
    assert!(again.iter().all(|r| r.is_ok()));
    assert_eq!(service.stats().spec_runs, 3);
}

#[test]
fn eviction_keeps_cache_bounded() {
    let service = SpecService::with_config(ServeConfig {
        shards: 1,
        max_entries: 3,
        ..ServeConfig::default()
    });
    let ext = power_ext(&Pgg::new());
    for n in 1..=6 {
        service.specialize(&ext, &int(n)).expect("fill");
    }
    assert!(service.len() <= 3);
    let stats = service.stats();
    assert_eq!(stats.spec_runs, 6);
    assert_eq!(stats.evictions, 3);

    // The most recent keys survived; an evicted key is a fresh miss.
    service.specialize(&ext, &int(6)).expect("warm recent");
    assert_eq!(service.stats().spec_runs, 6);
    service.specialize(&ext, &int(1)).expect("refill evicted");
    assert_eq!(service.stats().spec_runs, 7);
}

#[test]
fn code_budget_evicts_lru() {
    // A tiny code cap (in instructions) forces size-based eviction.
    let service = SpecService::with_config(ServeConfig {
        shards: 1,
        max_entries: 1024,
        limits: Limits::default().with_code_cap(1),
        ..ServeConfig::default()
    });
    let ext = power_ext(&Pgg::new());
    service.specialize(&ext, &int(2)).expect("first");
    service.specialize(&ext, &int(3)).expect("second");
    // Budget of 1 instruction cannot hold two images; the older one went.
    assert_eq!(service.len(), 1);
    assert!(service.stats().evictions >= 1);
}

#[test]
fn errors_are_reported_and_not_cached() {
    let service = SpecService::new();
    let ext = power_ext(&Pgg::new());

    // Wrong number of static arguments → specialization error.
    let err = service
        .specialize(&ext, &[Datum::Int(1), Datum::Int(2)])
        .expect_err("arity mismatch must fail");
    assert!(matches!(err, ServeError::Spec(_)));
    let stats = service.stats();
    assert_eq!(stats.errors, 1);
    assert_eq!(stats.misses, 0);
    assert!(service.is_empty());

    // Errors are not cached: the same request fails afresh (and the
    // specializer runs again), rather than serving a poisoned entry.
    let _ = service
        .specialize(&ext, &[Datum::Int(1), Datum::Int(2)])
        .expect_err("still fails");
    assert_eq!(service.stats().errors, 2);

    // The service remains fully usable afterwards.
    let ok = service.specialize(&ext, &int(3)).expect("healthy request");
    let out =
        two4one::run_image(&ok.image, ok.image.entry.as_str(), &int(2)).expect("run residual");
    assert_eq!(out.value, Datum::Int(8));
}

#[test]
fn degraded_fills_are_counted() {
    // Starve the specializer of unfold fuel so it falls back to generic
    // code (PR 1 machinery), and check the service surfaces that.
    let pgg = Pgg::new().unfold_fuel(1);
    let ext = power_ext(&pgg);
    let service = SpecService::new();
    let outcome = service.specialize(&ext, &int(40)).expect("degraded fill");
    assert!(outcome.stats.degraded());
    let stats = service.stats();
    assert_eq!(stats.degraded, 1);
    assert_eq!(stats.spec_runs, 1);

    // Degraded residual code is still correct.
    let out = two4one::run_image(&outcome.image, outcome.image.entry.as_str(), &int(2))
        .expect("run degraded");
    assert_eq!(out.value, Datum::Int(1_099_511_627_776));
}

#[test]
fn distinct_options_do_not_share_entries() {
    // Same program, same statics, different limits: the key must differ,
    // because the residual code can differ (e.g. degraded vs. full).
    let service = SpecService::new();
    let full = power_ext(&Pgg::new());
    let starved = power_ext(&Pgg::new().unfold_fuel(1));
    let a = service.specialize(&full, &int(10)).expect("full");
    let b = service.specialize(&starved, &int(10)).expect("starved");
    assert_eq!(service.stats().spec_runs, 2);
    assert!(!Arc::ptr_eq(&a.image, &b.image));
    assert!(!a.stats.degraded());
    assert!(b.stats.degraded());
}
