//! The fundamental partial-evaluation equation, checked across backends:
//!
//! `[[p]] s d  ==  [[ [[p-gen]] s ]] d`
//!
//! For every scenario: run the original program on the full input via the
//! interpreter, then run the residual program (source backend via the
//! interpreter *and* compiled, plus the fused object backend) on the
//! dynamic input, and compare values and observable output.

use two4one::{compile_program, interpret, run_image, with_stack, Datum, Division, Pgg, BT};

struct Scenario {
    name: &'static str,
    src: &'static str,
    entry: &'static str,
    division: Vec<BT>,
    statics: Vec<Datum>,
    dynamics: Vec<Vec<Datum>>,
}

fn d(s: &str) -> Datum {
    two4one::reader::read_one(s).unwrap()
}

fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "power",
            src: "(define (power x n) (if (= n 0) 1 (* x (power x (- n 1)))))",
            entry: "power",
            division: vec![BT::Dynamic, BT::Static],
            statics: vec![Datum::Int(10)],
            dynamics: vec![
                vec![Datum::Int(2)],
                vec![Datum::Int(3)],
                vec![Datum::Int(-1)],
            ],
        },
        Scenario {
            name: "dot-product",
            src: two4one_langs::classics::DOT,
            entry: "dot",
            division: vec![BT::Static, BT::Dynamic],
            statics: vec![d("(3 0 4 0 5)")],
            dynamics: vec![
                vec![d("(1 1 1 1 1)")],
                vec![d("(2 9 2 9 2)")],
                vec![d("(0 0 0 0 1)")],
            ],
        },
        Scenario {
            name: "matcher",
            src: two4one_langs::classics::MATCHER,
            entry: "match",
            division: vec![BT::Static, BT::Dynamic],
            statics: vec![d("(a b a b c)")],
            dynamics: vec![
                vec![d("(x a b a b a b c y)")],
                vec![d("(a b a b a b)")],
                vec![d("()")],
                vec![d("(a b a b c)")],
            ],
        },
        Scenario {
            // A let-language interpreter in the standard binding-time
            // discipline: variable *names* are static, their runtime
            // *values* live in a parallel dynamic list.
            name: "let-interpreter",
            src: r#"
              (define (run e names vals x)
                (cond ((number? e) e)
                      ((eq? e 'input) x)
                      ((symbol? e) (lookup e names vals))
                      ((eq? (car e) '+)
                       (+ (run (cadr e) names vals x) (run (caddr e) names vals x)))
                      ((eq? (car e) '*)
                       (* (run (cadr e) names vals x) (run (caddr e) names vals x)))
                      ((eq? (car e) 'let1)
                       (run (cadddr e)
                            (cons (cadr e) names)
                            (cons (run (caddr e) names vals x) vals)
                            x))
                      (else (error "bad" e))))
              (define (lookup k names vals)
                (if (eq? k (car names)) (car vals) (lookup k (cdr names) (cdr vals))))
            "#,
            entry: "run",
            division: vec![BT::Static, BT::Static, BT::Dynamic, BT::Dynamic],
            statics: vec![
                d("(let1 a (* input input) (+ a (let1 b 7 (* b a))))"),
                d("()"),
            ],
            dynamics: vec![
                vec![Datum::Nil, Datum::Int(2)],
                vec![Datum::Nil, Datum::Int(5)],
            ],
        },
        Scenario {
            name: "list-walk-all-dynamic",
            src: "(define (count xs acc) (if (null? xs) acc (count (cdr xs) (+ acc 1))))",
            entry: "count",
            division: vec![BT::Dynamic, BT::Dynamic],
            statics: vec![],
            dynamics: vec![
                vec![d("(a b c d)"), Datum::Int(0)],
                vec![d("()"), Datum::Int(7)],
            ],
        },
        Scenario {
            name: "closure-generator",
            src: "(define (mk n) (lambda (x) (+ x n)))
                  (define (use2 f a b) (+ (f a) (f b)))
                  (define (main k a b) (use2 (mk (* k k)) a b))",
            entry: "main",
            division: vec![BT::Static, BT::Dynamic, BT::Dynamic],
            statics: vec![Datum::Int(3)],
            dynamics: vec![vec![Datum::Int(1), Datum::Int(2)]],
        },
        Scenario {
            name: "effects-order",
            src: "(define (main n x)
                    (display \"start \") (display n) (display \" \")
                    (if (< x 0) (display \"neg\") (display \"pos\"))
                    (* n x))",
            entry: "main",
            division: vec![BT::Static, BT::Dynamic],
            statics: vec![Datum::Int(4)],
            dynamics: vec![vec![Datum::Int(-3)], vec![Datum::Int(3)]],
        },
    ]
}

#[test]
fn residual_programs_agree_with_originals() {
    with_stack(|| {
        let pgg = Pgg::new();
        for sc in scenarios() {
            let p = pgg.parse(sc.src).unwrap();
            let genext = pgg
                .cogen(&p, sc.entry, &Division::new(sc.division.iter().copied()))
                .unwrap();
            let residual = genext.specialize_source(&sc.statics).unwrap();
            let image = genext.specialize_object(&sc.statics).unwrap();
            let compiled_residual = compile_program(&residual, sc.entry).unwrap();

            for dyns in &sc.dynamics {
                // Oracle: interpret the original on the full input.
                let mut full = Vec::new();
                let mut statics = sc.statics.iter();
                let mut dynamics = dyns.iter();
                for bt in &sc.division {
                    match bt {
                        BT::Static => full.push(statics.next().unwrap().clone()),
                        BT::Dynamic => full.push(dynamics.next().unwrap().clone()),
                    }
                }
                let expect = interpret(&p, sc.entry, &full).unwrap();

                // 1. residual source, interpreted
                let got = interpret(&residual.to_cs(), sc.entry, dyns).unwrap();
                assert_eq!(got.value, expect.value, "{}: source/interp value", sc.name);
                assert_eq!(
                    got.output, expect.output,
                    "{}: source/interp output",
                    sc.name
                );

                // 2. residual source, compiled
                let got = run_image(&compiled_residual, sc.entry, dyns).unwrap();
                assert_eq!(got.value, expect.value, "{}: compiled value", sc.name);
                assert_eq!(got.output, expect.output, "{}: compiled output", sc.name);

                // 3. fused object code
                let got = run_image(&image, sc.entry, dyns).unwrap();
                assert_eq!(got.value, expect.value, "{}: fused value", sc.name);
                assert_eq!(got.output, expect.output, "{}: fused output", sc.name);
            }
        }
    });
}

#[test]
fn matcher_specialization_removes_pattern_dispatch() {
    with_stack(|| {
        let pgg = Pgg::new();
        let p = pgg.parse(two4one_langs::classics::MATCHER).unwrap();
        let genext = pgg
            .cogen(&p, "match", &Division::new([BT::Static, BT::Dynamic]))
            .unwrap();
        let residual = genext.specialize_source(&[d("(a a b)")]).unwrap();
        let text = residual.to_source();
        // The pattern has been burned into the code: the residual matches
        // against the literal symbols.
        assert!(text.contains("'a"), "{text}");
        assert!(text.contains("'b"), "{text}");
    });
}

#[test]
fn dead_static_branches_do_not_fault_when_guarded_statically() {
    // A static error branch that is statically unreachable must not fire.
    with_stack(|| {
        let pgg = Pgg::new();
        let p = pgg
            .parse(
                "(define (main mode x)
                   (if (eq? mode 'safe) (+ x 1) (error \"never\" mode)))",
            )
            .unwrap();
        let genext = pgg
            .cogen(&p, "main", &Division::new([BT::Static, BT::Dynamic]))
            .unwrap();
        let residual = genext.specialize_source(&[d("safe")]).unwrap();
        assert!(!residual.to_source().contains("error"));
    });
}
