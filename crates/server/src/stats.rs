//! Serving-layer counters.
//!
//! One [`ServeStats`] cell lives inside each [`SpecService`](crate::SpecService)
//! and is updated with relaxed atomics from every worker thread; a
//! [`ServeSnapshot`] is a coherent-enough copy for monitoring and tests.
//! `spec_runs` is the load-bearing counter for correctness tests: a
//! warm-cache hit must leave it unchanged, proving the specializer did no
//! work.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Atomic counters maintained by the service (shared across workers).
#[derive(Debug, Default)]
pub(crate) struct ServeStats {
    pub(crate) hits: AtomicU64,
    pub(crate) misses: AtomicU64,
    pub(crate) coalesced: AtomicU64,
    pub(crate) evictions: AtomicU64,
    pub(crate) degraded: AtomicU64,
    pub(crate) spec_runs: AtomicU64,
    pub(crate) errors: AtomicU64,
    pub(crate) shed: AtomicU64,
    pub(crate) deadline_exceeded: AtomicU64,
    pub(crate) retried: AtomicU64,
    pub(crate) breaker_open: AtomicU64,
    pub(crate) restored: AtomicU64,
    pub(crate) quarantined: AtomicU64,
}

impl ServeStats {
    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> ServeSnapshot {
        ServeSnapshot {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            spec_runs: self.spec_runs.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            deadline_exceeded: self.deadline_exceeded.load(Ordering::Relaxed),
            retried: self.retried.load(Ordering::Relaxed),
            breaker_open: self.breaker_open.load(Ordering::Relaxed),
            restored: self.restored.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of the service counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeSnapshot {
    /// Requests answered from the cache (including single-flight waiters
    /// that received the leader's successful result).
    pub hits: u64,
    /// Requests that had to run the specializer and filled the cache.
    pub misses: u64,
    /// Requests that found another worker already specializing the same
    /// key and waited for its result instead of duplicating the work.
    pub coalesced: u64,
    /// Cached entries discarded to stay within the configured capacity
    /// and code budget.
    pub evictions: u64,
    /// Cache fills whose specialization degraded to generic code after a
    /// recoverable resource limit (see `SpecStats::degraded`).
    pub degraded: u64,
    /// Times the specializer actually ran. Warm-cache traffic must not
    /// move this counter.
    pub spec_runs: u64,
    /// Requests that ended in an error (errors are not cached).
    pub errors: u64,
    /// Requests shed at admission because the wait queue was full
    /// (`ServeError::Overloaded`).
    pub shed: u64,
    /// Requests whose per-request deadline fired — while queued, while
    /// coalesced on another leader's flight, or mid-specialization via
    /// cooperative cancellation.
    pub deadline_exceeded: u64,
    /// Fills retried with an escalated budget after a transient limit
    /// (unfold-fuel or memo-cap) degraded the first attempt.
    pub retried: u64,
    /// Requests answered by a tripped circuit breaker with generic
    /// fallback code instead of running the (repeatedly failing)
    /// specialization.
    pub breaker_open: u64,
    /// Cache entries restored from a snapshot file.
    pub restored: u64,
    /// Snapshot records rejected during restore (bad checksum, torn tail,
    /// stale version, undecodable payload).
    pub quarantined: u64,
}

impl fmt::Display for ServeSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "hits={} misses={} coalesced={} evictions={} degraded={} spec_runs={} errors={} \
             shed={} deadline_exceeded={} retried={} breaker_open={} restored={} quarantined={}",
            self.hits,
            self.misses,
            self.coalesced,
            self.evictions,
            self.degraded,
            self.spec_runs,
            self.errors,
            self.shed,
            self.deadline_exceeded,
            self.retried,
            self.breaker_open,
            self.restored,
            self.quarantined
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_bumps() {
        let s = ServeStats::default();
        ServeStats::bump(&s.hits);
        ServeStats::bump(&s.hits);
        ServeStats::add(&s.evictions, 3);
        let snap = s.snapshot();
        assert_eq!(snap.hits, 2);
        assert_eq!(snap.evictions, 3);
        assert_eq!(snap.misses, 0);
        assert!(snap.to_string().contains("hits=2"));
    }
}
