//! The *generic* Core Scheme compiler — what the paper's Act 1 chopped
//! away.
//!
//! "In principle, it is possible to simply use the stock Scheme 48
//! byte-code compiler which passes a compile-time continuation to identify
//! tail-calls. However, the target code of the specialization engine is in
//! ANF … Hence, the propagation of a compile-time continuation is
//! unnecessary, and it is sensible to make do with a drastically cut-down
//! version of the compiler. Removing the compile-time continuation
//! simplifies the compiler, and also speeds up later code generation, as
//! it could not be removed by fusion." (Sec. 6.1)
//!
//! This module implements that *uncut* compiler: it accepts arbitrary Core
//! Scheme (not just ANF) and threads a compile-time continuation
//! ([`Cont`]) that identifies tail positions and stitches control-flow
//! merges together. It exists for two reasons:
//!
//! 1. as the baseline for the ablation benchmark quantifying the paper's
//!    claim (the ANF compilators vs. the continuation-passing compiler);
//! 2. as an independent second compiler whose agreement with the
//!    ANF pipeline is a strong correctness oracle.
//!
//! The complexity the ANF compiler avoids is visible here: non-tail
//! conditionals need a join label and a `trim` to re-synchronize the
//! local-slot depth of the two arms — in ANF neither situation can occur.

use crate::cenv::{CEnv, Loc};
use crate::{emit, CompileError};
use std::collections::BTreeSet;
use std::sync::Arc;
use two4one_syntax::cs::{Def, Expr, Lambda, Program};
use two4one_syntax::symbol::Symbol;
use two4one_vm::{Asm, Image, Instr, Template};

/// The compile-time continuation: what happens to the value in `val`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cont {
    /// The expression is in tail position: return its value (calls become
    /// jumps).
    Return,
    /// Control falls through to the following code with the value in
    /// `val`.
    Next,
}

/// Compiles a whole program with the generic (continuation-passing)
/// compiler.
///
/// # Errors
///
/// Returns a [`CompileError`] on unbound variables or encoding overflows.
pub fn compile_program_generic(p: &Program, entry: &str) -> Result<Image, CompileError> {
    let _span = two4one_obs::Span::enter(two4one_obs::Phase::Compile);
    let globals: BTreeSet<Symbol> = p.defs.iter().map(|d| d.name).collect();
    let mut templates = Vec::with_capacity(p.defs.len());
    for d in &p.defs {
        templates.push((d.name, compile_def_generic(d, &globals)?));
    }
    Ok(Image {
        templates,
        entry: Symbol::new(entry),
    })
}

/// Compiles one definition.
///
/// # Errors
///
/// Returns a [`CompileError`] on unbound variables or encoding overflows.
pub fn compile_def_generic(
    d: &Def,
    globals: &BTreeSet<Symbol>,
) -> Result<Arc<Template>, CompileError> {
    let arity =
        u8::try_from(d.params.len()).map_err(|_| CompileError::TooManyArgs(d.params.len()))?;
    let mut asm = Asm::new(d.name, arity, 0);
    let mut cenv = CEnv::empty();
    for (i, p) in d.params.iter().enumerate() {
        cenv = cenv.bind(*p, Loc::Local(i as u16));
    }
    compile(
        &d.body,
        &mut asm,
        &cenv,
        d.params.len() as u16,
        globals,
        Cont::Return,
    )?;
    Ok(asm.finish()?)
}

/// The compiler proper: one function, every construct, continuation
/// threaded throughout.
fn compile(
    e: &Expr,
    asm: &mut Asm,
    cenv: &CEnv,
    depth: u16,
    globals: &BTreeSet<Symbol>,
    cont: Cont,
) -> Result<(), CompileError> {
    match e {
        Expr::Const(d) => {
            emit::emit_const(asm, d)?;
            finish(asm, cont);
            Ok(())
        }
        Expr::Var(x) => {
            match cenv.lookup(x) {
                Some(loc) => emit::emit_var(asm, loc),
                None if globals.contains(x) => emit::emit_global(asm, x)?,
                None => return Err(CompileError::Unbound(*x)),
            }
            finish(asm, cont);
            Ok(())
        }
        Expr::Lambda(l) => {
            let free: Vec<Symbol> = l
                .body
                .free_vars()
                .into_iter()
                .filter(|v| !l.params.contains(v) && !globals.contains(v))
                .collect();
            let template = compile_lambda_generic(l, &free, globals)?;
            emit::emit_make_closure(asm, template, &free, |asm, x| match cenv.lookup(x) {
                Some(loc) => {
                    emit::emit_var(asm, loc);
                    Ok(())
                }
                None => Err(CompileError::Unbound(*x)),
            })?;
            finish(asm, cont);
            Ok(())
        }
        Expr::If(t, c, a) => {
            compile(t, asm, cenv, depth, globals, Cont::Next)?;
            let alt = emit::emit_branch_false(asm);
            compile(c, asm, cenv, depth, globals, cont)?;
            match cont {
                Cont::Return => {
                    // Both arms return; no merge needed.
                    emit::attach(asm, alt);
                    compile(a, asm, cenv, depth, globals, cont)
                }
                Cont::Next => {
                    // The arms fall through: jump the consequent over the
                    // alternative and re-synchronize the local depth —
                    // exactly the bookkeeping ANF makes unnecessary.
                    let join = asm.make_label();
                    asm.emit(Instr::Trim(depth));
                    asm.emit_jump(join);
                    emit::attach(asm, alt);
                    compile(a, asm, cenv, depth, globals, cont)?;
                    asm.emit(Instr::Trim(depth));
                    emit::attach(asm, join);
                    Ok(())
                }
            }
        }
        Expr::Let(x, rhs, body) => {
            compile(rhs, asm, cenv, depth, globals, Cont::Next)?;
            emit::emit_bind(asm);
            let inner = cenv.bind(*x, Loc::Local(depth));
            compile(body, asm, &inner, depth + 1, globals, cont)
            // On `Cont::Next` the binding stays live until an enclosing
            // conditional trims or the frame returns; locals are
            // append-only within a straight-line region.
        }
        Expr::App(f, args) => {
            let n = u8::try_from(args.len()).map_err(|_| CompileError::TooManyArgs(args.len()))?;
            for a in args {
                compile(a, asm, cenv, depth, globals, Cont::Next)?;
                emit::emit_push(asm);
            }
            compile(f, asm, cenv, depth, globals, Cont::Next)?;
            match cont {
                Cont::Return => emit::emit_tail_call(asm, n),
                Cont::Next => emit::emit_call(asm, n),
            }
            Ok(())
        }
        Expr::PrimApp(p, args) => {
            let n = u8::try_from(args.len()).map_err(|_| CompileError::TooManyArgs(args.len()))?;
            for a in args {
                compile(a, asm, cenv, depth, globals, Cont::Next)?;
                emit::emit_push(asm);
            }
            emit::emit_prim(asm, *p, n);
            finish(asm, cont);
            Ok(())
        }
    }
}

fn compile_lambda_generic(
    l: &Lambda,
    free: &[Symbol],
    globals: &BTreeSet<Symbol>,
) -> Result<Arc<Template>, CompileError> {
    let arity =
        u8::try_from(l.params.len()).map_err(|_| CompileError::TooManyArgs(l.params.len()))?;
    let nfree = u16::try_from(free.len()).map_err(|_| CompileError::TooManyArgs(free.len()))?;
    let mut asm = Asm::new(l.name, arity, nfree);
    let mut cenv = CEnv::empty();
    for (i, p) in l.params.iter().enumerate() {
        cenv = cenv.bind(*p, Loc::Local(i as u16));
    }
    for (i, v) in free.iter().enumerate() {
        cenv = cenv.bind(*v, Loc::Captured(i as u16));
    }
    compile(
        &l.body,
        &mut asm,
        &cenv,
        l.params.len() as u16,
        globals,
        Cont::Return,
    )?;
    Ok(asm.finish()?)
}

fn finish(asm: &mut Asm, cont: Cont) {
    if cont == Cont::Return {
        emit::emit_return(asm);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use two4one_frontend::frontend;
    use two4one_syntax::datum::Datum;
    use two4one_vm::{Machine, Value};

    fn run_generic(src: &str, entry: &str, args: &[Datum]) -> Result<Datum, two4one_vm::VmError> {
        let cs = frontend(src).unwrap();
        let image = compile_program_generic(&cs, entry).unwrap();
        let mut m = Machine::load(&image);
        let argv = args.iter().map(Value::from).collect();
        m.call_global(&Symbol::new(entry), argv)
            .map(|v| v.to_datum().expect("first-order result"))
    }

    #[test]
    fn straight_line_and_recursion() {
        assert_eq!(
            run_generic(
                "(define (fact n) (if (= n 0) 1 (* n (fact (- n 1)))))",
                "fact",
                &[Datum::Int(6)]
            )
            .unwrap(),
            Datum::Int(720)
        );
    }

    #[test]
    fn nontail_conditionals_merge_correctly() {
        // The case the ANF compiler never sees: an `if` in argument
        // position, with a `let` in only one arm.
        let src = "(define (f a b) (+ (if a (let ((x 10)) (* x 2)) 3) b))";
        assert_eq!(
            run_generic(src, "f", &[Datum::Bool(true), Datum::Int(1)]).unwrap(),
            Datum::Int(21)
        );
        assert_eq!(
            run_generic(src, "f", &[Datum::Bool(false), Datum::Int(1)]).unwrap(),
            Datum::Int(4)
        );
    }

    #[test]
    fn depth_resynchronization_across_arms() {
        // Bindings made inside a non-tail arm must not shift later slots.
        let src = "(define (g c)
                     (let ((r (if c (let ((a 1)) (let ((b 2)) (+ a b))) 0)))
                       (let ((z 100))
                         (+ r z))))";
        assert_eq!(
            run_generic(src, "g", &[Datum::Bool(true)]).unwrap(),
            Datum::Int(103)
        );
        assert_eq!(
            run_generic(src, "g", &[Datum::Bool(false)]).unwrap(),
            Datum::Int(100)
        );
    }

    #[test]
    fn tail_calls_still_jump() {
        let src = "(define (loop i) (if (= i 0) 'done (loop (- i 1))))";
        assert_eq!(
            run_generic(src, "loop", &[Datum::Int(300_000)]).unwrap(),
            Datum::sym("done")
        );
    }

    #[test]
    fn closures_in_the_generic_compiler() {
        let src = "(define (mk n) (lambda (x) (+ x n)))
                   (define (main a b) ((mk a) b))";
        assert_eq!(
            run_generic(src, "main", &[Datum::Int(3), Datum::Int(4)]).unwrap(),
            Datum::Int(7)
        );
    }

    #[test]
    fn generic_agrees_with_anf_pipeline() {
        use two4one_anf::normalize;
        for (src, entry, args) in [
            (
                "(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))",
                "fib",
                vec![Datum::Int(12)],
            ),
            (
                "(define (sum xs) (if (null? xs) 0 (+ (car xs) (sum (cdr xs)))))
                 (define (main) (sum '(1 2 3 4 5)))",
                "main",
                vec![],
            ),
            (
                "(define (main a) (+ (if a 1 2) (if a 10 20)))",
                "main",
                vec![Datum::Bool(true)],
            ),
        ] {
            let cs = frontend(src).unwrap();
            let anf_image = crate::compile_program(&normalize(&cs), entry).unwrap();
            let gen_image = compile_program_generic(&cs, entry).unwrap();
            let argv: Vec<Value> = args.iter().map(Value::from).collect();
            let mut m1 = Machine::load(&anf_image);
            let mut m2 = Machine::load(&gen_image);
            let v1 = m1.call_global(&Symbol::new(entry), argv.clone()).unwrap();
            let v2 = m2.call_global(&Symbol::new(entry), argv).unwrap();
            assert_eq!(v1.to_datum(), v2.to_datum(), "{src}");
        }
    }

    #[test]
    fn generic_compiler_needs_trim_but_anf_never_does() {
        use two4one_anf::normalize;
        let src = "(define (f a) (+ (if a (let ((x 1)) x) 2) 3))";
        let cs = frontend(src).unwrap();
        let gen_image = compile_program_generic(&cs, "f").unwrap();
        let anf_image = crate::compile_program(&normalize(&cs), "f").unwrap();
        let has_trim = |img: &Image| {
            img.templates
                .iter()
                .any(|(_, t)| t.code.iter().any(|i| matches!(i, Instr::Trim(_))))
        };
        assert!(has_trim(&gen_image));
        assert!(!has_trim(&anf_image));
    }
}
