//! Lowering: surface IR (after renaming, assignment elimination, and
//! lambda lifting) → Core Scheme.
//!
//! At this point the surface program contains no `set!` and no `letrec`;
//! what remains maps 1-1 onto [`cs::Expr`] except multi-binding `let`
//! (nested — safe because all names are unique) and `begin` (a chain of
//! `let`s with ignored binders).

use crate::surface::{SExpr, STop};
use std::sync::Arc;
use two4one_syntax::cs;
use two4one_syntax::symbol::Gensym;

/// Lowers a lifted program to Core Scheme.
pub fn lower_program(tops: Vec<STop>, gensym: &mut Gensym) -> cs::Program {
    cs::Program {
        defs: tops
            .into_iter()
            .map(|t| cs::Def {
                name: t.name,
                params: t.params,
                body: lower_expr(t.body, gensym),
            })
            .collect(),
    }
}

/// Lowers one surface expression.
///
/// # Panics
///
/// Panics if the expression still contains `set!` or `letrec` (the earlier
/// passes guarantee it does not).
pub fn lower_expr(e: SExpr, gensym: &mut Gensym) -> cs::Expr {
    match e {
        SExpr::Const(d) => cs::Expr::Const(d),
        SExpr::Var(x) => cs::Expr::Var(x),
        SExpr::Lambda { name, params, body } => cs::Expr::Lambda(Arc::new(cs::Lambda {
            name,
            params,
            body: lower_expr(*body, gensym),
        })),
        SExpr::If(a, b, c) => cs::Expr::if_(
            lower_expr(*a, gensym),
            lower_expr(*b, gensym),
            lower_expr(*c, gensym),
        ),
        SExpr::Let(bs, body) => {
            let mut acc = lower_expr(*body, gensym);
            for (x, rhs) in bs.into_iter().rev() {
                acc = cs::Expr::let_(x, lower_expr(rhs, gensym), acc);
            }
            acc
        }
        SExpr::Begin(es) => {
            let mut es: Vec<cs::Expr> = es.into_iter().map(|e| lower_expr(e, gensym)).collect();
            let last = es.pop().expect("begin is non-empty");
            es.into_iter().rev().fold(last, |acc, e| {
                cs::Expr::let_(gensym.fresh("ignore"), e, acc)
            })
        }
        SExpr::App(f, args) => cs::Expr::app(
            lower_expr(*f, gensym),
            args.into_iter().map(|a| lower_expr(a, gensym)).collect(),
        ),
        SExpr::Prim(p, args) => {
            cs::Expr::PrimApp(p, args.into_iter().map(|a| lower_expr(a, gensym)).collect())
        }
        SExpr::Set(..) | SExpr::Letrec(..) => {
            unreachable!("set!/letrec must be eliminated before lowering")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontend;
    use two4one_syntax::prim::Prim;

    #[test]
    fn begin_becomes_let_chain() {
        let p = frontend("(define (f x) (display x) (newline) x)").unwrap();
        match &p.defs[0].body {
            cs::Expr::Let(_, rhs, body) => {
                assert!(matches!(**rhs, cs::Expr::PrimApp(Prim::Display, _)));
                assert!(matches!(**body, cs::Expr::Let(..)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn multi_let_nests() {
        let p = frontend("(define (f) (let ((a 1) (b 2)) (+ a b)))").unwrap();
        match &p.defs[0].body {
            cs::Expr::Let(_, _, body) => assert!(matches!(**body, cs::Expr::Let(..))),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn whole_pipeline_is_closed() {
        let p = frontend(
            "(define (member? x xs)
               (cond ((null? xs) #f)
                     ((equal? x (car xs)) #t)
                     (else (member? x (cdr xs)))))
             (define (main xs) (and (member? 1 xs) (or (member? 2 xs) 'no)))",
        )
        .unwrap();
        assert!(p.unbound_vars().is_empty());
        assert_eq!(p.defs.len(), 2);
    }
}
