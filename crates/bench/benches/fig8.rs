//! Fig. 8 — "Using RTCG for normal compilation": treat every input of the
//! interpreter as dynamic, so running the generating extension *is* an
//! ordinary compiler for the interpreter itself. Columns:
//!
//! * **BTA** — binding-time analysis + generating-extension construction;
//! * **Generate** — running the generating extension (object code out);
//! * **Compile** — the stock compiler on the same source, for comparison.
//!
//! (The paper's "Load" column measured loading+compiling the object-code
//! generator with the stock compiler; our generating extensions are
//! in-memory closures, so there is nothing to load — see EXPERIMENTS.md.)

use std::hint::black_box;
use std::time::Instant;
use two4one::{compile_source_text, with_stack, Division};
use two4one_bench::harness::Criterion;
use two4one_bench::subjects;
use two4one_bench::{criterion_group, criterion_main};

fn bench_normal_compilation(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_rtcg_as_compiler");
    group.sample_size(20);
    for subject in subjects() {
        let pgg = subject.pgg();
        let parsed = subject.parsed();
        let entry: &'static str = subject.entry;
        let src: &'static str = subject.interp_src;

        // BTA column.
        let p = parsed.clone();
        let pg = pgg.clone();
        group.bench_function(format!("{}/bta", subject.name), move |b| {
            b.iter_custom(|iters| {
                let p = p.clone();
                let pg = pg.clone();
                with_stack(move || {
                    let t0 = Instant::now();
                    for _ in 0..iters {
                        black_box(
                            pg.cogen(&p, entry, &Division::all_dynamic(2))
                                .expect("cogen")
                                .annotated()
                                .defs
                                .len(),
                        );
                    }
                    t0.elapsed()
                })
            })
        });

        // Generate column.
        let genext = subject.genext_all_dynamic();
        group.bench_function(format!("{}/generate", subject.name), move |b| {
            b.iter_custom(|iters| {
                let g = genext.clone();
                with_stack(move || {
                    let t0 = Instant::now();
                    for _ in 0..iters {
                        black_box(g.specialize_object(&[]).expect("generate").code_size());
                    }
                    t0.elapsed()
                })
            })
        });

        // Compile column (stock compiler from source text).
        group.bench_function(format!("{}/compile-stock", subject.name), move |b| {
            b.iter_custom(|iters| {
                with_stack(move || {
                    let t0 = Instant::now();
                    for _ in 0..iters {
                        black_box(
                            compile_source_text(src, entry)
                                .expect("stock compile")
                                .code_size(),
                        );
                    }
                    t0.elapsed()
                })
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_normal_compilation);
criterion_main!(benches);
