//! Pretty printer for s-expressions, tuned for residual Scheme programs.
//!
//! [`Datum`]'s `Display` prints a flat single-line form; [`pretty`] produces
//! indented multi-line output that keeps `define`/`lambda`/`let`/`if` bodies
//! readable, which matters when inspecting residual programs produced by the
//! specializer.

use crate::datum::Datum;

/// Default line width used by [`pretty`].
pub const DEFAULT_WIDTH: usize = 78;

/// Pretty-prints a datum to at most `width` columns where possible.
///
/// # Example
///
/// ```
/// use two4one_syntax::reader::read_one;
/// use two4one_syntax::printer::pretty;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let d = read_one("(define (f x) (if (< x 1) 0 (f (- x 1))))")?;
/// let s = pretty(&d, 20);
/// assert!(s.contains('\n'));
/// assert_eq!(read_one(&s)?, d);
/// # Ok(())
/// # }
/// ```
pub fn pretty(d: &Datum, width: usize) -> String {
    let mut out = String::new();
    write_datum(&mut out, d, 0, width);
    out
}

/// Pretty-prints a whole program (sequence of top-level data) with blank
/// lines between forms.
pub fn pretty_program(ds: &[Datum], width: usize) -> String {
    let mut out = String::new();
    for (i, d) in ds.iter().enumerate() {
        if i > 0 {
            out.push_str("\n\n");
        }
        write_datum(&mut out, d, 0, width);
    }
    out.push('\n');
    out
}

/// How many operands of a form belong on the head line (the rest are body
/// forms indented by two spaces). `None` means generic list layout.
fn special_head_count(head: &str) -> Option<usize> {
    match head {
        "define" | "lambda" | "let" | "let*" | "letrec" | "when" | "unless" => Some(1),
        "if" => Some(1),
        "cond" | "case" | "begin" | "and" | "or" => Some(0),
        _ => None,
    }
}

fn write_datum(out: &mut String, d: &Datum, indent: usize, width: usize) {
    let flat = d.to_string();
    if indent + flat.len() <= width || !d.is_pair() {
        out.push_str(&flat);
        return;
    }
    // A list too wide to fit: break it.
    let items: Vec<&Datum> = d.iter().collect();
    let proper = {
        let mut it = d.iter();
        for _ in it.by_ref() {}
        it.tail().is_nil()
    };
    if !proper || items.is_empty() {
        out.push_str(&flat);
        return;
    }
    let head_sym = items[0].as_sym().map(|s| s.as_str().to_string());
    let special = head_sym.as_deref().and_then(special_head_count);

    out.push('(');
    let inner = indent + 2;
    match special {
        Some(n_on_head) => {
            // Head plus its first n operands on the first line.
            let mut first_line = items[0].to_string();
            for it in items.iter().take(1 + n_on_head).skip(1) {
                first_line.push(' ');
                first_line.push_str(&it.to_string());
            }
            out.push_str(&first_line);
            for item in items.iter().skip(1 + n_on_head) {
                out.push('\n');
                out.push_str(&" ".repeat(inner));
                write_datum(out, item, inner, width);
            }
        }
        None => {
            // Generic: head on first line, args aligned under it.
            let head = items[0].to_string();
            out.push_str(&head);
            let arg_indent = inner;
            for item in items.iter().skip(1) {
                out.push('\n');
                out.push_str(&" ".repeat(arg_indent));
                write_datum(out, item, arg_indent, width);
            }
        }
    }
    out.push(')');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader::read_one;

    #[test]
    fn small_data_stay_flat() {
        let d = read_one("(+ 1 2)").unwrap();
        assert_eq!(pretty(&d, 78), "(+ 1 2)");
    }

    #[test]
    fn wide_forms_break_and_reparse() {
        let src = "(define (loop i acc) (if (= i 0) acc (loop (- i 1) (* acc i))))";
        let d = read_one(src).unwrap();
        let s = pretty(&d, 24);
        assert!(s.lines().count() > 1);
        assert_eq!(read_one(&s).unwrap(), d);
    }

    #[test]
    fn program_layout_reparses() {
        let srcs = ["(define (f x) x)", "(define (g y) (f (f y)))"];
        let ds: Vec<_> = srcs.iter().map(|s| read_one(s).unwrap()).collect();
        let text = pretty_program(&ds, 30);
        let back = crate::reader::read_all(&text).unwrap();
        assert_eq!(back, ds);
    }

    #[test]
    fn improper_tails_survive() {
        let d = read_one("(a b . c)").unwrap();
        assert_eq!(read_one(&pretty(&d, 2)).unwrap(), d);
    }
}
