//! A post-pass optimizer for ANF programs.
//!
//! Residual programs produced by the specializer are correct but carry
//! artifacts of the generation discipline: `let`-bindings of trivials
//! introduced when unfolding rebinds heavyweight arguments, multiplications
//! by lifted `1`s at recursion bases (`power`'s `(* x 1)`), and bindings
//! that the continuation never ended up using. This pass cleans them up:
//!
//! * **copy/constant propagation** — `(let (x t) M)` with trivial `t`
//!   substitutes `t` for `x` in `M` (lambdas are propagated only when used
//!   once, to avoid duplicating code);
//! * **algebraic simplification** — unit laws of `+` and `*`,
//!   multiplication by zero, `(if #t …)`/`(if #f …)`, constant folding of
//!   pure primitives on constants;
//! * **dead-binding elimination** — `(let (x a) M)` where `x` is unused and
//!   `a` is a *total* primitive application is dropped (calls and faulting
//!   primitives are kept: they may diverge, fault, or perform effects).
//!
//! The default [`optimize`] is **fault-preserving**: a program that raises
//! a runtime error keeps raising it. The unit-law rewrites (`(* x 1) → x`,
//! `(+ x 0) → x`, …) are *not* fault-preserving — they erase the type
//! error the original raises when `x` is not a number — so they live in
//! [`optimize_aggressive`], which assumes arithmetic operands are numeric.
//! Both levels run to a fixpoint and are checked against the interpreter
//! oracle in the test suite and by property tests.

use crate::{App, Def, Expr, Lambda, Program, Rhs, Triv};
use std::collections::HashMap;
use std::sync::Arc;
use two4one_syntax::datum::Datum;
use two4one_syntax::prim::Prim;
use two4one_syntax::symbol::Symbol;
use two4one_syntax::value::apply_prim_datum;

/// Optimizes a whole program to a fixpoint, preserving faults.
///
/// # Example
///
/// ```
/// use two4one_anf::{normalize, optimize};
/// use two4one_syntax::cs::parse_program;
/// use two4one_syntax::reader::read_all;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let cs = parse_program(&read_all(
///     "(define (f x) (let ((dead (cons x x))) (if #t (+ 1 2) x)))",
/// )?)?;
/// let optimized = optimize(&normalize(&cs));
/// assert_eq!(optimized.defs[0].body.to_string(), "3");
/// # Ok(())
/// # }
/// ```
pub fn optimize(p: &Program) -> Program {
    optimize_with(p, false)
}

/// Optimizes a whole program to a fixpoint, additionally applying the
/// numeric unit laws (assumes arithmetic operands are numbers; a program
/// relying on `(* 'a 1)` faulting will no longer fault).
pub fn optimize_aggressive(p: &Program) -> Program {
    optimize_with(p, true)
}

fn optimize_with(p: &Program, aggressive: bool) -> Program {
    Program {
        defs: p
            .defs
            .iter()
            .map(|d| Def {
                name: d.name,
                params: d.params.clone(),
                body: optimize_expr_with(&d.body, aggressive),
            })
            .collect(),
    }
}

/// Optimizes one expression to a fixpoint (fault-preserving).
pub fn optimize_expr(e: &Expr) -> Expr {
    optimize_expr_with(e, false)
}

/// Optimizes one expression to a fixpoint with the unit laws enabled.
pub fn optimize_expr_aggressive(e: &Expr) -> Expr {
    optimize_expr_with(e, true)
}

fn optimize_expr_with(e: &Expr, aggressive: bool) -> Expr {
    let mut cur = e.clone();
    for _ in 0..16 {
        let next = pass(&cur, &mut HashMap::new(), aggressive);
        if next == cur {
            break;
        }
        cur = next;
    }
    cur
}

/// Substitution environment: variables mapped to replacement trivials.
type Subst = HashMap<Symbol, Triv>;

fn subst_triv(t: &Triv, s: &Subst, aggressive: bool) -> Triv {
    match t {
        Triv::Var(x) => s.get(x).cloned().unwrap_or_else(|| t.clone()),
        Triv::Const(_) => t.clone(),
        Triv::Lambda(l) => Triv::Lambda(Arc::new(Lambda {
            name: l.name,
            params: l.params.clone(),
            body: pass(&l.body, &mut shadowed(s, &l.params), aggressive),
        })),
    }
}

fn shadowed(s: &Subst, params: &[Symbol]) -> Subst {
    let mut s2 = s.clone();
    for p in params {
        s2.remove(p);
    }
    s2
}

fn subst_app(a: &App, s: &Subst, aggressive: bool) -> App {
    match a {
        App::Call(f, args) => App::Call(
            subst_triv(f, s, aggressive),
            args.iter().map(|t| subst_triv(t, s, aggressive)).collect(),
        ),
        App::Prim(p, args) => App::Prim(
            *p,
            args.iter().map(|t| subst_triv(t, s, aggressive)).collect(),
        ),
    }
}

/// Algebraic simplification of a serious term; returns a trivial when the
/// whole application collapses.
fn simplify_app(a: &App, aggressive: bool) -> Result<Triv, App> {
    if let App::Prim(p, args) = a {
        // Unit laws on the integers erase the type error the original
        // raises on non-numeric operands, so they are aggressive-only.
        if aggressive {
            match (p, args.as_slice()) {
                (Prim::Mul, [x, Triv::Const(Datum::Int(1))]) => return Ok(x.clone()),
                (Prim::Mul, [Triv::Const(Datum::Int(1)), x]) => return Ok(x.clone()),
                (Prim::Add, [x, Triv::Const(Datum::Int(0))]) => return Ok(x.clone()),
                (Prim::Add, [Triv::Const(Datum::Int(0)), x]) => return Ok(x.clone()),
                (Prim::Sub, [x, Triv::Const(Datum::Int(0))]) => return Ok(x.clone()),
                _ => {}
            }
        }
        // Constant folding of pure primitives over constants.
        if p.is_pure() && !args.is_empty() {
            let consts: Option<Vec<Datum>> = args
                .iter()
                .map(|t| match t {
                    Triv::Const(d) => Some(d.clone()),
                    _ => None,
                })
                .collect();
            if let Some(ds) = consts {
                if let Ok(d) = apply_prim_datum(*p, &ds) {
                    return Ok(Triv::Const(d));
                }
            }
        }
    }
    Err(a.clone())
}

fn uses_in_triv(t: &Triv, x: &Symbol) -> usize {
    match t {
        Triv::Var(y) => usize::from(y == x),
        Triv::Const(_) => 0,
        Triv::Lambda(l) => {
            if l.params.contains(x) {
                0
            } else {
                uses_in_expr(&l.body, x)
            }
        }
    }
}

fn uses_in_app(a: &App, x: &Symbol) -> usize {
    match a {
        App::Call(f, args) => {
            uses_in_triv(f, x) + args.iter().map(|t| uses_in_triv(t, x)).sum::<usize>()
        }
        App::Prim(_, args) => args.iter().map(|t| uses_in_triv(t, x)).sum(),
    }
}

fn uses_in_expr(e: &Expr, x: &Symbol) -> usize {
    match e {
        Expr::Ret(t) => uses_in_triv(t, x),
        Expr::Tail(a) => uses_in_app(a, x),
        Expr::Let(y, rhs, body) => {
            let rhs_uses = match rhs {
                Rhs::Triv(t) => uses_in_triv(t, x),
                Rhs::App(a) => uses_in_app(a, x),
            };
            // Names are unique, so shadowing cannot occur, but guard anyway.
            rhs_uses + if y == x { 0 } else { uses_in_expr(body, x) }
        }
        Expr::If(t, c, a) => uses_in_triv(t, x) + uses_in_expr(c, x) + uses_in_expr(a, x),
    }
}

fn pass(e: &Expr, s: &mut Subst, aggressive: bool) -> Expr {
    match e {
        Expr::Ret(t) => Expr::Ret(subst_triv(t, s, aggressive)),
        Expr::Tail(a) => {
            let a = subst_app(a, s, aggressive);
            match simplify_app(&a, aggressive) {
                Ok(t) => Expr::Ret(t),
                Err(a) => Expr::Tail(a),
            }
        }
        Expr::Let(x, rhs, body) => {
            match rhs {
                Rhs::Triv(t) => {
                    let t = subst_triv(t, s, aggressive);
                    let propagate = match &t {
                        Triv::Const(_) | Triv::Var(_) => true,
                        // Don't duplicate lambdas: propagate only when the
                        // binding is used at most once (also preserves
                        // `eq?` identity of the closure).
                        Triv::Lambda(_) => uses_in_expr(body, x) <= 1,
                    };
                    if propagate {
                        s.insert(*x, t);
                        pass(body, s, aggressive)
                    } else {
                        Expr::Let(*x, Rhs::Triv(t), Box::new(pass(body, s, aggressive)))
                    }
                }
                Rhs::App(a) => {
                    let a = subst_app(a, s, aggressive);
                    match simplify_app(&a, aggressive) {
                        Ok(t) => {
                            s.insert(*x, t);
                            pass(body, s, aggressive)
                        }
                        Err(a) => {
                            let body2 = pass(body, s, aggressive);
                            // Fault preservation: only *total* primitives
                            // may vanish (aggressive mode extends this to
                            // all pure primitives).
                            let droppable = matches!(&a, App::Prim(p, _)
                                if p.is_total() || (aggressive && p.is_pure()));
                            if droppable && uses_in_expr(&body2, x) == 0 {
                                body2
                            } else {
                                Expr::Let(*x, Rhs::App(a), Box::new(body2))
                            }
                        }
                    }
                }
            }
        }
        Expr::If(t, c, a) => {
            let t = subst_triv(t, s, aggressive);
            if let Triv::Const(d) = &t {
                let branch = if d.is_truthy() { c } else { a };
                return pass(branch, s, aggressive);
            }
            Expr::If(
                t,
                Box::new(pass(c, &mut s.clone(), aggressive)),
                Box::new(pass(a, &mut s.clone(), aggressive)),
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use two4one_syntax::reader::read_one;

    fn parse_anf(src: &str) -> Expr {
        // Build via normalization of the strict core parser for convenience.
        let e = two4one_syntax::cs::parse_expr(&read_one(src).unwrap()).unwrap();
        crate::normalize_expr(&e, &mut two4one_syntax::symbol::Gensym::new())
    }

    fn opt(src: &str) -> String {
        optimize_expr(&parse_anf(src)).to_string()
    }

    fn opt_aggr(src: &str) -> String {
        optimize_expr_aggressive(&parse_anf(src)).to_string()
    }

    #[test]
    fn unit_laws_are_aggressive_only() {
        assert_eq!(opt_aggr("(* x 1)"), "x");
        assert_eq!(opt_aggr("(* 1 x)"), "x");
        assert_eq!(opt_aggr("(+ x 0)"), "x");
        assert_eq!(opt_aggr("(+ 0 x)"), "x");
        assert_eq!(opt_aggr("(- x 0)"), "x");
        // The safe level preserves the potential type fault.
        assert_eq!(opt("(* x 1)"), "(* x 1)");
    }

    #[test]
    fn constant_folding_chains() {
        assert_eq!(opt("(+ 1 (+ 2 3))"), "6");
        assert_eq!(opt("(car '(1 2))"), "1");
        // Folding must not fold faulting applications.
        assert_eq!(opt("(car 5)"), "(car 5)");
        // Division by zero stays residual.
        assert_eq!(opt("(quotient 1 0)"), "(quotient 1 0)");
    }

    #[test]
    fn copy_propagation_collapses_let_chains() {
        let e = opt("(let ((a x)) (let ((b a)) (+ b 1)))");
        assert_eq!(e, "(+ x 1)");
    }

    #[test]
    fn dead_binding_elimination_respects_totality() {
        // cons is total: safe to drop.
        assert_eq!(opt("(let ((unused (cons x y))) 42)"), "42");
        // + can fault on non-numbers: only the aggressive level drops it.
        assert!(opt("(let ((unused (+ x 1))) 42)").contains("+"));
        assert_eq!(opt_aggr("(let ((unused (+ x 1))) 42)"), "42");
        // Calls are never dropped: they may diverge or have effects.
        let e = opt_aggr("(let ((unused (f x))) 42)");
        assert!(e.contains("(f x)"), "{e}");
    }

    #[test]
    fn effectful_prims_are_kept() {
        let e = opt("(let ((u (display x))) 42)");
        assert!(e.contains("display"), "{e}");
    }

    #[test]
    fn static_conditionals_collapse() {
        assert_eq!(opt("(if #t 1 2)"), "1");
        assert_eq!(opt("(if #f 1 2)"), "2");
        assert_eq!(opt("(if 0 1 2)"), "1"); // 0 is truthy in Scheme
    }

    #[test]
    fn lambda_bindings_propagate_only_when_linear() {
        // Used once: inlined into the call position.
        let e = opt("(let ((f (lambda (y) y))) (f 1))");
        assert_eq!(e, "((lambda (y) y) 1)");
        // Used twice: stays bound (no code duplication).
        let e = opt("(let ((f (lambda (y) y))) (g f f))");
        assert!(e.starts_with("(let ((f"), "{e}");
    }

    #[test]
    fn power_residual_shape_cleans_up() {
        // The residual of power x^3: (* x (* x (* x 1))) in let-chain form.
        let e = opt_aggr(
            "(let ((t1 (* x 1)))
               (let ((t2 (* x t1)))
                 (* x t2)))",
        );
        // The innermost (* x 1) collapses to x.
        assert!(!e.contains("* x 1"), "{e}");
    }

    #[test]
    fn optimizer_is_idempotent() {
        for src in [
            "(let ((a (* x 1))) (let ((b (+ a 0))) (f b b)))",
            "(if (< x 1) (* 2 3) (+ x 0))",
        ] {
            for aggressive in [false, true] {
                let once = optimize_expr_with(&parse_anf(src), aggressive);
                let twice = optimize_expr_with(&once, aggressive);
                assert_eq!(once, twice, "{src} (aggressive={aggressive})");
            }
        }
    }

    #[test]
    fn output_remains_valid_anf() {
        for src in [
            "(let ((a (* x 1))) (let ((b (f a))) (+ b 2)))",
            "(if x (let ((u (g x))) u) 2)",
        ] {
            let o = optimize_expr(&parse_anf(src));
            assert!(crate::cs_is_anf(&o.to_cs()), "{o}");
        }
    }
}
