//! Per-program circuit breaking.
//!
//! A program whose specialization keeps failing hard (engine errors,
//! dead workers, blown deadlines) would otherwise re-run the specializer
//! on every request — errors are deliberately not cached. The breaker
//! watches consecutive hard failures per *program* (program + entry
//! digest, across all static arguments): after `threshold` of them it
//! opens and the service answers with generically-compiled fallback code
//! instead of specializing. After `cooldown`, exactly one request is let
//! through as a half-open probe; success closes the breaker, failure
//! re-opens it for another cooldown.
//!
//! State is only kept for failing programs and is dropped again on the
//! first success, so the table cannot grow with healthy traffic.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use two4one::obs;

use crate::cache::lock;

/// Circuit-breaker tuning (see [`ServeConfig`](crate::ServeConfig)).
#[derive(Debug, Clone)]
pub struct BreakerPolicy {
    /// Consecutive hard failures (per program) that trip the breaker.
    /// `0` disables circuit breaking entirely.
    pub threshold: u32,
    /// How long a tripped breaker stays open before letting one half-open
    /// probe through.
    pub cooldown: Duration,
}

impl Default for BreakerPolicy {
    fn default() -> Self {
        BreakerPolicy {
            threshold: 5,
            cooldown: Duration::from_millis(500),
        }
    }
}

/// What the breaker says about an arriving request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Verdict {
    /// Healthy (or unknown) program: proceed normally.
    Pass,
    /// The breaker is half-open and this request is the probe; its
    /// outcome decides whether the breaker closes.
    Probe,
    /// The breaker is open: do not specialize, serve fallback code.
    Fallback,
}

#[derive(Debug, Default)]
struct BreakerEntry {
    fails: u32,
    open_until: Option<Instant>,
    probing: bool,
}

#[derive(Debug)]
pub(crate) struct Breaker {
    policy: BreakerPolicy,
    entries: Mutex<HashMap<u64, BreakerEntry>>,
    /// Number of currently open (tripped) breakers, for the exposition
    /// page (`t4o_breaker_open`).
    open_gauge: obs::Gauge,
}

impl Breaker {
    pub(crate) fn new(policy: BreakerPolicy, open_gauge: obs::Gauge) -> Self {
        Breaker {
            policy,
            entries: Mutex::new(HashMap::new()),
            open_gauge,
        }
    }

    pub(crate) fn preflight(&self, program: u64) -> Verdict {
        if self.policy.threshold == 0 {
            return Verdict::Pass;
        }
        let mut map = lock(&self.entries);
        let Some(e) = map.get_mut(&program) else {
            return Verdict::Pass;
        };
        match e.open_until {
            None => Verdict::Pass,
            Some(t) if Instant::now() < t => Verdict::Fallback,
            // Cooldown over: one probe at a time.
            Some(_) if e.probing => Verdict::Fallback,
            Some(_) => {
                e.probing = true;
                Verdict::Probe
            }
        }
    }

    /// A specialization for `program` succeeded: close the breaker and
    /// forget the program.
    pub(crate) fn record_success(&self, program: u64) {
        if self.policy.threshold == 0 {
            return;
        }
        if let Some(e) = lock(&self.entries).remove(&program) {
            if e.open_until.is_some() {
                self.open_gauge.add(-1);
            }
        }
    }

    /// A hard failure: count it, and (re-)open the breaker at threshold.
    pub(crate) fn record_failure(&self, program: u64) {
        if self.policy.threshold == 0 {
            return;
        }
        let mut map = lock(&self.entries);
        let e = map.entry(program).or_default();
        e.fails = e.fails.saturating_add(1);
        e.probing = false;
        if e.fails >= self.policy.threshold {
            if e.open_until.is_none() {
                self.open_gauge.add(1);
            }
            e.open_until = Some(Instant::now() + self.policy.cooldown);
        }
    }

    /// Neutral outcome (shed at admission, caller cancelled): the probe
    /// slot is returned without judging the program.
    pub(crate) fn release_probe(&self, program: u64) {
        if self.policy.threshold == 0 {
            return;
        }
        if let Some(e) = lock(&self.entries).get_mut(&program) {
            e.probing = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy(threshold: u32, cooldown_ms: u64) -> BreakerPolicy {
        BreakerPolicy {
            threshold,
            cooldown: Duration::from_millis(cooldown_ms),
        }
    }

    #[test]
    fn trips_after_threshold_and_probes_after_cooldown() {
        let b = Breaker::new(policy(2, 0), obs::Gauge::new());
        assert_eq!(b.preflight(7), Verdict::Pass);
        b.record_failure(7);
        assert_eq!(b.preflight(7), Verdict::Pass);
        b.record_failure(7);
        // Tripped; zero cooldown means the next preflight is the probe.
        assert_eq!(b.preflight(7), Verdict::Probe);
        // Only one probe at a time.
        assert_eq!(b.preflight(7), Verdict::Fallback);
        b.record_success(7);
        assert_eq!(b.preflight(7), Verdict::Pass);
    }

    #[test]
    fn open_breaker_serves_fallback_until_cooldown() {
        let b = Breaker::new(policy(1, 60_000), obs::Gauge::new());
        b.record_failure(3);
        assert_eq!(b.preflight(3), Verdict::Fallback);
        assert_eq!(b.preflight(3), Verdict::Fallback);
        // Other programs are unaffected.
        assert_eq!(b.preflight(4), Verdict::Pass);
    }

    #[test]
    fn failed_probe_reopens() {
        let b = Breaker::new(policy(1, 0), obs::Gauge::new());
        b.record_failure(9);
        assert_eq!(b.preflight(9), Verdict::Probe);
        b.record_failure(9);
        // Re-opened (cooldown 0 → immediately probe-able again).
        assert_eq!(b.preflight(9), Verdict::Probe);
    }

    #[test]
    fn released_probe_lets_another_through() {
        let b = Breaker::new(policy(1, 0), obs::Gauge::new());
        b.record_failure(5);
        assert_eq!(b.preflight(5), Verdict::Probe);
        b.release_probe(5);
        assert_eq!(b.preflight(5), Verdict::Probe);
    }

    #[test]
    fn open_gauge_tracks_trip_and_close() {
        let g = obs::Gauge::new();
        let b = Breaker::new(policy(1, 0), g.clone());
        b.record_failure(11);
        assert_eq!(g.get(), 1);
        // Re-opening an already-open breaker must not double-count.
        b.record_failure(11);
        assert_eq!(g.get(), 1);
        b.record_success(11);
        assert_eq!(g.get(), 0);
        // A success for an unknown program is a no-op.
        b.record_success(11);
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn zero_threshold_disables() {
        let b = Breaker::new(policy(0, 0), obs::Gauge::new());
        for _ in 0..10 {
            b.record_failure(1);
        }
        assert_eq!(b.preflight(1), Verdict::Pass);
    }
}
