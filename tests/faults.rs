//! Fault injection across the whole pipeline: every way the engine can be
//! starved (fuel, deadlines, caps) or fed garbage (corrupted object files,
//! pathological nesting) must surface as a *typed error* or a graceful
//! degradation — never a panic, never a hang — and the engine must remain
//! usable afterwards.
//!
//! Fault schedules come from `two4one_testkit::faults`, driven by the
//! in-repo deterministic [`Rng`]: a failure message names the seed that
//! reproduces it.

use std::time::Duration;
use two4one::{
    compile, decode_image, encode_image, interpret_with, run_image_with, with_stack,
    with_stack_size, Datum, Division, Error, LimitKind, Limits, PeError, Pgg, RtError, VmError, BT,
};
use two4one_langs as langs;
use two4one_testkit::faults::{corrupt, gen_fault, Fault};
use two4one_testkit::{gen_program, Rng};

const CASES: u64 = 64;
/// Step fuel for oracle runs: generated programs can diverge, so every
/// execution is metered and a fuel-out on either side skips the comparison.
const RUN_FUEL: u64 = 100_000;
const STACK: usize = 2 * 1024 * 1024 * 1024;

/// Outcome of a metered program run, for equivalence checks.
#[derive(Debug, Clone, PartialEq)]
enum Outcome {
    Val(Datum),
    Fault,
    Timeout,
}

fn run_source(p: &two4one::cs::Program, entry: &str, args: &[Datum]) -> Outcome {
    match interpret_with(p, entry, args, &Limits::none().with_step_fuel(RUN_FUEL)) {
        Ok(out) => Outcome::Val(out.value),
        Err(Error::Interp(RtError::FuelExhausted)) => Outcome::Timeout,
        Err(Error::Interp(RtError::Limit(_))) => Outcome::Timeout,
        Err(_) => Outcome::Fault,
    }
}

/// A source text whose body is `depth` levels of `(car (cons … '()))`
/// around the first parameter — total but deeply nested.
fn nested_source(depth: usize) -> String {
    let mut s = String::from("(define (main a b) ");
    for _ in 0..depth {
        s.push_str("(car (cons ");
    }
    s.push('a');
    for _ in 0..depth {
        s.push_str(" '()))");
    }
    s.push(')');
    s
}

/// The core property: one random program, one random starvation fault, the
/// full pipeline. Every outcome must be typed (never `Error::Panicked`),
/// recoverable faults must actually recover, a successful residual must
/// agree with the source program, and a clean rerun afterwards must behave
/// exactly like a clean run before.
fn pipeline_under_fault(seed: u64) -> Result<(), String> {
    with_stack_size(STACK, move || {
        let mut rng = Rng::new(seed);
        let prog = gen_program(&mut rng);
        let fault = gen_fault(&mut rng);
        let a = rng.range_i64(-10, 10);
        let b = rng.range_i64(-10, 10);
        let statics = [Datum::Int(a)];
        let div = Division::new([BT::Static, BT::Dynamic]);
        let label = fault.label();

        // Reader faults gate `parse`; this pipeline starts from a syntax
        // tree, so point them at a nested source text instead.
        if matches!(fault, Fault::InputDepth(_) | Fault::InputNodes(_)) {
            match Pgg::new().limits(fault.limits()).parse(&nested_source(64)) {
                Err(Error::Panicked(m)) => return Err(format!("{label}: parse panicked: {m}")),
                Err(_) => return Ok(()),
                Ok(_) => return Err(format!("{label}: cap did not trip on nested input")),
            }
        }

        // Baseline: same pipeline under test-sized limits. Debug-build CPS
        // frames are large, so the unfold/depth guards stay well under the
        // worker stack (cf. props.rs); random programs can statically
        // diverge, and the guards turn that into fallback or a typed error.
        let governed = Limits::default()
            .with_unfold_fuel(6_000)
            .with_max_depth(30_000);
        let clean = Pgg::new()
            .limits(governed.clone())
            .cogen(&prog, "main", &div)
            .and_then(|g| g.specialize_source(&statics));
        if let Err(Error::Panicked(m)) = &clean {
            return Err(format!("clean run panicked: {m}"));
        }

        // Starved run: the fault's single knob, plus the same stack/
        // divergence guards on any knob the fault leaves unbounded.
        let mut starved_limits = fault.limits();
        if starved_limits.max_depth.is_none() {
            starved_limits = starved_limits.with_max_depth(30_000);
        }
        if starved_limits.unfold_fuel.is_none() {
            starved_limits = starved_limits.with_unfold_fuel(6_000);
        }
        let starved = Pgg::new()
            .limits(starved_limits)
            .cogen(&prog, "main", &div)
            .and_then(|g| g.specialize_source(&statics));

        match &starved {
            Err(Error::Panicked(m)) => return Err(format!("{label}: panicked: {m}")),
            Err(_) => {
                // Unfold-fuel and memo-cap starvation is *recoverable*: if
                // the program specializes cleanly, the starved run must
                // degrade to a generic residual instead of failing.
                if clean.is_ok() && matches!(fault, Fault::UnfoldFuel(_) | Fault::MemoCap(_)) {
                    return Err(format!(
                        "{label}: fallback should have recovered: {}",
                        starved
                            .as_ref()
                            .err()
                            .map(|e| e.to_string())
                            .unwrap_or_default()
                    ));
                }
            }
            Ok(res) => {
                // Whatever survived specialization must compute what the
                // source program computes.
                let expect = run_source(&prog, "main", &[Datum::Int(a), Datum::Int(b)]);
                let got = run_source(&res.to_cs(), "main", &[Datum::Int(b)]);
                match (&expect, &got) {
                    (Outcome::Timeout, _) | (_, Outcome::Timeout) => {}
                    (e, g) if e == g => {}
                    (e, g) => {
                        return Err(format!(
                            "{label}: residual disagrees: {e:?} vs {g:?}\n{}",
                            res.to_source()
                        ))
                    }
                }
            }
        }

        // Usable afterwards: a clean rerun in the same process behaves like
        // the clean run before the fault.
        let after = Pgg::new()
            .limits(governed)
            .cogen(&prog, "main", &div)
            .and_then(|g| g.specialize_source(&statics));
        if after.is_ok() != clean.is_ok() {
            return Err(format!(
                "{label}: engine state poisoned: clean {:?} vs after {:?}",
                clean.map(|_| ()).map_err(|e| e.to_string()),
                after.map(|_| ()).map_err(|e| e.to_string()),
            ));
        }
        Ok(())
    })
}

#[test]
fn starvation_faults_yield_typed_errors_or_graceful_residuals() {
    for seed in 0..CASES {
        if let Err(e) = pipeline_under_fault(seed) {
            panic!("seed {seed}: {e}");
        }
    }
}

#[test]
fn corrupted_object_files_are_rejected_not_crashing() {
    let pgg = Pgg::new();
    let p = pgg
        .parse("(define (f x) (* x x)) (define (main a b) (+ (f a) (f b)))")
        .unwrap();
    let image = compile(&p, "main").unwrap();
    let bytes = encode_image(&image);
    assert!(decode_image(&bytes).is_ok(), "pristine image must decode");
    for seed in 0..200 {
        let (bad, kind) = corrupt(&bytes, &mut Rng::new(seed));
        if bad == bytes {
            continue; // zero-span over zero bytes: no damage done
        }
        if decode_image(&bad).is_ok() {
            panic!("seed {seed}: {kind:?}-corrupted image decoded successfully");
        }
    }
}

#[test]
fn step_fuel_and_deadline_stop_runaway_programs() {
    with_stack(|| {
        let pgg = Pgg::new();
        let p = pgg
            .parse("(define (main n) (if (= n 0) 'done (main (- n 1))))")
            .unwrap();
        let image = compile(&p, "main").unwrap();
        let big = [Datum::Int(10_000_000)];

        match run_image_with(&image, "main", &big, &Limits::none().with_step_fuel(1_000)) {
            Err(Error::Vm(VmError::FuelExhausted)) => {}
            other => panic!("vm fuel: {other:?}"),
        }
        match run_image_with(
            &image,
            "main",
            &big,
            &Limits::none().with_timeout(Duration::ZERO),
        ) {
            Err(Error::Vm(VmError::Limit(l))) => assert_eq!(l.kind, LimitKind::Deadline),
            other => panic!("vm deadline: {other:?}"),
        }
        match interpret_with(&p, "main", &big, &Limits::none().with_step_fuel(1_000)) {
            Err(Error::Interp(RtError::FuelExhausted)) => {}
            other => panic!("interp fuel: {other:?}"),
        }
        match interpret_with(
            &p,
            "main",
            &big,
            &Limits::none().with_timeout(Duration::ZERO),
        ) {
            Err(Error::Interp(RtError::Limit(l))) => assert_eq!(l.kind, LimitKind::Deadline),
            other => panic!("interp deadline: {other:?}"),
        }

        // The same image still runs once the limits are lifted.
        let out = run_image_with(&image, "main", &[Datum::Int(10)], &Limits::none()).unwrap();
        assert_eq!(out.value, Datum::sym("done"));
    });
}

#[test]
fn pathological_nesting_trips_the_reader_cap_not_the_stack() {
    with_stack(|| {
        // 120k levels of nesting against the default 100k cap: the reader
        // must return a typed over-limit error well before the OS stack is
        // in danger.
        let src = nested_source(120_000);
        let err = Pgg::new().parse(&src).unwrap_err();
        assert!(
            err.to_string().contains("nesting"),
            "expected a nesting-cap error, got: {err}"
        );
    });
}

#[test]
fn strict_failures_leave_the_genext_usable() {
    let pgg = Pgg::new().unfold_fuel(3).fallback(false);
    let p = pgg
        .parse("(define (power x n) (if (= n 0) 1 (* x (power x (- n 1)))))")
        .unwrap();
    let genext = pgg
        .cogen(&p, "power", &Division::new([BT::Dynamic, BT::Static]))
        .unwrap();
    // Expensive static input: strict mode reports the starved resource.
    match genext.specialize_source(&[Datum::Int(50)]) {
        Err(Error::Pe(PeError::UnfoldLimit(_))) => {}
        other => panic!("expected unfold-limit, got {other:?}"),
    }
    // The same generating extension still specializes cheap inputs.
    let res = genext.specialize_source(&[Datum::Int(2)]).unwrap();
    let got = interpret_with(&res.to_cs(), "power", &[Datum::Int(3)], &Limits::none()).unwrap();
    assert_eq!(got.value, Datum::Int(9));
    // With fallback on (the default), the expensive input degrades to a
    // generic residual instead of failing.
    let genext2 = Pgg::new()
        .unfold_fuel(3)
        .cogen(&p, "power", &Division::new([BT::Dynamic, BT::Static]))
        .unwrap();
    let (res2, stats) = genext2
        .specialize_source_with_stats(&[Datum::Int(50)])
        .unwrap();
    assert!(stats.degraded(), "{stats:?}");
    let got2 = interpret_with(&res2.to_cs(), "power", &[Datum::Int(2)], &Limits::none()).unwrap();
    assert_eq!(got2.value, Datum::Int(1i64 << 50));
}

/// The acceptance scenario: the MIXWELL first Futamura projection under
/// unfold-fuel and memo-cap starvation. Specialization must *complete* via
/// the generic fallback, report the degradation, and the residual — both as
/// source and as fused object code — must compute exactly what the
/// unspecialized interpreter computes.
#[test]
fn mixwell_specialization_degrades_gracefully_under_starvation() {
    with_stack(|| {
        let policies = langs::mixwell_policies();
        let base = policies
            .iter()
            .fold(Pgg::new(), |p, (name, pol)| p.policy(name, *pol));
        let p = base.parse(langs::MIXWELL_INTERP).unwrap();
        let args = Datum::list([Datum::Int(20)]);
        let expect =
            two4one::interpret(&p, "mixwell-run", &[langs::mixwell_program(), args.clone()])
                .unwrap()
                .value;

        for (what, limits) in [
            ("unfold fuel", Limits::default().with_unfold_fuel(40)),
            ("memo cap", Limits::default().with_memo_cap(2)),
        ] {
            let pgg = policies
                .iter()
                .fold(Pgg::new(), |p, (name, pol)| p.policy(name, *pol))
                .limits(limits.clone());
            let genext = pgg
                .cogen(&p, "mixwell-run", &Division::new([BT::Static, BT::Dynamic]))
                .unwrap();

            // Strict mode under the same starvation fails with a typed
            // limit error…
            let strict = pgg
                .clone()
                .fallback(false)
                .cogen(&p, "mixwell-run", &Division::new([BT::Static, BT::Dynamic]))
                .unwrap()
                .specialize_source(&[langs::mixwell_program()]);
            match strict {
                Err(Error::Pe(e)) => assert!(e.is_recoverable(), "{what}: {e}"),
                other => panic!("{what}: strict mode should fail: {other:?}"),
            }

            // …while the default degrades gracefully and stays correct.
            let (residual, stats) = genext
                .specialize_source_with_stats(&[langs::mixwell_program()])
                .unwrap();
            assert!(stats.degraded(), "{what}: {stats:?}");
            let got = two4one::interpret(
                &residual.to_cs(),
                "mixwell-run",
                std::slice::from_ref(&args),
            )
            .unwrap()
            .value;
            assert_eq!(got, expect, "{what}: residual source");

            let (image, ostats) = genext
                .specialize_object_with_stats(&[langs::mixwell_program()])
                .unwrap();
            assert!(ostats.degraded(), "{what}: {ostats:?}");
            let got_obj = two4one::run_image(&image, "mixwell-run", std::slice::from_ref(&args))
                .unwrap()
                .value;
            assert_eq!(got_obj, expect, "{what}: fused object code");
        }
    });
}
