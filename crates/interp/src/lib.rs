//! A direct (tree-walking) interpreter for Core Scheme.
//!
//! This is the semantic oracle of the workspace: the byte-code VM, the
//! compiler, and the specializer are all tested against it. It is also the
//! "interpreted" baseline when measuring the benefit of compilation and
//! run-time code generation.
//!
//! The interpreter is properly tail-recursive (loops written as tail calls
//! run in constant Rust stack) and optionally metered with fuel so tests
//! can bound runaway programs.
//!
//! # Example
//!
//! ```
//! use two4one_frontend::frontend;
//! use two4one_interp::run_program;
//! use two4one_syntax::Datum;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let p = frontend("(define (sq x) (* x x))")?;
//! let (result, output) = run_program(&p, "sq", &[Datum::Int(7)])?;
//! assert_eq!(result.to_datum(), Some(Datum::Int(49)));
//! assert!(output.is_empty());
//! # Ok(())
//! # }
//! ```

pub mod env;

use env::Env;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use two4one_syntax::cs::{Def, Expr, Lambda, Program};
use two4one_syntax::datum::Datum;
use two4one_syntax::limits::{Deadline, LimitExceeded, Limits};
use two4one_syntax::symbol::Symbol;
use two4one_syntax::value::{apply_prim, PrimError, ProcRepr};

/// Procedure representation of the tree-walking interpreter.
#[derive(Clone)]
pub enum Proc {
    /// A closure: lambda plus captured environment.
    Closure(Arc<Closure>),
    /// A top-level function used as a value.
    Global(Symbol),
}

/// A closure value.
pub struct Closure {
    /// The code.
    pub lambda: Arc<Lambda>,
    /// The captured environment.
    pub env: Env<Value>,
}

impl ProcRepr for Proc {
    fn ptr_eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Proc::Closure(a), Proc::Closure(b)) => Arc::ptr_eq(a, b),
            (Proc::Global(a), Proc::Global(b)) => a == b,
            _ => false,
        }
    }

    fn describe(&self) -> String {
        match self {
            Proc::Closure(c) => c.lambda.name.to_string(),
            Proc::Global(g) => g.to_string(),
        }
    }
}

/// Interpreter values.
pub type Value = two4one_syntax::value::Value<Proc>;

/// Runtime errors.
#[derive(Debug, Clone, PartialEq)]
pub enum RtError {
    /// Reference to an unbound variable (indicates a front-end bug).
    Unbound(Symbol),
    /// Application of a non-procedure.
    NotAProcedure(String),
    /// Wrong number of arguments to a closure or top-level function.
    BadArity {
        /// The procedure's name.
        name: Symbol,
        /// Expected parameter count.
        expected: usize,
        /// Actual argument count.
        got: usize,
    },
    /// No such top-level function.
    NoSuchGlobal(Symbol),
    /// A primitive failed.
    Prim(PrimError),
    /// The fuel limit was reached.
    FuelExhausted,
    /// A resource limit (wall-clock deadline) was hit.
    Limit(LimitExceeded),
}

impl fmt::Display for RtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtError::Unbound(x) => write!(f, "unbound variable `{x}`"),
            RtError::NotAProcedure(v) => write!(f, "attempt to apply non-procedure {v}"),
            RtError::BadArity {
                name,
                expected,
                got,
            } => write!(f, "`{name}` expects {expected} argument(s), got {got}"),
            RtError::NoSuchGlobal(g) => write!(f, "no top-level definition `{g}`"),
            RtError::Prim(e) => write!(f, "{e}"),
            RtError::FuelExhausted => write!(f, "fuel exhausted"),
            RtError::Limit(l) => write!(f, "{l}"),
        }
    }
}

impl std::error::Error for RtError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RtError::Prim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PrimError> for RtError {
    fn from(e: PrimError) -> Self {
        RtError::Prim(e)
    }
}

/// The interpreter. Holds the program's global table, captured output, and
/// an optional fuel meter.
pub struct Interp {
    globals: HashMap<Symbol, Arc<Def>>,
    /// Output produced by `display`/`write`/`newline`.
    pub output: String,
    fuel: Option<u64>,
    deadline: Deadline,
    ticks: u64,
}

enum Step {
    Done(Value),
    Call(Proc, Vec<Value>),
}

impl Interp {
    /// Creates an interpreter for the given program.
    pub fn new(prog: &Program) -> Self {
        Interp {
            globals: prog
                .defs
                .iter()
                .map(|d| (d.name, Arc::new(d.clone())))
                .collect(),
            output: String::new(),
            fuel: None,
            deadline: Deadline::unlimited(),
            ticks: 0,
        }
    }

    /// Limits execution to roughly `fuel` evaluation steps.
    pub fn with_fuel(mut self, fuel: u64) -> Self {
        self.fuel = Some(fuel);
        self
    }

    /// Applies the step fuel and wall-clock budget of `limits`. The
    /// deadline starts now; the clock is consulted every 4096 steps.
    pub fn with_limits(mut self, limits: &Limits) -> Self {
        if let Some(f) = limits.step_fuel {
            self.fuel = Some(f);
        }
        self.deadline = limits.deadline();
        self
    }

    fn tick(&mut self) -> Result<(), RtError> {
        if let Some(f) = &mut self.fuel {
            if *f == 0 {
                return Err(RtError::FuelExhausted);
            }
            *f -= 1;
        }
        self.deadline
            .check_every(&mut self.ticks, 4096)
            .map_err(RtError::Limit)
    }

    /// Calls the top-level function `entry` with the given arguments.
    ///
    /// # Errors
    ///
    /// Returns an [`RtError`] on any runtime fault.
    pub fn call_global(&mut self, entry: &Symbol, args: Vec<Value>) -> Result<Value, RtError> {
        // Catch an already-expired deadline before doing any work (the
        // in-loop check is amortized and may lag by a few thousand steps).
        self.deadline.check().map_err(RtError::Limit)?;
        self.apply(Proc::Global(*entry), args)
    }

    /// Evaluates an expression in the given environment.
    ///
    /// # Errors
    ///
    /// Returns an [`RtError`] on any runtime fault.
    pub fn eval(&mut self, e: &Expr, env: &Env<Value>) -> Result<Value, RtError> {
        match self.eval_step(e, env)? {
            Step::Done(v) => Ok(v),
            Step::Call(p, args) => self.apply(p, args),
        }
    }

    /// Evaluates `e` as if in tail position, returning either a value or a
    /// pending call for the trampoline in [`Interp::apply`].
    fn eval_step(&mut self, e: &Expr, env: &Env<Value>) -> Result<Step, RtError> {
        self.tick()?;
        match e {
            Expr::Const(d) => Ok(Step::Done(Value::from(d))),
            Expr::Var(x) => match env.lookup(x) {
                Some(v) => Ok(Step::Done(v)),
                None => {
                    if self.globals.contains_key(x) {
                        Ok(Step::Done(Value::Proc(Proc::Global(*x))))
                    } else {
                        Err(RtError::Unbound(*x))
                    }
                }
            },
            Expr::Lambda(l) => Ok(Step::Done(Value::Proc(Proc::Closure(Arc::new(Closure {
                lambda: l.clone(),
                env: env.clone(),
            }))))),
            Expr::If(t, c, a) => {
                let tv = self.eval(t, env)?;
                if tv.is_truthy() {
                    self.eval_step(c, env)
                } else {
                    self.eval_step(a, env)
                }
            }
            Expr::Let(x, rhs, body) => {
                let v = self.eval(rhs, env)?;
                let inner = env.extend(*x, v);
                self.eval_step(body, &inner)
            }
            Expr::App(f, args) => {
                let fv = self.eval(f, env)?;
                let mut argv = Vec::with_capacity(args.len());
                for a in args {
                    argv.push(self.eval(a, env)?);
                }
                match fv {
                    Value::Proc(p) => Ok(Step::Call(p, argv)),
                    other => Err(RtError::NotAProcedure(two4one_syntax::value::write_string(
                        &other,
                    ))),
                }
            }
            Expr::PrimApp(p, args) => {
                let mut argv = Vec::with_capacity(args.len());
                for a in args {
                    argv.push(self.eval(a, env)?);
                }
                Ok(Step::Done(apply_prim(*p, &argv, &mut self.output)?))
            }
        }
    }

    /// The trampoline: applies procedures without growing the Rust stack
    /// for tail calls.
    fn apply(&mut self, mut p: Proc, mut args: Vec<Value>) -> Result<Value, RtError> {
        loop {
            let (lam, env) = match &p {
                Proc::Closure(c) => (c.lambda.clone(), c.env.clone()),
                Proc::Global(g) => {
                    let def = self
                        .globals
                        .get(g)
                        .cloned()
                        .ok_or(RtError::NoSuchGlobal(*g))?;
                    (
                        Arc::new(Lambda {
                            name: def.name,
                            params: def.params.clone(),
                            body: def.body.clone(),
                        }),
                        Env::empty(),
                    )
                }
            };
            if lam.params.len() != args.len() {
                return Err(RtError::BadArity {
                    name: lam.name,
                    expected: lam.params.len(),
                    got: args.len(),
                });
            }
            let mut inner = env;
            for (x, v) in lam.params.iter().zip(args) {
                inner = inner.extend(*x, v);
            }
            match self.eval_step(&lam.body, &inner)? {
                Step::Done(v) => return Ok(v),
                Step::Call(np, nargs) => {
                    p = np;
                    args = nargs;
                }
            }
        }
    }
}

/// Convenience wrapper: runs `entry` on first-order data arguments and
/// returns the result together with collected output.
///
/// # Errors
///
/// Returns an [`RtError`] on any runtime fault.
pub fn run_program(
    prog: &Program,
    entry: &str,
    args: &[Datum],
) -> Result<(Value, String), RtError> {
    run_program_with(prog, entry, args, &Limits::none())
}

/// Like [`run_program`], but executing under `limits` (step fuel and
/// wall-clock deadline).
///
/// # Errors
///
/// Returns an [`RtError`] on runtime faults or limit overruns.
pub fn run_program_with(
    prog: &Program,
    entry: &str,
    args: &[Datum],
    limits: &Limits,
) -> Result<(Value, String), RtError> {
    let mut interp = Interp::new(prog).with_limits(limits);
    let argv = args.iter().map(Value::from).collect();
    let v = interp.call_global(&Symbol::new(entry), argv)?;
    Ok((v, interp.output))
}

#[cfg(test)]
mod tests {
    use super::*;
    use two4one_frontend::frontend;

    fn run(src: &str, entry: &str, args: &[Datum]) -> Value {
        let p = frontend(src).unwrap();
        run_program(&p, entry, args).unwrap().0
    }

    fn run_d(src: &str, entry: &str, args: &[Datum]) -> Datum {
        run(src, entry, args).to_datum().unwrap()
    }

    #[test]
    fn arithmetic_and_recursion() {
        let fact = "(define (fact n) (if (= n 0) 1 (* n (fact (- n 1)))))";
        assert_eq!(run_d(fact, "fact", &[Datum::Int(10)]), Datum::Int(3628800));
    }

    #[test]
    fn tail_recursion_is_constant_stack() {
        let src = "(define (loop i acc) (if (= i 0) acc (loop (- i 1) (+ acc 1))))";
        assert_eq!(
            run_d(src, "loop", &[Datum::Int(300_000), Datum::Int(0)]),
            Datum::Int(300_000)
        );
    }

    #[test]
    fn closures_capture_environment() {
        let src = "(define (adder n) (lambda (x) (+ x n)))
                   (define (main a b) ((adder a) b))";
        assert_eq!(
            run_d(src, "main", &[Datum::Int(3), Datum::Int(4)]),
            Datum::Int(7)
        );
    }

    #[test]
    fn globals_are_first_class() {
        let src = "(define (twice f x) (f (f x)))
                   (define (succ x) (+ x 1))
                   (define (main x) (twice succ x))";
        assert_eq!(run_d(src, "main", &[Datum::Int(5)]), Datum::Int(7));
    }

    #[test]
    fn named_let_loops() {
        let src = "(define (sum-to n)
                     (let loop ((i 0) (acc 0))
                       (if (> i n) acc (loop (+ i 1) (+ acc i)))))";
        assert_eq!(run_d(src, "sum-to", &[Datum::Int(100)]), Datum::Int(5050));
    }

    #[test]
    fn mutation_through_boxes() {
        let src = "(define (counter)
                     (let ((n 0))
                       (lambda () (set! n (+ n 1)) n)))
                   (define (main)
                     (let ((c (counter)))
                       (c) (c) (c)))";
        assert_eq!(run_d(src, "main", &[]), Datum::Int(3));
    }

    #[test]
    fn output_is_captured() {
        let p = frontend("(define (main) (display \"hi \") (write \"x\") (newline) 0)").unwrap();
        let (_, out) = run_program(&p, "main", &[]).unwrap();
        assert_eq!(out, "hi \"x\"\n");
    }

    #[test]
    fn runtime_errors_reported() {
        let p = frontend("(define (main) (car 5))").unwrap();
        let e = run_program(&p, "main", &[]).unwrap_err();
        assert!(matches!(e, RtError::Prim(_)));

        let p = frontend("(define (main) (1 2))").unwrap();
        let e = run_program(&p, "main", &[]).unwrap_err();
        assert!(matches!(e, RtError::NotAProcedure(_)));

        let p = frontend("(define (f x) x) (define (main) (f 1 2))").unwrap();
        let e = run_program(&p, "main", &[]).unwrap_err();
        assert!(matches!(e, RtError::BadArity { .. }));

        let p = frontend("(define (main) 0)").unwrap();
        let mut i = Interp::new(&p);
        let e = i.call_global(&Symbol::new("nope"), vec![]).unwrap_err();
        assert!(matches!(e, RtError::NoSuchGlobal(_)));
    }

    #[test]
    fn fuel_stops_infinite_loops() {
        let p = frontend("(define (spin) (spin))").unwrap();
        let mut i = Interp::new(&p).with_fuel(10_000);
        let e = i.call_global(&Symbol::new("spin"), vec![]).unwrap_err();
        assert_eq!(e, RtError::FuelExhausted);
    }

    #[test]
    fn error_prim_surfaces_as_user_error() {
        let p = frontend("(define (main) (error \"boom\" 1 2))").unwrap();
        let e = run_program(&p, "main", &[]).unwrap_err();
        assert_eq!(e, RtError::Prim(PrimError::User("boom 1 2".into())));
    }

    #[test]
    fn eq_on_procedures() {
        let src = "(define (f x) x)
                   (define (main) (eq? f f))";
        assert_eq!(run_d(src, "main", &[]), Datum::Bool(true));
    }

    #[test]
    fn cond_case_quasiquote_run() {
        let src = r#"
            (define (classify x)
              (cond ((number? x) `(num ,x))
                    ((symbol? x) (case x ((a b) 'letter) (else 'other)))
                    (else 'unknown)))
        "#;
        assert_eq!(
            run_d(src, "classify", &[Datum::Int(5)]),
            two4one_syntax::reader::read_one("(num 5)").unwrap()
        );
        assert_eq!(
            run_d(src, "classify", &[Datum::sym("a")]),
            Datum::sym("letter")
        );
        assert_eq!(
            run_d(src, "classify", &[Datum::sym("z")]),
            Datum::sym("other")
        );
        assert_eq!(
            run_d(src, "classify", &[Datum::Bool(true)]),
            Datum::sym("unknown")
        );
    }

    #[test]
    fn deep_nontail_recursion_on_big_stack() {
        two4one_syntax::stack::with_stack(|| {
            let src = "(define (count xs) (if (null? xs) 0 (+ 1 (count (cdr xs)))))";
            let xs = Datum::list((0..50_000).map(Datum::Int).collect::<Vec<_>>());
            assert_eq!(run_d(src, "count", &[xs]), Datum::Int(50_000));
        });
    }

    #[test]
    fn nested_quasiquote_has_correct_depth_semantics() {
        // ``(1 ,(+ 1 2) ,,(+ 1 2)) — the inner double unquote evaluates at
        // depth 0, the single one stays quoted one level down.
        let src = "(define (main) `(a ,(+ 1 2) `(b ,(+ 1 2))))";
        let d = run_d(src, "main", &[]);
        assert_eq!(
            d,
            two4one_syntax::reader::read_one("(a 3 (quasiquote (b (unquote (+ 1 2)))))").unwrap()
        );
    }

    #[test]
    fn let_star_and_shadowing() {
        let src = "(define (main x)
                     (let* ((x (+ x 1)) (y (* x 2)) (x (+ x y)))
                       (list x y)))";
        assert_eq!(
            run_d(src, "main", &[Datum::Int(10)]),
            two4one_syntax::reader::read_one("(33 22)").unwrap()
        );
    }

    #[test]
    fn case_with_else_and_lists() {
        let src = "(define (main k)
                     (case k
                       ((a e i o u) 'vowel)
                       ((w y) 'semivowel)
                       (else 'consonant)))";
        assert_eq!(
            run_d(src, "main", &[Datum::sym("y")]),
            Datum::sym("semivowel")
        );
        assert_eq!(
            run_d(src, "main", &[Datum::sym("k")]),
            Datum::sym("consonant")
        );
    }

    #[test]
    fn variadic_prims_in_programs() {
        let src = "(define (main a b c) (list (+ a b c 1) (max a b c) (min a b c) (< a b c)))";
        assert_eq!(
            run_d(src, "main", &[Datum::Int(1), Datum::Int(2), Datum::Int(3)]),
            two4one_syntax::reader::read_one("(7 3 1 #t)").unwrap()
        );
    }

    #[test]
    fn lifted_local_functions_work_at_runtime() {
        let src = "(define (f k xs)
                     (let loop ((l xs) (acc 0))
                       (if (null? l) (* k acc) (loop (cdr l) (+ acc (car l))))))";
        let xs = Datum::list((1..=4).map(Datum::Int).collect::<Vec<_>>());
        assert_eq!(run_d(src, "f", &[Datum::Int(2), xs]), Datum::Int(20));
    }
}
