//! Symbols and fresh-name generation.

use std::borrow::Borrow;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// An identifier in source programs, abstract syntax, and generated code.
///
/// Symbols are cheap to clone (an `Arc<str>` internally) and compare by
/// string content. They are `Send + Sync` so syntax trees can be moved onto
/// the large-stack worker threads used by the specializer.
///
/// # Example
///
/// ```
/// use two4one_syntax::Symbol;
/// let a = Symbol::new("eval");
/// let b = Symbol::new("eval");
/// assert_eq!(a, b);
/// assert_eq!(a.as_str(), "eval");
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(Arc<str>);

impl Symbol {
    /// Creates a symbol with the given name.
    pub fn new(name: &str) -> Self {
        Symbol(Arc::from(name))
    }

    /// The symbol's name.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "'{}", self.0)
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Self {
        Symbol::new(s)
    }
}

impl From<String> for Symbol {
    fn from(s: String) -> Self {
        Symbol(Arc::from(s.as_str()))
    }
}

impl Borrow<str> for Symbol {
    fn borrow(&self) -> &str {
        self.as_str()
    }
}

impl AsRef<str> for Symbol {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

/// A deterministic fresh-name generator.
///
/// Generated names contain a `%`, which the [reader](crate::reader) never
/// produces inside identifiers read from source text that follows the
/// conventions of this workspace, so fresh names cannot capture user names.
///
/// The counter is atomic, so a single generator can be shared by reference
/// across threads and still never hand out the same name twice. Draws from
/// a single thread remain deterministic (`x%0`, `x%1`, ...).
///
/// # Example
///
/// ```
/// use two4one_syntax::Gensym;
/// let g = Gensym::new();
/// let a = g.fresh("x");
/// let b = g.fresh("x");
/// assert_ne!(a, b);
/// assert!(a.as_str().starts_with("x%"));
/// ```
#[derive(Debug, Default)]
pub struct Gensym {
    counter: AtomicU64,
}

impl Clone for Gensym {
    /// Snapshots the current counter; the clone continues independently.
    fn clone(&self) -> Self {
        Gensym {
            counter: AtomicU64::new(self.counter.load(Ordering::Relaxed)),
        }
    }
}

impl Gensym {
    /// Creates a generator starting at zero.
    pub fn new() -> Self {
        Gensym {
            counter: AtomicU64::new(0),
        }
    }

    /// Returns a fresh symbol whose name starts with `base`.
    pub fn fresh(&self, base: &str) -> Symbol {
        // Strip an existing `%NNN` suffix so repeated renaming does not grow
        // names without bound.
        let stem = match base.find('%') {
            Some(i) => &base[..i],
            None => base,
        };
        let n = self.counter.fetch_add(1, Ordering::Relaxed);
        Symbol::new(&format!("{stem}%{n}"))
    }

    /// The number of names generated so far.
    pub fn count(&self) -> u64 {
        self.counter.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn symbols_compare_by_content() {
        assert_eq!(Symbol::new("a"), Symbol::from("a"));
        assert_ne!(Symbol::new("a"), Symbol::new("b"));
        assert!(Symbol::new("a") < Symbol::new("b"));
    }

    #[test]
    fn symbol_display_is_bare_name() {
        assert_eq!(Symbol::new("lambda").to_string(), "lambda");
    }

    #[test]
    fn gensym_is_fresh_and_deterministic() {
        let g = Gensym::new();
        let names: HashSet<_> = (0..100).map(|_| g.fresh("tmp")).collect();
        assert_eq!(names.len(), 100);
        let g2 = Gensym::new();
        assert_eq!(g2.fresh("tmp"), Symbol::new("tmp%0"));
        assert_eq!(g2.fresh("tmp"), Symbol::new("tmp%1"));
    }

    #[test]
    fn gensym_strips_previous_suffix() {
        let g = Gensym::new();
        let a = g.fresh("x");
        let b = g.fresh(a.as_str());
        assert_eq!(b.as_str(), "x%1");
    }

    #[test]
    fn gensym_clone_snapshots_counter() {
        let g = Gensym::new();
        g.fresh("a");
        let h = g.clone();
        assert_eq!(h.count(), 1);
        assert_eq!(h.fresh("a"), Symbol::new("a%1"));
    }

    #[test]
    fn gensym_is_unique_across_threads() {
        const THREADS: usize = 8;
        const PER_THREAD: usize = 1000;
        let g = Gensym::new();
        let names: Vec<Symbol> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..THREADS)
                .map(|_| s.spawn(|| (0..PER_THREAD).map(|_| g.fresh("t")).collect::<Vec<_>>()))
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("gensym thread"))
                .collect()
        });
        let unique: HashSet<_> = names.iter().collect();
        assert_eq!(unique.len(), THREADS * PER_THREAD);
        assert_eq!(g.count(), (THREADS * PER_THREAD) as u64);
    }

    #[test]
    fn symbols_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Symbol>();
    }

    #[test]
    fn borrow_str_allows_hashmap_lookup() {
        let mut m = std::collections::HashMap::new();
        m.insert(Symbol::new("k"), 1);
        assert_eq!(m.get("k"), Some(&1));
    }
}
