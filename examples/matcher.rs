//! Specializing a naive matcher to a fixed pattern: the pattern dispatch
//! disappears and the residual program hard-codes the comparisons — the
//! classic "KMP by partial evaluation" demonstration, here with object
//! code generated at run time.
//!
//! ```text
//! cargo run --example matcher
//! ```

use two4one::{run_image, with_stack, Division, Pgg, BT};
use two4one_langs::classics::MATCHER;

fn main() -> Result<(), two4one::Error> {
    with_stack(run)
}

fn run() -> Result<(), two4one::Error> {
    let pgg = Pgg::new();
    let program = pgg.parse(MATCHER)?;
    let genext = pgg.cogen(&program, "match", &Division::new([BT::Static, BT::Dynamic]))?;

    let pattern = two4one::reader::read_one("(a b a c)").expect("pattern");
    println!("pattern: {pattern}\n");

    let residual = genext.specialize_source(std::slice::from_ref(&pattern))?;
    println!("residual matcher:\n{}", residual.to_source());

    // Generate object code at "run time" and match a few texts.
    let image = genext.specialize_object(&[pattern])?;
    for text in ["(x a b a c y)", "(a b a b a c)", "(a b a b)", "()"] {
        let t = two4one::reader::read_one(text).expect("text");
        let out = run_image(&image, "match", &[t])?;
        println!("match {text:24} => {}", out.value);
    }
    Ok(())
}
