//! Staging: compiles an annotated program into the staged-code IR.
//!
//! This is the front half of the generating extension: one pass over the
//! [`AProgram`] that resolves every variable to a lexical `(up, idx)`
//! address or a definition index, flattens the tree into the instruction
//! array of [`GenProgram`], and pre-stages each definition's *generic*
//! (all-dynamic) body so graceful fallback at run time needs no
//! re-staging. The result is consumed by both [`crate::walk`] (the
//! interpretive reference) and [`crate::genrun`] (the compiled gen-ext
//! machine).
//!
//! # Scope resolution
//!
//! Lexical addresses are computed against exactly the frame shapes the
//! engines build at run time, which follow
//! [`Env::extend_many`](two4one_interp::env::Env::extend_many): a call or
//! lambda binds its whole parameter list in **one** frame, an *empty*
//! parameter list binds **no** frame, and a `let` binds a one-slot frame.
//! Duplicate names within a frame resolve to the last occurrence, the
//! shadowing order of the name-keyed environment. Definition bodies are
//! closed (they see only their parameters); unbound names compile to
//! [`GenInstr::Unbound`], which faults only if executed — unreachable
//! annotated code may legally mention unknown names.

use crate::PeError;
use std::collections::HashMap;
use std::sync::Arc;
use two4one_syntax::acs::{AExpr, ALambda, AProgram, CallPolicy, BT};
use two4one_vm::{GenDef, GenInstr, GenLam, GenParam, GenProgram};

/// Stages an annotated program into the gen-ext IR.
///
/// # Errors
///
/// [`PeError::Internal`] if a frame exceeds the IR's 16-bit slot
/// addressing (65 536 bindings in one parameter list — far beyond any
/// real program).
pub fn stage(prog: &AProgram) -> Result<Arc<GenProgram>, PeError> {
    let mut st = Stager {
        code: Vec::new(),
        consts: Vec::new(),
        lams: Vec::new(),
        defs: HashMap::new(),
        scope: Vec::new(),
    };
    // Pass 1: index definition names (first definition wins, mirroring
    // `AProgram::def`) so bodies can resolve forward references.
    for (i, d) in prog.defs.iter().enumerate() {
        st.defs.entry(d.name).or_insert(i as u32);
    }
    let mut defs = Vec::with_capacity(prog.defs.len());
    for d in &prog.defs {
        let params: Vec<GenParam> = d
            .params
            .iter()
            .map(|p| GenParam {
                name: p.name,
                dynamic: p.bt == BT::Dynamic,
            })
            .collect();
        let names: Vec<_> = params.iter().map(|p| p.name).collect();
        st.enter(&names)?;
        let body = st.emit(&d.body)?;
        let generic = st.emit(&generize(&d.body))?;
        st.leave(&names);
        defs.push(GenDef {
            name: d.name,
            params,
            memoize: d.policy == CallPolicy::Memoize,
            body,
            generic,
        });
    }
    Ok(Arc::new(GenProgram::new(st.consts, st.code, st.lams, defs)))
}

struct Stager {
    code: Vec<GenInstr>,
    consts: Vec<two4one_syntax::datum::Datum>,
    lams: Vec<GenLam>,
    defs: HashMap<two4one_syntax::symbol::Symbol, u32>,
    /// Innermost frame last; mirrors the run-time frame stack exactly.
    scope: Vec<Vec<two4one_syntax::symbol::Symbol>>,
}

impl Stager {
    /// Pushes a parameter frame — none when the list is empty, matching
    /// `Env::extend_many` on an empty iterator.
    fn enter(&mut self, names: &[two4one_syntax::symbol::Symbol]) -> Result<(), PeError> {
        if names.len() > usize::from(u16::MAX) {
            return Err(PeError::Internal(format!(
                "parameter list of {} bindings exceeds gen-ext slot addressing",
                names.len()
            )));
        }
        if !names.is_empty() {
            self.scope.push(names.to_vec());
        }
        Ok(())
    }

    fn leave(&mut self, names: &[two4one_syntax::symbol::Symbol]) {
        if !names.is_empty() {
            self.scope.pop();
        }
    }

    /// Resolves `x` to a lexical address: innermost frame first; within a
    /// frame the *last* occurrence wins (shadowing order of the
    /// name-keyed environment).
    fn resolve(&self, x: &two4one_syntax::symbol::Symbol) -> Option<(u16, u16)> {
        for (up, frame) in self.scope.iter().rev().enumerate() {
            if let Some(pos) = frame.iter().rposition(|n| n == x) {
                let up = u16::try_from(up).ok()?;
                let idx = u16::try_from(pos).ok()?;
                return Some((up, idx));
            }
        }
        None
    }

    fn push(&mut self, i: GenInstr) -> u32 {
        let at = self.code.len() as u32;
        self.code.push(i);
        at
    }

    fn const_idx(&mut self, d: &two4one_syntax::datum::Datum) -> u32 {
        let at = self.consts.len() as u32;
        self.consts.push(d.clone());
        at
    }

    fn stage_lam(&mut self, l: &ALambda) -> Result<u32, PeError> {
        let at = self.lams.len() as u32;
        self.lams.push(GenLam {
            name: l.name,
            params: l.params.clone(),
            body: 0, // patched below
        });
        self.enter(&l.params.clone())?;
        let body = self.emit(&l.body)?;
        self.leave(&l.params);
        if let Some(lam) = self.lams.get_mut(at as usize) {
            lam.body = body;
        }
        Ok(at)
    }

    fn emit_args(&mut self, args: &[Arc<AExpr>]) -> Result<Box<[u32]>, PeError> {
        let mut ips = Vec::with_capacity(args.len());
        for a in args {
            ips.push(self.emit(a)?);
        }
        Ok(ips.into_boxed_slice())
    }

    /// Emits `e`, returning its instruction pointer. Composite nodes are
    /// emitted parent-first with child ips patched in, keeping the
    /// "first child at `ip + 1`" convention.
    fn emit(&mut self, e: &AExpr) -> Result<u32, PeError> {
        Ok(match e {
            AExpr::Const(d) => {
                let k = self.const_idx(d);
                self.push(GenInstr::Const(k))
            }
            AExpr::Var(x) => match self.resolve(x) {
                Some((up, idx)) => self.push(GenInstr::Var { name: *x, up, idx }),
                None => match self.defs.get(x) {
                    Some(i) => {
                        let i = *i;
                        self.push(GenInstr::Global(i))
                    }
                    None => self.push(GenInstr::Unbound(*x)),
                },
            },
            AExpr::Lift(inner) => {
                let at = self.push(GenInstr::Lift);
                self.emit(inner)?; // lands at `at + 1`
                at
            }
            AExpr::Lam(l) => {
                let at = self.push(GenInstr::Clo(0));
                let li = self.stage_lam(l)?;
                self.code[at as usize] = GenInstr::Clo(li);
                at
            }
            AExpr::LamD(l) => {
                let at = self.push(GenInstr::LamD(0));
                let li = self.stage_lam(l)?;
                self.code[at as usize] = GenInstr::LamD(li);
                at
            }
            AExpr::If(t, c, a) => {
                let at = self.push(GenInstr::IfS { then_: 0, els: 0 });
                self.emit(t)?; // test at `at + 1`
                let then_ = self.emit(c)?;
                let els = self.emit(a)?;
                self.code[at as usize] = GenInstr::IfS { then_, els };
                at
            }
            AExpr::IfD(t, c, a) => {
                let at = self.push(GenInstr::IfD { then_: 0, els: 0 });
                self.emit(t)?;
                let then_ = self.emit(c)?;
                let els = self.emit(a)?;
                self.code[at as usize] = GenInstr::IfD { then_, els };
                at
            }
            AExpr::Let(x, rhs, body) => {
                let at = self.push(GenInstr::Let { name: *x, body: 0 });
                self.emit(rhs)?; // rhs at `at + 1`
                self.scope.push(vec![*x]);
                let body = self.emit(body);
                self.scope.pop();
                self.code[at as usize] = GenInstr::Let {
                    name: *x,
                    body: body?,
                };
                at
            }
            AExpr::App(f, args) => {
                let at = self.push(GenInstr::App { args: Box::new([]) });
                self.emit(f)?; // operator at `at + 1`
                let args = self.emit_args(args)?;
                self.code[at as usize] = GenInstr::App { args };
                at
            }
            AExpr::AppD(f, args) => {
                let at = self.push(GenInstr::AppD { args: Box::new([]) });
                self.emit(f)?;
                let args = self.emit_args(args)?;
                self.code[at as usize] = GenInstr::AppD { args };
                at
            }
            AExpr::Prim(p, args) => {
                let prim = *p;
                let at = self.push(GenInstr::Prim {
                    prim,
                    args: Box::new([]),
                });
                let args = self.emit_args(args)?;
                self.code[at as usize] = GenInstr::Prim { prim, args };
                at
            }
            AExpr::PrimD(p, args) => {
                let prim = *p;
                let at = self.push(GenInstr::PrimD {
                    prim,
                    args: Box::new([]),
                });
                let args = self.emit_args(args)?;
                self.code[at as usize] = GenInstr::PrimD { prim, args };
                at
            }
        })
    }
}

/// Strips every binding-time annotation down to its dynamic form. The
/// result specializes in one structural pass (no unfolding, no static
/// evaluation) to residual code equivalent to the unspecialized source —
/// the "generically compiled" fallback version of the paper's terminology.
fn generize(e: &AExpr) -> AExpr {
    fn garc(e: &AExpr) -> Arc<AExpr> {
        Arc::new(generize(e))
    }
    match e {
        AExpr::Const(_) | AExpr::Var(_) => e.clone(),
        // Lifting is the identity once everything is dynamic.
        AExpr::Lift(inner) => generize(inner),
        AExpr::Lam(l) | AExpr::LamD(l) => AExpr::LamD(Arc::new(ALambda {
            name: l.name,
            params: l.params.clone(),
            body: generize(&l.body),
        })),
        AExpr::If(t, c, a) | AExpr::IfD(t, c, a) => AExpr::IfD(garc(t), garc(c), garc(a)),
        AExpr::Let(x, r, b) => AExpr::Let(*x, garc(r), garc(b)),
        AExpr::App(f, args) | AExpr::AppD(f, args) => {
            AExpr::AppD(garc(f), args.iter().map(|a| garc(a)).collect())
        }
        AExpr::Prim(p, args) | AExpr::PrimD(p, args) => {
            AExpr::PrimD(*p, args.iter().map(|a| garc(a)).collect())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use two4one_syntax::acs::{ADef, AParam};
    use two4one_syntax::datum::Datum;
    use two4one_syntax::symbol::Symbol;

    fn var(n: &str) -> Arc<AExpr> {
        Arc::new(AExpr::Var(Symbol::new(n)))
    }

    #[test]
    fn resolves_lexical_addresses_and_globals() {
        let f = Symbol::new("f");
        let x = Symbol::new("x");
        let prog = AProgram {
            defs: vec![ADef {
                name: f,
                params: vec![AParam {
                    name: x,
                    bt: BT::Dynamic,
                }],
                body: AExpr::Let(
                    Symbol::new("y"),
                    Arc::new(AExpr::Const(Datum::Int(1))),
                    Arc::new(AExpr::App(var("f"), vec![var("x"), var("y"), var("zz")])),
                ),
                policy: CallPolicy::Unfold,
                result_bt: BT::Dynamic,
            }],
        };
        let gp = stage(&prog).unwrap();
        let def = &gp.defs[0];
        assert!(!def.memoize);
        // Body: Let, whose App has operator Global(f) and args x (one
        // frame out), y (innermost let frame), zz (unbound).
        let GenInstr::Let { body, .. } = &gp.code[def.body as usize] else {
            panic!("expected let")
        };
        let GenInstr::App { args } = &gp.code[*body as usize] else {
            panic!("expected app")
        };
        assert!(matches!(gp.code[*body as usize + 1], GenInstr::Global(0)));
        assert!(
            matches!(
                gp.code[args[0] as usize],
                GenInstr::Var { up: 1, idx: 0, .. }
            ),
            "x resolves one frame out"
        );
        assert!(
            matches!(
                gp.code[args[1] as usize],
                GenInstr::Var { up: 0, idx: 0, .. }
            ),
            "y resolves in the let frame"
        );
        assert!(matches!(gp.code[args[2] as usize], GenInstr::Unbound(_)));
        // The generic body is staged too, and differs from the main body.
        assert!(matches!(
            gp.code[def.generic as usize],
            GenInstr::Let { .. }
        ));
        assert_ne!(def.generic, def.body);
    }

    #[test]
    fn duplicate_params_resolve_to_last_occurrence() {
        let f = Symbol::new("f");
        let x = Symbol::new("x");
        let prog = AProgram {
            defs: vec![ADef {
                name: f,
                params: vec![
                    AParam {
                        name: x,
                        bt: BT::Dynamic,
                    },
                    AParam {
                        name: x,
                        bt: BT::Dynamic,
                    },
                ],
                body: AExpr::Var(x),
                policy: CallPolicy::Unfold,
                result_bt: BT::Dynamic,
            }],
        };
        let gp = stage(&prog).unwrap();
        assert!(matches!(
            gp.code[gp.defs[0].body as usize],
            GenInstr::Var { up: 0, idx: 1, .. }
        ));
    }

    #[test]
    fn empty_param_lists_bind_no_frame() {
        // (define (f) (let ((y 1)) ((lambda () y)))) — the nullary
        // lambda's body sees `y` at up=0 because the lambda pushed no
        // frame, exactly like `extend_many` of nothing at run time.
        let f = Symbol::new("f");
        let y = Symbol::new("y");
        let lam = Arc::new(ALambda {
            name: Symbol::new("l"),
            params: vec![],
            body: AExpr::Var(y),
        });
        let prog = AProgram {
            defs: vec![ADef {
                name: f,
                params: vec![],
                body: AExpr::Let(
                    y,
                    Arc::new(AExpr::Const(Datum::Int(1))),
                    Arc::new(AExpr::App(Arc::new(AExpr::Lam(lam)), vec![])),
                ),
                policy: CallPolicy::Unfold,
                result_bt: BT::Dynamic,
            }],
        };
        let gp = stage(&prog).unwrap();
        let body = gp.lams[0].body;
        assert!(matches!(
            gp.code[body as usize],
            GenInstr::Var { up: 0, idx: 0, .. }
        ));
    }
}
