//! A read-eval-print loop driven by the byte-code pipeline.
//!
//! Sec. 9 of the paper observes that languages "like ML, Scheme, or
//! Smalltalk have a read-eval-print loop that accepts function definitions
//! that are compiled and the code is immediately available for execution.
//! Hence, they are essentially online compilers." This binary is that
//! point on the RTCG spectrum for this system: every definition you type
//! is compiled to VM templates on the spot, and expressions run against
//! the accumulated image.
//!
//! ```text
//! cargo run -p two4one-cli --bin repl
//! ```
//!
//! Commands:
//!
//! * `(define (f x) …)` — add/replace a definition (compiled immediately);
//! * any other form — evaluate it and print the result;
//! * `,defs` — list current definitions;
//! * `,dis f` — disassemble a definition;
//! * `,spec f S D …` — specialize `f` under the given division (then enter
//!   the static arguments on the next line) and install the residual
//!   definitions;
//! * `,genext f S D …` — like `,spec`, but through the *compiled*
//!   generating extension: `f`'s gen-ext is staged to bytecode (the
//!   artifact is reported — defs, ops, wire bytes) and specialization
//!   runs that bytecode on the gen-ext machine. The residual program is
//!   bit-identical to `,spec`'s; only the machinery differs;
//! * `,redefine (define (f …) …)` — replace `f` as a new *generation*:
//!   every residual definition previously derived from `f` by `,spec` is
//!   dropped (specialized code is only valid relative to the exact source
//!   it came from), and `f`'s redefinition epoch is bumped. A plain
//!   `(define …)` of the same name keeps the stale residuals and warns;
//! * `,programs` — list definitions with their redefinition epochs and
//!   what was derived from them;
//! * `,stats` — print the process metrics page (Prometheus text): phase
//!   latency histograms and specializer counters for everything this
//!   session has compiled, run, or specialized;
//! * `,quit` — exit.

use std::io::Write as _;
use two4one::{compile, reader, with_stack, Datum, Division, Machine, Pgg, Symbol, BT};

fn main() {
    with_stack(|| {
        let mut repl = Repl::new();
        loop {
            print!("two4one> ");
            std::io::stdout().flush().ok();
            let Some(line) = read_line() else { break };
            if !repl.handle(&line) {
                break;
            }
        }
    });
}

fn read_line() -> Option<String> {
    let mut line = String::new();
    match std::io::stdin().read_line(&mut line) {
        Ok(0) | Err(_) => None,
        Ok(_) => Some(line),
    }
}

struct Repl {
    /// Definition source text, by name (kept as text so redefinition and
    /// re-analysis stay trivial).
    defs: Vec<(Symbol, String)>,
    /// Derivation backedges: residual definitions installed by `,spec`,
    /// each pointing at the source function it was specialized from.
    /// `,redefine` of that source drops exactly these.
    derived: Vec<(Symbol, Symbol)>,
    /// Redefinition epoch per user-defined function (starts at 1).
    epochs: Vec<(Symbol, u64)>,
    counter: u64,
}

impl Repl {
    fn new() -> Self {
        Repl {
            defs: Vec::new(),
            derived: Vec::new(),
            epochs: Vec::new(),
            counter: 0,
        }
    }

    fn epoch_of(&self, name: &Symbol) -> u64 {
        self.epochs
            .iter()
            .find(|(n, _)| n == name)
            .map_or(1, |(_, e)| *e)
    }

    fn bump_epoch(&mut self, name: Symbol) -> u64 {
        match self.epochs.iter_mut().find(|(n, _)| *n == name) {
            Some((_, e)) => {
                *e += 1;
                *e
            }
            None => {
                self.epochs.push((name, 2));
                2
            }
        }
    }

    fn program_text(&self) -> String {
        self.defs
            .iter()
            .map(|(_, src)| src.as_str())
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Returns `false` to quit.
    fn handle(&mut self, line: &str) -> bool {
        let line = line.trim();
        if line.is_empty() {
            return true;
        }
        if line == ",quit" {
            return false;
        }
        if line == ",stats" {
            print!("{}", two4one::obs::global().snapshot().to_prometheus());
            return true;
        }
        if line == ",defs" {
            for (name, _) in &self.defs {
                println!("  {name}");
            }
            return true;
        }
        if line == ",programs" {
            for (name, _) in &self.defs {
                let from: Vec<String> = self
                    .derived
                    .iter()
                    .filter(|(residual, _)| residual == name)
                    .map(|(_, source)| source.to_string())
                    .collect();
                if from.is_empty() {
                    println!("  {name} (epoch {})", self.epoch_of(name));
                } else {
                    println!("  {name} (derived from {})", from.join(" "));
                }
            }
            return true;
        }
        if let Some(rest) = line.strip_prefix(",redefine ") {
            self.redefine(rest.trim());
            return true;
        }
        if let Some(rest) = line.strip_prefix(",dis ") {
            self.disassemble(rest.trim());
            return true;
        }
        if let Some(rest) = line.strip_prefix(",spec ") {
            self.specialize(rest.trim());
            return true;
        }
        if let Some(rest) = line.strip_prefix(",genext ") {
            self.genext(rest.trim());
            return true;
        }
        match reader::read_one(line) {
            Err(e) => println!("read error: {e}"),
            Ok(d) => {
                if d.as_form("define").is_some() {
                    self.add_define(line, &d);
                } else {
                    self.eval(&d);
                }
            }
        }
        true
    }

    fn define_name(d: &Datum) -> Option<Symbol> {
        let parts = d.as_form("define")?;
        match parts.first()? {
            Datum::Pair(_) => parts[0].car()?.as_sym().cloned(),
            Datum::Sym(s) => Some(*s),
            _ => None,
        }
    }

    fn add_define(&mut self, src: &str, d: &Datum) -> bool {
        let Some(name) = Self::define_name(d) else {
            println!("malformed definition");
            return false;
        };
        let stale: Vec<String> = self
            .derived
            .iter()
            .filter(|(_, source)| *source == name)
            .map(|(residual, _)| residual.to_string())
            .collect();
        self.defs.retain(|(n, _)| n != &name);
        self.defs.push((name, src.to_string()));
        // A hand-typed definition is user-authored, whatever its history.
        self.derived.retain(|(residual, _)| residual != &name);
        // Compile eagerly so errors surface now — the "online compiler".
        match Pgg::new()
            .parse(&self.program_text())
            .and_then(|p| compile(&p, name.as_str()))
        {
            Ok(image) => {
                println!(
                    ";; compiled `{name}` ({} instructions total)",
                    image.code_size()
                );
                if !stale.is_empty() {
                    println!(
                        ";; note: {} residual definition(s) derived from `{name}` \
                         are now stale ({}); use ,redefine to drop them",
                        stale.len(),
                        stale.join(" ")
                    );
                }
                true
            }
            Err(e) => {
                println!("error: {e}");
                self.defs.retain(|(n, _)| n != &name);
                false
            }
        }
    }

    /// `,redefine (define (f …) …)` — a new *generation* of `f`: residual
    /// definitions derived from the old source are invalid by
    /// construction, so they are dropped before the replacement is
    /// installed, and the function's epoch is bumped.
    fn redefine(&mut self, form: &str) {
        let d = match reader::read_one(form) {
            Ok(d) => d,
            Err(e) => {
                println!("read error: {e}");
                return;
            }
        };
        if d.as_form("define").is_none() {
            println!("usage: ,redefine (define (f ...) ...)");
            return;
        }
        let Some(name) = Self::define_name(&d) else {
            println!("malformed definition");
            return;
        };
        if !self.defs.iter().any(|(n, _)| n == &name) {
            println!(";; `{name}` was not yet defined; installing it fresh");
            self.add_define(form, &d);
            return;
        }
        let dropped: Vec<Symbol> = self
            .derived
            .iter()
            .filter(|(_, source)| *source == name)
            .map(|(residual, _)| *residual)
            .collect();
        self.defs.retain(|(n, _)| !dropped.contains(n));
        self.derived
            .retain(|(residual, source)| *source != name && !dropped.contains(residual));
        if self.add_define(form, &d) {
            let epoch = self.bump_epoch(name);
            let names: Vec<String> = dropped.iter().map(Symbol::to_string).collect();
            if names.is_empty() {
                println!(";; redefined `{name}` (epoch {epoch})");
            } else {
                println!(
                    ";; redefined `{name}` (epoch {epoch}, dropped {} derived \
                     residual definition(s): {})",
                    names.len(),
                    names.join(" ")
                );
            }
        }
    }

    fn eval(&mut self, expr: &Datum) {
        self.counter += 1;
        let entry = format!("repl-eval-{}", self.counter);
        let src = format!("{}\n(define ({entry}) {expr})", self.program_text());
        let result = Pgg::new()
            .parse(&src)
            .and_then(|p| compile(&p, &entry))
            .and_then(|image| {
                let mut m = Machine::load(&image);
                m.call_global(&Symbol::new(&entry), vec![])
                    .map(|v| (format!("{v:?}"), m.output))
                    .map_err(two4one::Error::from)
            });
        match result {
            Ok((value, output)) => {
                print!("{output}");
                println!("{value}");
            }
            Err(e) => println!("error: {e}"),
        }
    }

    fn disassemble(&self, name: &str) {
        match Pgg::new()
            .parse(&self.program_text())
            .and_then(|p| compile(&p, name))
        {
            Ok(image) => match image.template(&Symbol::new(name)) {
                Some(t) => println!("{}", t.disassemble()),
                None => println!("no definition `{name}`"),
            },
            Err(e) => println!("error: {e}"),
        }
    }

    /// Parses `<fn> <S|D>…` and prompts for the static arguments — the
    /// shared front half of `,spec` and `,genext`.
    fn read_spec_request(&self, cmd: &str, spec: &str) -> Option<(String, Division, Vec<Datum>)> {
        let mut parts = spec.split_whitespace();
        let Some(name) = parts.next() else {
            println!("usage: {cmd} <fn> <S|D> ...");
            return None;
        };
        let mut division = Vec::new();
        for p in parts {
            match p {
                "S" | "s" => division.push(BT::Static),
                "D" | "d" => division.push(BT::Dynamic),
                other => {
                    println!("bad binding time `{other}` (use S or D)");
                    return None;
                }
            }
        }
        let n_static = division.iter().filter(|b| **b == BT::Static).count();
        println!("enter {n_static} static argument(s) on one line:");
        let line = read_line()?;
        match reader::read_all(&line) {
            Ok(statics) => Some((name.to_string(), Division::new(division), statics)),
            Err(e) => {
                println!("read error: {e}");
                None
            }
        }
    }

    /// Installs the residual definitions (the entry keeps its name), each
    /// recorded as derived from the specialized source so `,redefine` of
    /// that source can drop them.
    fn install_residual(&mut self, source: Symbol, residual: &two4one::AnfProgram) {
        println!(";; residual program:");
        println!("{}", residual.to_source());
        for (i, d) in residual.to_cs().to_data().iter().enumerate() {
            let src = d.to_string();
            if let Some(n) = Self::define_name(d) {
                self.defs.retain(|(existing, _)| existing != &n);
                self.defs.push((n, src));
                self.derived.retain(|(residual, _)| residual != &n);
                if n != source {
                    self.derived.push((n, source));
                }
            } else if i == 0 {
                println!(";; (could not install entry definition)");
            }
        }
        println!(";; installed {} definitions", residual.defs.len());
    }

    fn specialize(&mut self, spec: &str) {
        // ,spec f S D …  — division letters for each parameter.
        let Some((name, division, statics)) = self.read_spec_request(",spec", spec) else {
            return;
        };
        let result = Pgg::new()
            .parse(&self.program_text())
            .and_then(|p| Pgg::new().cogen(&p, &name, &division))
            .and_then(|g| g.specialize_source_optimized(&statics));
        match result {
            Ok(residual) => self.install_residual(Symbol::new(&name), &residual),
            Err(e) => println!("error: {e}"),
        }
    }

    /// `,genext f S D …` — the compiled path of `,spec`: stage `f`'s
    /// generating extension to gen-ext bytecode, report the artifact,
    /// then specialize by running that bytecode on the gen-ext machine.
    fn genext(&mut self, spec: &str) {
        let Some((name, division, statics)) = self.read_spec_request(",genext", spec) else {
            return;
        };
        let compiled = Pgg::new()
            .parse(&self.program_text())
            .and_then(|p| Pgg::new().cogen(&p, &name, &division))
            .and_then(|g| g.compile());
        let compiled = match compiled {
            Ok(c) => c,
            Err(e) => {
                println!("error: {e}");
                return;
            }
        };
        println!(
            ";; genext: compiled ({} defs, {} ops, {} bytes)",
            compiled.staged().defs.len(),
            compiled.staged().code.len(),
            compiled.to_bytes().len()
        );
        match compiled.specialize_source(&statics) {
            Ok(residual) => {
                self.install_residual(Symbol::new(&name), &two4one::anf::optimize(&residual))
            }
            Err(e) => println!("error: {e}"),
        }
    }
}
