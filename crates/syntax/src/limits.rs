//! Resource governance: one [`Limits`] vocabulary for the whole pipeline.
//!
//! The system performs run-time code generation: specialization happens
//! while the system serves requests, so a diverging static loop, an
//! exploding memo table, or an oversized input must surface as a
//! *recoverable error* (or a graceful downgrade), never as a crash or a
//! hang. Every phase — reader, front end, binding-time analysis,
//! specializer, compiler, interpreter, VM — accepts the same [`Limits`]
//! record and reports violations as a typed [`LimitExceeded`] embedded in
//! its own error enum.
//!
//! The knobs:
//!
//! | field | guards | enforced by |
//! |---|---|---|
//! | `timeout` | wall-clock | BTA, specializer, interpreter, VM |
//! | `step_fuel` | executed instructions / eval steps | interpreter, VM |
//! | `unfold_fuel` | call unfoldings | specializer |
//! | `max_depth` | specializer recursion depth | specializer |
//! | `memo_cap` | memo-table entries | specializer |
//! | `code_cap` | emitted residual code size | specializer, compiler |
//! | `input_node_cap` | datums read | reader |
//! | `input_depth_cap` | datum nesting depth | reader |
//!
//! `None` means "unlimited". [`Limits::default`] picks generous but finite
//! production defaults; [`Limits::none`] switches everything off (the
//! pre-governance behaviour).

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Which limit was exceeded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LimitKind {
    /// Wall-clock deadline (`timeout`).
    Deadline,
    /// Caller-side cancellation (a [`CancelToken`] fired: an explicit
    /// cancel or a per-request deadline). Unlike [`LimitKind::Deadline`]
    /// this is *not* recoverable: the caller no longer wants the result,
    /// so degrading to a fallback image would be wasted work.
    Cancelled,
    /// Instruction/step fuel (`step_fuel`).
    StepFuel,
    /// Specializer unfold fuel (`unfold_fuel`).
    UnfoldFuel,
    /// Specializer recursion depth (`max_depth`).
    Depth,
    /// Memoization-table entries (`memo_cap`).
    MemoEntries,
    /// Emitted residual code size (`code_cap`).
    CodeSize,
    /// Number of datums read (`input_node_cap`).
    InputNodes,
    /// Datum nesting depth (`input_depth_cap`).
    InputDepth,
}

impl LimitKind {
    /// Every limit kind, in declaration order. Lets observability layers
    /// pre-register one labeled counter per kind so "fallbacks by kind"
    /// metric families appear (zero-valued) before any limit ever fires.
    pub const ALL: [LimitKind; 9] = [
        LimitKind::Deadline,
        LimitKind::Cancelled,
        LimitKind::StepFuel,
        LimitKind::UnfoldFuel,
        LimitKind::Depth,
        LimitKind::MemoEntries,
        LimitKind::CodeSize,
        LimitKind::InputNodes,
        LimitKind::InputDepth,
    ];

    /// A stable kebab-case identifier, suitable as a metric label value.
    pub fn label(self) -> &'static str {
        match self {
            LimitKind::Deadline => "deadline",
            LimitKind::Cancelled => "cancelled",
            LimitKind::StepFuel => "step-fuel",
            LimitKind::UnfoldFuel => "unfold-fuel",
            LimitKind::Depth => "depth",
            LimitKind::MemoEntries => "memo-entries",
            LimitKind::CodeSize => "code-size",
            LimitKind::InputNodes => "input-nodes",
            LimitKind::InputDepth => "input-depth",
        }
    }

    /// Human-readable name of the limit.
    pub fn describe(self) -> &'static str {
        match self {
            LimitKind::Deadline => "wall-clock deadline",
            LimitKind::Cancelled => "request cancelled",
            LimitKind::StepFuel => "step fuel",
            LimitKind::UnfoldFuel => "unfold fuel",
            LimitKind::Depth => "recursion depth",
            LimitKind::MemoEntries => "memo-table entry cap",
            LimitKind::CodeSize => "emitted-code-size cap",
            LimitKind::InputNodes => "input size cap",
            LimitKind::InputDepth => "input nesting cap",
        }
    }
}

impl fmt::Display for LimitKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.describe())
    }
}

/// A typed, recoverable "resource limit hit" fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LimitExceeded {
    /// Which limit fired.
    pub kind: LimitKind,
    /// The configured bound, in the limit's own unit (steps, entries,
    /// bytes, milliseconds, …); `0` when the unit does not apply.
    pub limit: u64,
}

impl LimitExceeded {
    /// Creates a fault record.
    pub fn new(kind: LimitKind, limit: u64) -> Self {
        LimitExceeded { kind, limit }
    }
}

impl fmt::Display for LimitExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            // Cancellation is not a budget that ran out; `limit` carries
            // the per-request deadline in ms when one was armed.
            LimitKind::Cancelled if self.limit > 0 => {
                write!(f, "request cancelled (deadline {} ms)", self.limit)
            }
            LimitKind::Cancelled => f.write_str("request cancelled"),
            _ => write!(f, "{} exceeded (limit {})", self.kind, self.limit),
        }
    }
}

impl std::error::Error for LimitExceeded {}

/// Resource limits carried through the whole pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Limits {
    /// Wall-clock budget for one operation (analysis, specialization, or a
    /// program run). Checked at call boundaries and periodically in the
    /// engines' hot loops.
    pub timeout: Option<Duration>,
    /// Execution fuel for the interpreter and VM (evaluation steps /
    /// executed instructions).
    pub step_fuel: Option<u64>,
    /// Specializer unfold fuel (bounds static recursion).
    pub unfold_fuel: Option<u64>,
    /// Specializer recursion depth (bounds Rust stack usage of the CPS
    /// engine; a hard limit — violations are never recoverable).
    pub max_depth: Option<usize>,
    /// Maximum distinct specialization points in the memo table.
    pub memo_cap: Option<usize>,
    /// Maximum emitted residual code size, in backend code units
    /// (instructions for the object backend, constructor operations for
    /// the source backend).
    pub code_cap: Option<usize>,
    /// Maximum number of datum nodes the reader will construct.
    pub input_node_cap: Option<usize>,
    /// Maximum datum nesting depth the reader will accept.
    pub input_depth_cap: Option<usize>,
}

impl Default for Limits {
    /// Generous but finite production defaults: every knob that guards
    /// against *unbounded* behaviour is on, wall-clock and step fuel (which
    /// legitimately vary by workload) are off.
    fn default() -> Self {
        Limits {
            timeout: None,
            step_fuel: None,
            unfold_fuel: Some(2_000_000),
            max_depth: Some(400_000),
            memo_cap: Some(1_000_000),
            code_cap: Some(50_000_000),
            input_node_cap: Some(10_000_000),
            input_depth_cap: Some(100_000),
        }
    }
}

impl Limits {
    /// The default (governed) limits.
    pub fn new() -> Self {
        Limits::default()
    }

    /// No limits at all (the pre-governance behaviour). Useful for trusted
    /// batch workloads; dangerous for anything serving traffic.
    pub fn none() -> Self {
        Limits {
            timeout: None,
            step_fuel: None,
            unfold_fuel: None,
            max_depth: None,
            memo_cap: None,
            code_cap: None,
            input_node_cap: None,
            input_depth_cap: None,
        }
    }

    /// Sets the wall-clock budget.
    pub fn with_timeout(mut self, d: Duration) -> Self {
        self.timeout = Some(d);
        self
    }

    /// Sets the interpreter/VM step fuel.
    pub fn with_step_fuel(mut self, fuel: u64) -> Self {
        self.step_fuel = Some(fuel);
        self
    }

    /// Sets the specializer unfold fuel.
    pub fn with_unfold_fuel(mut self, fuel: u64) -> Self {
        self.unfold_fuel = Some(fuel);
        self
    }

    /// Sets the specializer recursion-depth limit.
    pub fn with_max_depth(mut self, depth: usize) -> Self {
        self.max_depth = Some(depth);
        self
    }

    /// Sets the memo-table entry cap.
    pub fn with_memo_cap(mut self, entries: usize) -> Self {
        self.memo_cap = Some(entries);
        self
    }

    /// Sets the emitted-code-size cap.
    pub fn with_code_cap(mut self, units: usize) -> Self {
        self.code_cap = Some(units);
        self
    }

    /// Sets the reader node cap.
    pub fn with_input_node_cap(mut self, nodes: usize) -> Self {
        self.input_node_cap = Some(nodes);
        self
    }

    /// Sets the reader nesting cap.
    pub fn with_input_depth_cap(mut self, depth: usize) -> Self {
        self.input_depth_cap = Some(depth);
        self
    }

    /// Starts the wall-clock for one operation.
    pub fn deadline(&self) -> Deadline {
        Deadline::start(self.timeout)
    }
}

/// A shareable cancellation token: the caller-side half of cooperative
/// cancellation. A token can be fired explicitly ([`CancelToken::cancel`])
/// or armed with a per-request deadline ([`CancelToken::expire_at`]); the
/// engine observes it through the [`Deadline`] it is attached to and
/// aborts with [`LimitKind::Cancelled`] — a *non-recoverable* fault, so a
/// cancelled specialization stops instead of degrading to fallback code.
///
/// Cloning is cheap (an `Arc`); all clones observe the same state.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Arc<CancelInner>,
}

#[derive(Debug, Default)]
struct CancelInner {
    cancelled: AtomicBool,
    /// Per-request expiry instant; set at most once, when the serving
    /// layer arms the request deadline.
    expires: OnceLock<Instant>,
    /// The armed deadline in milliseconds, for fault reporting.
    deadline_ms: OnceLock<u64>,
    /// Optional parent scope: a child token also observes every ancestor,
    /// so firing a connection-level token cancels the request-level token
    /// derived from it, while the child's own expiry stays private.
    parent: Option<Arc<CancelInner>>,
}

impl CancelToken {
    /// A fresh, unfired token with no expiry.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Fires the token: every holder observes cancellation from now on.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// Derives a child token scoped under this one. The child observes its
    /// own firing *and* every ancestor's, but cancelling or arming an
    /// expiry on the child never affects the parent. This is the shape a
    /// network front end needs: one connection-level token (fired when the
    /// peer disconnects) with a fresh per-request child carrying each
    /// request's own deadline — [`CancelToken::expire_at`] is first-call-
    /// wins, so a long-lived token could not be re-armed per request.
    pub fn child(&self) -> CancelToken {
        CancelToken {
            inner: Arc::new(CancelInner {
                cancelled: AtomicBool::new(false),
                expires: OnceLock::new(),
                deadline_ms: OnceLock::new(),
                parent: Some(Arc::clone(&self.inner)),
            }),
        }
    }

    /// Arms a per-request expiry instant. The first call wins; later
    /// calls are ignored (a token serves exactly one request).
    pub fn expire_at(&self, at: Instant, timeout: Duration) {
        let _ = self.inner.expires.set(at);
        let _ = self.inner.deadline_ms.set(timeout.as_millis() as u64);
    }

    /// Convenience: arm an expiry `timeout` from now.
    pub fn expire_after(&self, timeout: Duration) {
        self.expire_at(Instant::now() + timeout, timeout);
    }

    /// Was the token fired explicitly (not via expiry)? A child token
    /// reports cancellation when any ancestor fired.
    pub fn is_cancelled(&self) -> bool {
        let mut scope: &CancelInner = &self.inner;
        loop {
            if scope.cancelled.load(Ordering::Acquire) {
                return true;
            }
            match &scope.parent {
                Some(p) => scope = p,
                None => return false,
            }
        }
    }

    /// Has the armed per-request deadline passed (on this token or any
    /// ancestor)?
    pub fn deadline_expired(&self) -> bool {
        let now = Instant::now();
        let mut scope: &CancelInner = &self.inner;
        loop {
            if let Some(t) = scope.expires.get() {
                if now >= *t {
                    return true;
                }
            }
            match &scope.parent {
                Some(p) => scope = p,
                None => return false,
            }
        }
    }

    /// Fired, either explicitly or by deadline expiry?
    pub fn is_stopped(&self) -> bool {
        self.is_cancelled() || self.deadline_expired()
    }

    /// The typed fault this token reports when it fires.
    pub fn fault(&self) -> LimitExceeded {
        let ms = self.inner.deadline_ms.get().copied().unwrap_or(0);
        LimitExceeded::new(LimitKind::Cancelled, ms)
    }
}

/// A started wall-clock deadline, derived from [`Limits::timeout`] at the
/// beginning of an operation, optionally carrying a caller-side
/// [`CancelToken`]. Cheap to clone; `expired` costs one `Instant::now` —
/// engines amortize it with [`Deadline::check_every`].
#[derive(Debug, Clone, Default)]
pub struct Deadline {
    expires: Option<Instant>,
    timeout_ms: u64,
    cancel: Option<CancelToken>,
}

impl Deadline {
    /// A deadline `timeout` from now (`None` = never expires).
    pub fn start(timeout: Option<Duration>) -> Self {
        Deadline {
            expires: timeout.map(|d| Instant::now() + d),
            timeout_ms: timeout.map_or(0, |d| d.as_millis() as u64),
            cancel: None,
        }
    }

    /// A deadline that never expires.
    pub fn unlimited() -> Self {
        Deadline::start(None)
    }

    /// Attaches a caller-side cancellation token. The engine then honours
    /// whichever fires first: the wall-clock budget (recoverable,
    /// [`LimitKind::Deadline`]) or the token ([`LimitKind::Cancelled`]).
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Is there a deadline or a cancellation token at all?
    pub fn is_limited(&self) -> bool {
        self.expires.is_some() || self.cancel.is_some()
    }

    /// Has the deadline passed? (Ignores the cancellation token; use
    /// [`Deadline::check`] to observe both.)
    pub fn expired(&self) -> bool {
        match self.expires {
            Some(t) => Instant::now() >= t,
            None => false,
        }
    }

    /// Returns the typed fault if the token fired or the deadline passed.
    /// Cancellation is reported first: it is non-recoverable and must not
    /// be masked by a concurrent (recoverable) engine timeout.
    pub fn check(&self) -> Result<(), LimitExceeded> {
        if let Some(token) = &self.cancel {
            if token.is_stopped() {
                return Err(token.fault());
            }
        }
        if self.expired() {
            Err(LimitExceeded::new(LimitKind::Deadline, self.timeout_ms))
        } else {
            Ok(())
        }
    }

    /// Amortized check: only consults the clock when `counter` is a
    /// multiple of `stride` (use a power of two). Increments `counter`.
    pub fn check_every(&self, counter: &mut u64, stride: u64) -> Result<(), LimitExceeded> {
        *counter = counter.wrapping_add(1);
        if self.is_limited() && (*counter).is_multiple_of(stride) {
            self.check()
        } else {
            Ok(())
        }
    }

    /// The fault record for this deadline (for callers that detected
    /// expiry themselves).
    pub fn fault(&self) -> LimitExceeded {
        LimitExceeded::new(LimitKind::Deadline, self.timeout_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_governed() {
        let l = Limits::default();
        assert!(l.unfold_fuel.is_some());
        assert!(l.memo_cap.is_some());
        assert!(l.input_depth_cap.is_some());
        assert!(l.timeout.is_none());
        assert_eq!(Limits::none().unfold_fuel, None);
    }

    #[test]
    fn builder_methods_set_fields() {
        let l = Limits::none()
            .with_timeout(Duration::from_millis(5))
            .with_step_fuel(10)
            .with_unfold_fuel(20)
            .with_max_depth(30)
            .with_memo_cap(40)
            .with_code_cap(50)
            .with_input_node_cap(60)
            .with_input_depth_cap(70);
        assert_eq!(l.step_fuel, Some(10));
        assert_eq!(l.unfold_fuel, Some(20));
        assert_eq!(l.max_depth, Some(30));
        assert_eq!(l.memo_cap, Some(40));
        assert_eq!(l.code_cap, Some(50));
        assert_eq!(l.input_node_cap, Some(60));
        assert_eq!(l.input_depth_cap, Some(70));
        assert!(l.timeout.is_some());
    }

    #[test]
    fn unlimited_deadline_never_expires() {
        let d = Deadline::unlimited();
        assert!(!d.is_limited());
        assert!(!d.expired());
        assert!(d.check().is_ok());
    }

    #[test]
    fn zero_timeout_expires_immediately() {
        let d = Deadline::start(Some(Duration::ZERO));
        assert!(d.is_limited());
        assert!(d.expired());
        let e = d.check().unwrap_err();
        assert_eq!(e.kind, LimitKind::Deadline);
    }

    #[test]
    fn check_every_strides() {
        let d = Deadline::start(Some(Duration::ZERO));
        let mut c = 0u64;
        // Counter starts at 0; first increment makes it 1 → no check until
        // the stride boundary.
        assert!(d.check_every(&mut c, 4).is_ok());
        assert!(d.check_every(&mut c, 4).is_ok());
        assert!(d.check_every(&mut c, 4).is_ok());
        assert!(d.check_every(&mut c, 4).is_err());
    }

    #[test]
    fn cancel_token_fires_through_deadline() {
        let token = CancelToken::new();
        let d = Deadline::unlimited().with_cancel(token.clone());
        assert!(d.is_limited());
        assert!(d.check().is_ok());
        token.cancel();
        let e = d.check().unwrap_err();
        assert_eq!(e.kind, LimitKind::Cancelled);
        // Clones share state.
        assert!(token.clone().is_stopped());
    }

    #[test]
    fn cancel_token_deadline_expiry() {
        let token = CancelToken::new();
        token.expire_after(Duration::ZERO);
        assert!(!token.is_cancelled());
        assert!(token.deadline_expired());
        assert!(token.is_stopped());
        assert_eq!(token.fault().kind, LimitKind::Cancelled);
        // A second arm attempt is ignored.
        token.expire_after(Duration::from_secs(3600));
        assert!(token.deadline_expired());
    }

    #[test]
    fn child_token_observes_parent_not_vice_versa() {
        let conn = CancelToken::new();
        let req1 = conn.child();
        // Child firing stays scoped to the child.
        req1.cancel();
        assert!(req1.is_cancelled());
        assert!(!conn.is_cancelled());
        // A sibling derived later is unaffected by the first child.
        let req2 = conn.child();
        assert!(!req2.is_stopped());
        // Parent firing reaches every live child (the disconnect path).
        conn.cancel();
        assert!(req2.is_cancelled());
        assert!(req2.is_stopped());
    }

    #[test]
    fn child_token_arms_its_own_deadline() {
        let conn = CancelToken::new();
        let req1 = conn.child();
        req1.expire_after(Duration::ZERO);
        assert!(req1.deadline_expired());
        assert!(!conn.deadline_expired());
        // `expire_at` is first-call-wins per token, but each child is a
        // fresh token, so per-request deadlines keep working.
        let req2 = conn.child();
        req2.expire_after(Duration::from_secs(3600));
        assert!(!req2.deadline_expired());
        // A parent-armed expiry is visible to children.
        let parent = CancelToken::new();
        let kid = parent.child();
        parent.expire_after(Duration::ZERO);
        assert!(kid.deadline_expired());
    }

    #[test]
    fn cancellation_outranks_engine_timeout() {
        let token = CancelToken::new();
        token.cancel();
        let d = Deadline::start(Some(Duration::ZERO)).with_cancel(token);
        // Both fired; cancellation is reported (non-recoverable) rather
        // than the engine's own (recoverable) deadline.
        assert_eq!(d.check().unwrap_err().kind, LimitKind::Cancelled);
    }

    #[test]
    fn faults_display() {
        let e = LimitExceeded::new(LimitKind::UnfoldFuel, 64);
        assert!(e.to_string().contains("unfold fuel"));
        assert!(e.to_string().contains("64"));
    }
}
