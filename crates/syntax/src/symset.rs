//! Compact symbol sets: sorted-by-id vectors behind a copy-on-write `Arc`.
//!
//! The specializer threads free-variable sets through every continuation,
//! join point, and unfold; with `BTreeSet` that meant a fresh tree clone
//! (one allocation per node) at each step. A [`SymSet`] is a deduplicated
//! `Vec<Symbol>` sorted by intern id inside an `Arc`: cloning is one
//! refcount bump, unions are linear merges, and the common small sets live
//! in a single contiguous allocation. Mutation copies only when the
//! underlying vector is shared ([`Arc::make_mut`]).
//!
//! Iteration order is **id order** (interning order), not name order —
//! deterministic within a process, which is all the residual-code
//! bookkeeping needs.

use crate::symbol::Symbol;
use std::fmt;
use std::sync::{Arc, OnceLock};

/// A set of symbols, ordered by intern id, with O(1) clone.
#[derive(Clone, PartialEq, Eq)]
pub struct SymSet(Arc<Vec<Symbol>>);

fn shared_empty() -> &'static Arc<Vec<Symbol>> {
    static EMPTY: OnceLock<Arc<Vec<Symbol>>> = OnceLock::new();
    EMPTY.get_or_init(|| Arc::new(Vec::new()))
}

impl SymSet {
    /// The empty set. Allocation-free: all empty sets share one vector.
    pub fn new() -> Self {
        SymSet(shared_empty().clone())
    }

    /// A one-element set.
    pub fn singleton(s: Symbol) -> Self {
        SymSet(Arc::new(vec![s]))
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Membership test (binary search by id).
    pub fn contains(&self, s: &Symbol) -> bool {
        self.0.binary_search(s).is_ok()
    }

    /// Inserts `s`; returns true if it was new. Copies the backing vector
    /// only if shared.
    pub fn insert(&mut self, s: Symbol) -> bool {
        match self.0.binary_search(&s) {
            Ok(_) => false,
            Err(i) => {
                Arc::make_mut(&mut self.0).insert(i, s);
                true
            }
        }
    }

    /// Removes `s`; returns true if it was present.
    pub fn remove(&mut self, s: &Symbol) -> bool {
        match self.0.binary_search(s) {
            Ok(i) => {
                Arc::make_mut(&mut self.0).remove(i);
                true
            }
            Err(_) => false,
        }
    }

    /// `self ∪ other`, in place. When `self` is empty this is a handle
    /// copy of `other` (no allocation); otherwise a linear merge that
    /// allocates only when something is actually added.
    pub fn union_with(&mut self, other: &SymSet) {
        if other.is_empty() {
            return;
        }
        if self.is_empty() {
            self.0 = other.0.clone();
            return;
        }
        // Fast path: nothing new to add.
        if other.0.iter().all(|s| self.contains(s)) {
            return;
        }
        let mut merged = Vec::with_capacity(self.0.len() + other.0.len());
        let (a, b) = (&self.0, &other.0);
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => {
                    merged.push(a[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    merged.push(b[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    merged.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        merged.extend_from_slice(&a[i..]);
        merged.extend_from_slice(&b[j..]);
        self.0 = Arc::new(merged);
    }

    /// Keeps only elements satisfying `pred` (order preserved).
    pub fn retain(&mut self, pred: impl FnMut(&Symbol) -> bool) {
        let mut p = pred;
        if self.0.iter().all(&mut p) {
            return;
        }
        Arc::make_mut(&mut self.0).retain(|s| p(s));
    }

    /// `self ∖ {s}`, by value (convenience for the filter-one-binder
    /// pattern at `let` and join points).
    pub fn without(mut self, s: &Symbol) -> Self {
        self.remove(s);
        self
    }

    /// Iterates in id order.
    pub fn iter(&self) -> std::slice::Iter<'_, Symbol> {
        self.0.iter()
    }

    /// The elements as a sorted slice — feeds `CodeBuilder::lambda`'s
    /// free-variable list without an intermediate `Vec`.
    pub fn as_slice(&self) -> &[Symbol] {
        &self.0
    }
}

impl Default for SymSet {
    fn default() -> Self {
        SymSet::new()
    }
}

impl fmt::Debug for SymSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.0.iter()).finish()
    }
}

impl FromIterator<Symbol> for SymSet {
    fn from_iter<I: IntoIterator<Item = Symbol>>(iter: I) -> Self {
        let mut v: Vec<Symbol> = iter.into_iter().collect();
        if v.is_empty() {
            return SymSet::new();
        }
        v.sort_unstable();
        v.dedup();
        SymSet(Arc::new(v))
    }
}

impl Extend<Symbol> for SymSet {
    fn extend<I: IntoIterator<Item = Symbol>>(&mut self, iter: I) {
        for s in iter {
            self.insert(s);
        }
    }
}

impl<'a> IntoIterator for &'a SymSet {
    type Item = &'a Symbol;
    type IntoIter = std::slice::Iter<'a, Symbol>;

    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(n: &str) -> Symbol {
        Symbol::new(n)
    }

    #[test]
    fn insert_contains_remove() {
        let mut s = SymSet::new();
        assert!(s.is_empty());
        assert!(s.insert(sym("a")));
        assert!(!s.insert(sym("a")));
        assert!(s.insert(sym("b")));
        assert_eq!(s.len(), 2);
        assert!(s.contains(&sym("a")));
        assert!(s.remove(&sym("a")));
        assert!(!s.remove(&sym("a")));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn cow_preserves_shared_copies() {
        let mut a: SymSet = [sym("x"), sym("y")].into_iter().collect();
        let b = a.clone();
        a.insert(sym("z"));
        assert_eq!(b.len(), 2);
        assert_eq!(a.len(), 3);
        assert!(!b.contains(&sym("z")));
    }

    #[test]
    fn union_merges_and_shares() {
        let a: SymSet = [sym("p"), sym("q")].into_iter().collect();
        let mut empty = SymSet::new();
        empty.union_with(&a);
        // Union into empty shares the source allocation.
        assert!(Arc::ptr_eq(&empty.0, &a.0));
        let mut c: SymSet = [sym("q"), sym("r")].into_iter().collect();
        c.union_with(&a);
        assert_eq!(c.len(), 3);
        let names: Vec<&str> = c.iter().map(|s| s.as_str()).collect();
        assert!(names.contains(&"p") && names.contains(&"q") && names.contains(&"r"));
        // No-op union keeps the allocation.
        let before = Arc::as_ptr(&c.0);
        c.union_with(&a);
        assert_eq!(Arc::as_ptr(&c.0), before);
    }

    #[test]
    fn from_iter_sorts_and_dedups() {
        let s: SymSet = [sym("m"), sym("k"), sym("m"), sym("k")]
            .into_iter()
            .collect();
        assert_eq!(s.len(), 2);
        // Sorted by id: strictly increasing.
        assert!(s.as_slice().windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn empty_sets_share_storage() {
        let a = SymSet::new();
        let b = SymSet::new();
        assert!(Arc::ptr_eq(&a.0, &b.0));
    }

    #[test]
    fn retain_and_without() {
        let s: SymSet = [sym("a1"), sym("b1"), sym("c1")].into_iter().collect();
        let t = s.clone().without(&sym("b1"));
        assert_eq!(t.len(), 2);
        assert!(!t.contains(&sym("b1")));
        let mut u = s;
        u.retain(|x| x.as_str() != "a1");
        assert!(!u.contains(&sym("a1")));
        assert_eq!(u.len(), 2);
    }
}
