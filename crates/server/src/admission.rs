//! Bounded admission for specialization fills: a max-in-flight gate plus
//! a bounded FIFO-ish wait queue with load shedding.
//!
//! Specialization cost is wildly input-dependent, and every fill runs on
//! a large-stack worker — so unbounded concurrency means unbounded
//! memory. The gate caps concurrent fills at `max_inflight`; up to
//! `queue_bound` further requesters block waiting for a slot (honouring
//! their per-request deadline), and everyone beyond that is shed
//! immediately with an `Overloaded` error instead of piling up.
//!
//! Only flight *leaders* pass through the gate: cache hits and coalesced
//! waiters cost no specializer work and are never shed.

use std::sync::{Condvar, Mutex, PoisonError};
use std::time::Instant;

use two4one::obs;

use crate::cache::lock;

/// The admission gate. One per service.
#[derive(Debug)]
pub(crate) struct Gate {
    max_inflight: usize,
    queue_bound: usize,
    state: Mutex<GateState>,
    freed: Condvar,
    /// Mirrors `GateState::inflight` for the exposition page
    /// (`t4o_serve_inflight`); the mutex-guarded count stays the source
    /// of truth for admission decisions.
    inflight_gauge: obs::Gauge,
}

#[derive(Debug, Default)]
struct GateState {
    inflight: usize,
    queued: usize,
}

/// The outcome of an admission attempt.
pub(crate) enum Admission<'a> {
    /// Admitted: the permit returns the slot on drop (also on unwind).
    Admitted(Permit<'a>),
    /// The wait queue is full; the request is shed.
    Shed {
        /// Queue depth observed at the moment of shedding.
        queue_depth: usize,
    },
    /// The request's deadline passed while it was queued.
    TimedOut,
}

impl Gate {
    pub(crate) fn new(max_inflight: usize, queue_bound: usize, inflight_gauge: obs::Gauge) -> Self {
        Gate {
            max_inflight: max_inflight.max(1),
            queue_bound,
            state: Mutex::new(GateState::default()),
            freed: Condvar::new(),
            inflight_gauge,
        }
    }

    /// Total requests the gate will hold at once (running + queued);
    /// anything beyond this in one burst is shed.
    pub(crate) fn capacity(&self) -> usize {
        self.max_inflight + self.queue_bound
    }

    /// Acquires an in-flight slot, waiting (up to `until`) in the bounded
    /// queue if the gate is full.
    pub(crate) fn admit(&self, until: Option<Instant>) -> Admission<'_> {
        let mut s = lock(&self.state);
        if s.inflight < self.max_inflight && s.queued == 0 {
            s.inflight += 1;
            self.inflight_gauge.add(1);
            return Admission::Admitted(Permit { gate: self });
        }
        if s.queued >= self.queue_bound {
            return Admission::Shed {
                queue_depth: s.queued,
            };
        }
        s.queued += 1;
        loop {
            if s.inflight < self.max_inflight {
                s.queued = s.queued.saturating_sub(1);
                s.inflight += 1;
                self.inflight_gauge.add(1);
                return Admission::Admitted(Permit { gate: self });
            }
            match until {
                Some(t) => {
                    let now = Instant::now();
                    if now >= t {
                        s.queued = s.queued.saturating_sub(1);
                        return Admission::TimedOut;
                    }
                    s = self
                        .freed
                        .wait_timeout(s, t - now)
                        .unwrap_or_else(PoisonError::into_inner)
                        .0;
                }
                None => {
                    s = self.freed.wait(s).unwrap_or_else(PoisonError::into_inner);
                }
            }
        }
    }

    fn release(&self) {
        let mut s = lock(&self.state);
        s.inflight = s.inflight.saturating_sub(1);
        self.inflight_gauge.add(-1);
        drop(s);
        // Waiters race for the freed slot; wake them all so a timed-out
        // waiter cannot swallow the only wakeup.
        self.freed.notify_all();
    }
}

/// An RAII in-flight slot.
#[derive(Debug)]
pub(crate) struct Permit<'a> {
    gate: &'a Gate,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        self.gate.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn admits_up_to_max_inflight_without_queueing() {
        let gate = Gate::new(2, 4, obs::Gauge::new());
        let a = gate.admit(None);
        let b = gate.admit(None);
        assert!(matches!(a, Admission::Admitted(_)));
        assert!(matches!(b, Admission::Admitted(_)));
        drop(a);
        assert!(matches!(gate.admit(None), Admission::Admitted(_)));
    }

    #[test]
    fn sheds_beyond_queue_bound() {
        let gate = Gate::new(1, 0, obs::Gauge::new());
        let held = gate.admit(None);
        assert!(matches!(held, Admission::Admitted(_)));
        // Queue bound 0: a second requester is shed at once.
        match gate.admit(Some(Instant::now())) {
            Admission::Shed { queue_depth } => assert_eq!(queue_depth, 0),
            _ => panic!("expected shed"),
        };
        drop(held);
    }

    #[test]
    fn queued_request_times_out_at_deadline() {
        let gate = Gate::new(1, 4, obs::Gauge::new());
        let _held = gate.admit(None);
        let t0 = Instant::now();
        let r = gate.admit(Some(Instant::now() + Duration::from_millis(30)));
        assert!(matches!(r, Admission::TimedOut));
        assert!(t0.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn burst_admits_at_most_capacity() {
        const BURST: usize = 32;
        let gate = Gate::new(2, 4, obs::Gauge::new());
        let admitted = AtomicUsize::new(0);
        let shed = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..BURST {
                scope.spawn(|| match gate.admit(Some(Instant::now())) {
                    Admission::Admitted(_p) => {
                        admitted.fetch_add(1, Ordering::Relaxed);
                        // Hold the permit long enough that the burst
                        // overlaps, then release (drop).
                        std::thread::sleep(Duration::from_millis(20));
                    }
                    Admission::Shed { .. } | Admission::TimedOut => {
                        shed.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        // With an already-passed deadline, queued requests give up rather
        // than waiting for slots, so at most max_inflight + queue_bound
        // requests are ever admitted or queued; everyone else is shed.
        assert_eq!(
            admitted.load(Ordering::Relaxed) + shed.load(Ordering::Relaxed),
            BURST
        );
        assert!(admitted.load(Ordering::Relaxed) <= 6);
        assert!(shed.load(Ordering::Relaxed) >= BURST - 6);
    }
}
