//! Annotated Core Scheme (ACS) — the two-level syntax of Sec. 4.
//!
//! ACS is CS with *dynamic* variants of primitive operations, lambda
//! abstractions, applications, and conditionals (the paper's superscript-D
//! constructs), plus `lift`, which coerces a static first-order value into
//! code. The binding-time analysis (`two4one-bta`) produces ACS; the
//! specializer (`two4one-pe`) consumes it. Static constructs are executed at
//! specialization time; dynamic constructs *generate residual code*.

use crate::datum::Datum;
use crate::prim::Prim;
use crate::symbol::Symbol;
use std::fmt;
use std::sync::Arc;

/// A binding time: static (known at specialization time) or dynamic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum BT {
    /// Known at specialization time.
    #[default]
    Static,
    /// Known only at run time.
    Dynamic,
}

impl BT {
    /// Least upper bound in the two-point lattice `S ⊑ D`.
    pub fn lub(self, other: BT) -> BT {
        if self == BT::Dynamic || other == BT::Dynamic {
            BT::Dynamic
        } else {
            BT::Static
        }
    }

    /// True if dynamic.
    pub fn is_dynamic(self) -> bool {
        self == BT::Dynamic
    }
}

impl fmt::Display for BT {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BT::Static => "S",
            BT::Dynamic => "D",
        })
    }
}

/// An annotated expression.
#[derive(Debug, Clone, PartialEq)]
pub enum AExpr {
    /// A constant (always static).
    Const(Datum),
    /// A variable reference.
    Var(Symbol),
    /// Coerce the static value of the subexpression to code.
    Lift(Arc<AExpr>),
    /// A static lambda: a specialization-time closure.
    Lam(Arc<ALambda>),
    /// A dynamic lambda: generates a residual `lambda`.
    LamD(Arc<ALambda>),
    /// Static conditional: the test is decided at specialization time.
    If(Arc<AExpr>, Arc<AExpr>, Arc<AExpr>),
    /// Dynamic conditional: generates a residual `if` (and duplicates the
    /// specialization continuation into both branches, as in Fig. 3).
    IfD(Arc<AExpr>, Arc<AExpr>, Arc<AExpr>),
    /// `let` — unannotated; the continuation-based specializer handles
    /// static and dynamic right-hand sides uniformly (see Fig. 3).
    Let(Symbol, Arc<AExpr>, Arc<AExpr>),
    /// Static application: the operator is a specialization-time closure or
    /// a top-level function; the call is unfolded or memoized.
    App(Arc<AExpr>, Vec<Arc<AExpr>>),
    /// Dynamic application: generates a residual call.
    AppD(Arc<AExpr>, Vec<Arc<AExpr>>),
    /// Static primitive application: evaluated at specialization time.
    Prim(Prim, Vec<Arc<AExpr>>),
    /// Dynamic primitive application: generates residual code.
    PrimD(Prim, Vec<Arc<AExpr>>),
}

/// An annotated lambda.
#[derive(Debug, Clone, PartialEq)]
pub struct ALambda {
    /// Name hint.
    pub name: Symbol,
    /// Formal parameters.
    pub params: Vec<Symbol>,
    /// The body.
    pub body: AExpr,
}

/// A parameter of an annotated definition, with its binding time.
#[derive(Debug, Clone, PartialEq)]
pub struct AParam {
    /// The parameter name.
    pub name: Symbol,
    /// Its binding time.
    pub bt: BT,
}

/// How calls to a top-level function are treated by the specializer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CallPolicy {
    /// Inline the body at the call site (specialization-time β).
    #[default]
    Unfold,
    /// Residualize the call and specialize the callee once per distinct
    /// tuple of static arguments (a *specialization point*).
    Memoize,
}

/// An annotated top-level definition.
#[derive(Debug, Clone, PartialEq)]
pub struct ADef {
    /// The global name.
    pub name: Symbol,
    /// Parameters with binding times.
    pub params: Vec<AParam>,
    /// The annotated body.
    pub body: AExpr,
    /// Unfold or memoize calls to this function.
    pub policy: CallPolicy,
    /// Binding time of the result.
    pub result_bt: BT,
}

/// An annotated program.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AProgram {
    /// The definitions.
    pub defs: Vec<ADef>,
}

impl AProgram {
    /// Looks up an annotated definition by name.
    pub fn def(&self, name: &Symbol) -> Option<&ADef> {
        self.defs.iter().find(|d| &d.name == name)
    }
}

impl AExpr {
    /// Number of AST nodes.
    pub fn size(&self) -> usize {
        match self {
            AExpr::Const(_) | AExpr::Var(_) => 1,
            AExpr::Lift(e) => 1 + e.size(),
            AExpr::Lam(l) | AExpr::LamD(l) => 1 + l.body.size(),
            AExpr::If(a, b, c) | AExpr::IfD(a, b, c) => 1 + a.size() + b.size() + c.size(),
            AExpr::Let(_, rhs, body) => 1 + rhs.size() + body.size(),
            AExpr::App(f, args) | AExpr::AppD(f, args) => {
                1 + f.size() + args.iter().map(|a| a.size()).sum::<usize>()
            }
            AExpr::Prim(_, args) | AExpr::PrimD(_, args) => {
                1 + args.iter().map(|a| a.size()).sum::<usize>()
            }
        }
    }

    /// Renders to concrete syntax with the paper's underline convention
    /// spelled `_name` for dynamic constructs, for inspection and tests.
    pub fn to_datum(&self) -> Datum {
        fn lam(tag: &str, l: &ALambda) -> Datum {
            Datum::list([
                Datum::sym(tag),
                Datum::list(l.params.iter().cloned().map(Datum::Sym).collect::<Vec<_>>()),
                l.body.to_datum(),
            ])
        }
        match self {
            AExpr::Const(d) => {
                if d.is_self_evaluating() {
                    d.clone()
                } else {
                    Datum::list([Datum::sym("quote"), d.clone()])
                }
            }
            AExpr::Var(x) => Datum::Sym(*x),
            AExpr::Lift(e) => Datum::list([Datum::sym("lift"), e.to_datum()]),
            AExpr::Lam(l) => lam("lambda", l),
            AExpr::LamD(l) => lam("_lambda", l),
            AExpr::If(a, b, c) => {
                Datum::list([Datum::sym("if"), a.to_datum(), b.to_datum(), c.to_datum()])
            }
            AExpr::IfD(a, b, c) => {
                Datum::list([Datum::sym("_if"), a.to_datum(), b.to_datum(), c.to_datum()])
            }
            AExpr::Let(x, rhs, body) => Datum::list([
                Datum::sym("let"),
                Datum::list([Datum::list([Datum::Sym(*x), rhs.to_datum()])]),
                body.to_datum(),
            ]),
            AExpr::App(f, args) => {
                let mut items = vec![f.to_datum()];
                items.extend(args.iter().map(|a| a.to_datum()));
                Datum::list(items)
            }
            AExpr::AppD(f, args) => {
                let mut items = vec![Datum::sym("_apply"), f.to_datum()];
                items.extend(args.iter().map(|a| a.to_datum()));
                Datum::list(items)
            }
            AExpr::Prim(p, args) => {
                let mut items = vec![Datum::sym(p.name())];
                items.extend(args.iter().map(|a| a.to_datum()));
                Datum::list(items)
            }
            AExpr::PrimD(p, args) => {
                let mut items = vec![Datum::sym(&format!("_{}", p.name()))];
                items.extend(args.iter().map(|a| a.to_datum()));
                Datum::list(items)
            }
        }
    }
}

impl fmt::Display for AExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_datum())
    }
}

impl ADef {
    /// Renders to concrete syntax: `(define[-memo] (f x:S y:D) body)`.
    pub fn to_datum(&self) -> Datum {
        let mut head = vec![Datum::Sym(self.name)];
        for p in &self.params {
            head.push(Datum::sym(&format!("{}:{}", p.name, p.bt)));
        }
        let keyword = match self.policy {
            CallPolicy::Unfold => "define",
            CallPolicy::Memoize => "define-memo",
        };
        Datum::list([Datum::sym(keyword), Datum::list(head), self.body.to_datum()])
    }
}

impl fmt::Display for AProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for d in &self.defs {
            writeln!(f, "{}", d.to_datum())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bt_lattice() {
        assert_eq!(BT::Static.lub(BT::Static), BT::Static);
        assert_eq!(BT::Static.lub(BT::Dynamic), BT::Dynamic);
        assert_eq!(BT::Dynamic.lub(BT::Static), BT::Dynamic);
        assert!(BT::Dynamic.is_dynamic());
        assert!(!BT::Static.is_dynamic());
        assert_eq!(BT::Static.to_string(), "S");
    }

    #[test]
    fn annotated_rendering_marks_dynamic_constructs() {
        let e = AExpr::PrimD(
            Prim::Add,
            vec![
                Arc::new(AExpr::Var(Symbol::new("x"))),
                Arc::new(AExpr::Lift(Arc::new(AExpr::Const(Datum::Int(1))))),
            ],
        );
        assert_eq!(e.to_string(), "(_+ x (lift 1))");
        let e = AExpr::IfD(
            Arc::new(AExpr::Var(Symbol::new("t"))),
            Arc::new(AExpr::Const(Datum::Int(1))),
            Arc::new(AExpr::Const(Datum::Int(2))),
        );
        assert_eq!(e.to_string(), "(_if t 1 2)");
    }

    #[test]
    fn def_rendering_shows_division_and_policy() {
        let d = ADef {
            name: Symbol::new("f"),
            params: vec![
                AParam {
                    name: Symbol::new("s"),
                    bt: BT::Static,
                },
                AParam {
                    name: Symbol::new("d"),
                    bt: BT::Dynamic,
                },
            ],
            body: AExpr::Var(Symbol::new("d")),
            policy: CallPolicy::Memoize,
            result_bt: BT::Dynamic,
        };
        assert_eq!(d.to_datum().to_string(), "(define-memo (f s:S d:D) d)");
    }

    #[test]
    fn sizes() {
        let e = AExpr::Lift(Arc::new(AExpr::Const(Datum::Int(1))));
        assert_eq!(e.size(), 2);
    }
}
